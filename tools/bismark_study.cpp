// bismark-study: the command-line front door to the reproduction.
//
//   bismark_study run      --seed 42 --weeks 8 [--no-traffic] [--export DIR]
//   bismark_study report   --seed 42 [--weeks N]     # paper-style digest
//   bismark_study analyze  <release-dir>             # from released CSVs
//   bismark_study --help
//
// `run` simulates a deployment and prints dataset volumes; `report` adds
// the Section 4-6 headline numbers; `analyze` consumes a directory written
// by `run --export` (or examples/world_deployment) using only the public
// CSVs.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>

#include "analysis/cgn.h"
#include "analysis/diurnal.h"
#include "analysis/downtime.h"
#include "analysis/fleet.h"
#include "analysis/infrastructure.h"
#include "analysis/usage.h"
#include "analysis/utilization.h"
#include "collect/column_snapshot.h"
#include "collect/export.h"
#include "collect/import.h"
#include "collect/manifest.h"
#include "collect/snapshot.h"
#include "core/args.h"
#include "core/io.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "home/deployment.h"
#include "home/resume.h"
#include "obs/metrics.h"
#include "obs/report.h"

using namespace bismark;

namespace {

/// Shared by `run` and `report`: write the Prometheus text exposition
/// (--metrics-out) and/or the JSON run report (--run-report) for a finished
/// study. --deterministic-report strips the report's wall-clock section so
/// the bytes depend only on (seed, fault seed, roster).
int WriteObsOutputs(const home::Deployment& study, const ArgParser& args,
                    const char* tool) {
  if (const auto path = args.get("metrics-out")) {
    std::ofstream out(*path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", path->c_str());
      return 1;
    }
    obs::WritePrometheus(study.metrics(), out);
    std::printf("wrote metrics to %s\n", path->c_str());
  }
  if (const auto path = args.get("run-report")) {
    std::ofstream out(*path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", path->c_str());
      return 1;
    }
    const bool volatile_section = !args.has("deterministic-report");
    home::MakeRunReport(study, tool, volatile_section).write_json(out);
    std::printf("wrote run report to %s%s\n", path->c_str(),
                volatile_section ? "" : " (deterministic section only)");
  }
  return 0;
}

home::DeploymentOptions OptionsFrom(const ArgParser& args) {
  home::DeploymentOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 20131023));
  const auto weeks = args.get_int("weeks", 0);
  if (weeks > 0) {
    options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}),
                                                          static_cast<int>(weeks));
  } else {
    options.windows = collect::DatasetWindows::Paper();
  }
  options.run_traffic = !args.has("no-traffic");
  options.roster_scale = args.get_double("scale", 1.0);
  options.homes = static_cast<int>(args.get_int("homes", 0));
  options.memory_budget_bytes =
      static_cast<std::size_t>(args.get_int("memory-budget-mb", 0)) << 20;
  if (const auto dir = args.get("spill-dir")) options.spill_dir = *dir;
  options.workers = static_cast<int>(args.get_int("workers", 1));
  // Fault injection (Section 3.3's visibility limitations, as knobs).
  options.collector_outages_per_month =
      args.get_double("collector-outages-per-month", 0.0);
  options.heartbeat.loss_prob =
      args.get_double("heartbeat-loss", options.heartbeat.loss_prob);
  options.upload_faults.upload_loss_prob = args.get_double("upload-loss", 0.0);
  options.upload_faults.ack_loss_prob = args.get_double("ack-loss", 0.0);
  options.upload.spool_capacity = static_cast<std::size_t>(args.get_int(
      "spool-capacity", static_cast<std::int64_t>(options.upload.spool_capacity)));
  options.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  options.checkpoint_every = static_cast<std::uint64_t>(args.get_int("checkpoint-every", 0));
  // NAT444 tier + wire capture (DESIGN §13).
  options.cgn = args.has("cgn");
  options.cgn_port_block = static_cast<std::uint16_t>(args.get_int("cgn-port-block", 512));
  options.cgn_max_ports_per_home =
      static_cast<std::uint32_t>(args.get_int("cgn-max-ports-per-home", 2048));
  if (const auto path = args.get("pcap-out")) options.pcap_out = *path;
  return options;
}

/// --resume: the manifest's config record supplies every content-determining
/// option; only execution knobs (workers, checkpoint cadence) come from the
/// command line.
bool OptionsFromManifest(const std::string& dir, const ArgParser& args,
                         home::DeploymentOptions* out, std::string* error) {
  collect::ManifestConfig cfg;
  if (!collect::ReadManifestConfig(dir, &cfg, error)) return false;
  if (!home::DecodeResumableOptions(cfg.options_blob, out, error)) return false;
  out->memory_budget_bytes = static_cast<std::size_t>(cfg.budget_bytes);
  out->spill_dir = dir;
  out->resume = true;
  out->workers = static_cast<int>(args.get_int("workers", 1));
  out->checkpoint_every = static_cast<std::uint64_t>(args.get_int("checkpoint-every", 0));
  return true;
}

/// Resolve run options for `run`/`report`: from the manifest on --resume,
/// from the flags otherwise. Returns false after printing a usage error.
bool ResolveRunOptions(const ArgParser& args, home::DeploymentOptions* out) {
  if (const auto resume_dir = args.get("resume")) {
    std::string error;
    if (!OptionsFromManifest(*resume_dir, args, out, &error)) {
      std::fprintf(stderr, "error: cannot resume from %s: %s\n", resume_dir->c_str(),
                   error.c_str());
      return false;
    }
    return true;
  }
  *out = OptionsFrom(args);
  return true;
}

/// One line of recovery accounting, plus a stderr line per action the
/// operator should know about (truncated tails, quarantined sections).
void PrintRecovery(const home::Deployment& study) {
  const collect::SpillRecovery* rec = study.recovery();
  if (rec == nullptr) return;
  std::printf("resumed from %s: %zu/%zu shards recovered, %llu sections verified, "
              "%llu quarantined, %llu manifest + %llu segment bytes truncated\n",
              study.options().spill_dir.c_str(), rec->done_shards.size(),
              study.shard_count(),
              static_cast<unsigned long long>(rec->sections_verified),
              static_cast<unsigned long long>(rec->sections_quarantined),
              static_cast<unsigned long long>(rec->manifest_bytes_truncated),
              static_cast<unsigned long long>(rec->segment_bytes_truncated));
  for (const auto& line : rec->diagnostics) {
    std::fprintf(stderr, "recovery: %s\n", line.c_str());
  }
}

/// Fleet summary with the checkpoint sketch cache: a resumed, already-clean
/// run reloads the serialized sketches instead of re-streaming every
/// segment; a computed summary is checkpointed for the next resume.
void PrintFleetSummary(home::Deployment& study) {
  analysis::FleetSummary summary;
  const std::string cached = study.recovered_fleet_summary_blob();
  if (!cached.empty() && analysis::DeserializeFleetSummary(cached, &summary)) {
    std::printf("fleet summary restored from checkpoint sketches\n");
  } else {
    summary = analysis::SummarizeFleet(study.repository());
    study.save_fleet_summary_checkpoint(analysis::SerializeFleetSummary(summary));
  }
  analysis::WriteFleetSummary(summary, std::cout);
}

int CmdRun(const ArgParser& args) {
  home::DeploymentOptions options;
  if (!ResolveRunOptions(args, &options)) return 2;
  const int roster_homes = options.homes > 0 ? options.homes : home::TotalRouters();
  std::printf("simulating %d-home deployment (seed %llu%s%s)...\n", roster_homes,
              static_cast<unsigned long long>(options.seed),
              options.memory_budget_bytes > 0 ? ", fleet mode" : "",
              options.resume ? ", resuming" : "");
  const auto study = home::Deployment::RunStudy(options);
  PrintRecovery(*study);
  const auto counts = study->repository().counts();

  TextTable table({"dataset", "rows"});
  table.add_row({"heartbeat runs", TextTable::Int(static_cast<long long>(counts.heartbeat_runs))});
  table.add_row({"uptime reports", TextTable::Int(static_cast<long long>(counts.uptime))});
  table.add_row({"capacity probes", TextTable::Int(static_cast<long long>(counts.capacity))});
  table.add_row({"device censuses", TextTable::Int(static_cast<long long>(counts.device_counts))});
  table.add_row({"wifi scans", TextTable::Int(static_cast<long long>(counts.wifi_scans))});
  table.add_row({"traffic flows", TextTable::Int(static_cast<long long>(counts.flows))});
  table.add_row({"busy minutes", TextTable::Int(static_cast<long long>(counts.throughput_minutes))});
  table.add_row({"dns samples", TextTable::Int(static_cast<long long>(counts.dns))});
  // Only a NAT444 run grows the table: CGN-off output stays byte-identical.
  if (options.cgn) {
    table.add_row({"cgn events", TextTable::Int(static_cast<long long>(counts.cgn_events))});
  }
  table.print();

  if (options.cgn) {
    analysis::WriteCgnSummary(analysis::SummarizeCgn(study->repository()), std::cout);
  }
  if (!options.pcap_out.empty()) {
    std::printf("wrote pcap capture: %llu frames, %llu bytes to %s\n",
                static_cast<unsigned long long>(study->pcap_frames_captured()),
                static_cast<unsigned long long>(study->pcap_bytes_written()),
                options.pcap_out.c_str());
  }

  const auto& up = study->upload_stats();
  std::printf("upload pipeline: %llu records spooled, %llu delivered in %llu batches "
              "(%llu attempts, %llu retries); %llu resends deduped, %llu dropped, "
              "%llu stranded\n",
              static_cast<unsigned long long>(up.records_spooled),
              static_cast<unsigned long long>(up.records_delivered),
              static_cast<unsigned long long>(up.batches_delivered),
              static_cast<unsigned long long>(up.attempts),
              static_cast<unsigned long long>(up.retries),
              static_cast<unsigned long long>(up.duplicate_transmissions),
              static_cast<unsigned long long>(up.records_dropped),
              static_cast<unsigned long long>(up.records_stranded));
  if (!study->collector_outages().empty()) {
    std::printf("collector outages: %zu windows, %s total\n",
                study->collector_outages().size(),
                FormatDuration(study->collector_outages().total()).c_str());
  }

  if (options.memory_budget_bytes > 0) {
    // Fleet mode: rows live in spill segments, so the headline
    // distributions come from one streaming sketch pass per data set (or
    // the checkpointed sketches of an already-complete resumed run).
    PrintFleetSummary(*study);
  }

  const std::size_t workers = options.workers > 0
                                  ? static_cast<std::size_t>(options.workers)
                                  : static_cast<std::size_t>(ThreadPool::HardwareWorkers());
  if (const auto dir = args.get("export")) {
    const std::size_t rows = collect::ExportPublicDatasets(study->repository(), *dir, workers);
    std::printf("exported %zu public rows to %s (Traffic withheld, as in the paper)\n", rows,
                dir->c_str());
  }
  if (const auto dir = args.get("export-full")) {
    const std::size_t rows = collect::ExportAllDatasets(study->repository(), *dir, workers);
    std::printf("exported %zu rows (every data set, full fidelity) to %s\n", rows,
                dir->c_str());
  }
  if (const auto path = args.get("snapshot-out")) {
    // Columnar v3 directory: streamed kind-by-kind through for_each_row, so
    // this works from spill segments under --memory-budget-mb without ever
    // materialising the repository in RAM.
    std::string error;
    if (!collect::SaveColumnSnapshot(study->repository(), *path, &error, workers)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote columnar snapshot to %s/\n", path->c_str());
  }
  return WriteObsOutputs(*study, args, "bismark_study run");
}

int CmdReport(const ArgParser& args) {
  home::DeploymentOptions options;
  if (!ResolveRunOptions(args, &options)) return 2;
  const auto study = home::Deployment::RunStudy(options);
  PrintRecovery(*study);
  const auto& repo = study->repository();

  if (options.memory_budget_bytes > 0) {
    // The Section 4-6 analyses below read resident row vectors, which are
    // empty when records live in spill segments; fleet mode reports the
    // streaming-sketch distributions instead.
    PrintBanner("Fleet distributions (streaming)");
    PrintFleetSummary(*study);
    return WriteObsOutputs(*study, args, "bismark_study report");
  }

  PrintBanner("Availability (Section 4)");
  const auto homes = analysis::AnalyzeAvailability(repo, {Minutes(10), 25.0});
  const auto summary = analysis::SummarizeRegions(homes);
  std::printf("median days between downtimes: developed %.1f, developing %.2f\n",
              summary.median_days_between_downtimes_developed,
              summary.median_days_between_downtimes_developing);
  std::printf("median downtime duration: developed %s, developing %s\n",
              FormatDuration(Seconds(summary.median_duration_s_developed)).c_str(),
              FormatDuration(Seconds(summary.median_duration_s_developing)).c_str());

  PrintBanner("Infrastructure (Section 5)");
  std::printf("devices/home: median %.1f, mean %.1f\n",
              analysis::UniqueDevicesCdf(repo).median(), analysis::MeanUniqueDevices(repo));
  const auto bands = analysis::UniqueDevicesPerBand(repo);
  std::printf("per band: 2.4 GHz median %.0f, 5 GHz median %.0f\n", bands.band24.median(),
              bands.band5.median());
  const auto neighbors = analysis::NeighborAps(repo);
  std::printf("neighbour APs: developed median %.0f, developing median %.0f\n",
              neighbors.developed.median(), neighbors.developing.median());
  const auto table5 = analysis::AlwaysConnected(repo);
  std::printf("always-connected homes: developed %.0f%%/%.0f%% (wired/wireless), "
              "developing %.0f%%/%.0f%%\n",
              table5.developed.wired_fraction() * 100,
              table5.developed.wireless_fraction() * 100,
              table5.developing.wired_fraction() * 100,
              table5.developing.wireless_fraction() * 100);

  PrintBanner("Usage (Section 6)");
  const auto diurnal = analysis::WirelessDiurnalProfile(repo);
  std::printf("diurnal wireless devices: weekday %.2f-%.2f, weekend %.2f-%.2f\n",
              diurnal.weekday_trough(), diurnal.weekday_peak(), diurnal.weekend_trough(),
              diurnal.weekend_peak());
  const auto saturation = analysis::LinkSaturation(repo);
  int under_half = 0, saturated = 0;
  for (const auto& p : saturation) {
    under_half += p.utilization_down_p95 < 0.5;
    saturated += p.utilization_down_p95 >= 0.95;
  }
  std::printf("downlink p95: %d/%zu homes under 50%%, %d saturating\n", under_half,
              saturation.size(), saturated);
  std::printf("bufferbloat homes (uplink > 1.05x capacity): %zu\n",
              analysis::OversaturatedUplinks(saturation).size());
  const auto devices = analysis::DeviceUsageShares(repo);
  const auto domains = analysis::DomainUsageShares(repo);
  std::printf("dominant device %.0f%% of home traffic; top domain %.0f%% of volume over "
              "%.0f%% of connections; whitelist covers %.0f%%\n",
              (devices.share_by_rank.empty() ? 0.0 : devices.share_by_rank[0]) * 100,
              domains.by_rank[0].volume_share * 100,
              domains.by_rank[0].conns_by_vol_rank * 100,
              domains.whitelisted_volume_share * 100);
  return WriteObsOutputs(*study, args, "bismark_study report");
}

int CmdAnalyze(const ArgParser& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: bismark_study analyze <release-dir|snapshot-file|snapshot-dir>\n");
    return 2;
  }
  const std::string path = args.positional()[1];
  const auto workers_arg = args.get_int("workers", 1);
  const std::size_t workers = workers_arg > 0
                                  ? static_cast<std::size_t>(workers_arg)
                                  : static_cast<std::size_t>(ThreadPool::HardwareWorkers());

  // A columnar snapshot directory maps per-kind segments lazily; a regular
  // file is a v1/v2 binary snapshot (homes and windows included); any other
  // directory is a public CSV release that needs bare home registration.
  std::unique_ptr<collect::DataRepository> repo;
  if (collect::IsColumnSnapshotDir(path)) {
    std::string error;
    repo = collect::OpenColumnSnapshot(path, &error);
    if (!repo) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("opened columnar snapshot %s (%zu rows, %zu homes)\n", path.c_str(),
                repo->total_rows(), repo->homes().size());
  } else if (std::filesystem::is_regular_file(path)) {
    std::string error;
    repo = collect::LoadSnapshotFile(path, &error);
    if (!repo) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("loaded snapshot %s (%zu rows, %zu homes)\n", path.c_str(),
                repo->total_rows(), repo->homes().size());
  } else {
    repo = std::make_unique<collect::DataRepository>(collect::DatasetWindows::Paper());
    const auto report = collect::ImportPublicDatasets(*repo, path);
    std::printf("imported %zu rows from %s\n", report.total_rows(), path.c_str());
    for (const auto& e : report.errors) std::fprintf(stderr, "warning: %s\n", e.c_str());
    if (report.total_rows() == 0) return 1;

    std::set<int> ids;
    for (const auto& run : repo->heartbeat_runs()) ids.insert(run.home.value);
    for (const auto& rec : repo->device_counts()) ids.insert(rec.home.value);
    for (int id : ids) {
      collect::HomeInfo info;
      info.id = collect::HomeId{id};
      info.country_code = "??";
      info.reports_devices = true;
      repo->register_home(info);
    }
  }

  const auto homes = analysis::AnalyzeAvailability(*repo, {Minutes(10), 25.0});
  Cdf downtimes;
  for (const auto& h : homes) downtimes.add(h.downtimes_per_day());
  std::printf("homes: %zu qualifying\n", homes.size());
  std::printf("downtimes/day: %s\n", Summarize(downtimes).c_str());
  std::printf("devices/home: %s\n", Summarize(analysis::UniqueDevicesCdf(*repo)).c_str());
  if (repo->column_backed()) {
    // Per-stripe parallel sketch pass: bit-identical for any --workers
    // (partials merge in stripe index order).
    analysis::WriteFleetSummary(analysis::SummarizeFleet(*repo, workers), std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "bismark_study: simulate, export and analyze the IMC'13 home-network study");
  args.add_option("seed", "deployment seed", "20131023");
  args.add_option("weeks", "compress the study to N weeks (0 = the paper's real windows)",
                  "0");
  args.add_option("scale", "scale the per-country roster (1.0 = 126 homes)", "1.0");
  args.add_option("homes", "exact roster size, apportioned over the Table 1 country mix "
                  "(overrides --scale; 126 = the default roster)");
  args.add_option("memory-budget-mb",
                  "fleet mode: bound record-staging memory to this many MiB by spilling "
                  "sorted segment runs to disk (0 = keep everything in RAM)", "0");
  args.add_option("spill-dir",
                  "segment-file directory for --memory-budget-mb (default bsmk-segments)");
  args.add_option("checkpoint-every",
                  "fleet mode: make the run durable (fsync segments + manifest, append a "
                  "checkpoint record) every K committed shards (0 = only the write-ahead "
                  "records)", "0");
  args.add_option("resume",
                  "resume an interrupted fleet run from this spill directory; run options "
                  "come from the recorded manifest (combine only with --workers, "
                  "--checkpoint-every and output flags)");
  args.add_option("workers", "worker threads for the run; 0 = all cores (results are "
                  "byte-identical for any value)", "1");
  args.add_option("export", "write the public CSVs to this directory");
  args.add_option("export-full",
                  "write every data set (including private traffic) to this directory "
                  "in full-fidelity CSV");
  args.add_option("snapshot-out",
                  "write a columnar (v3) snapshot of the repository to this directory; "
                  "streamed kind-by-kind, so it works under --memory-budget-mb");
  args.add_option("collector-outages-per-month",
                  "inject collector outages at this rate (0 = reliable collector)", "0");
  args.add_option("heartbeat-loss",
                  "i.i.d. per-heartbeat loss probability on the path to the collector",
                  "0.01");
  args.add_option("upload-loss",
                  "per-attempt probability an upload batch is lost before the collector",
                  "0");
  args.add_option("ack-loss", "per-attempt probability the collector's ack is lost "
                  "(commits, then forces a deduped resend)", "0");
  args.add_option("spool-capacity",
                  "per-home upload spool size in records (overflow drops oldest)", "8192");
  args.add_option("fault-seed",
                  "seed for fault/jitter streams (0 = derive from --seed)", "0");
  args.add_flag("cgn", "place every home behind a carrier-grade NAT tier (NAT444, "
                "deterministic RFC 7422 port blocks; 64 homes per CGN)");
  args.add_option("cgn-port-block",
                  "ports granted per CGN allocation block (requires --cgn)", "512");
  args.add_option("cgn-max-ports-per-home",
                  "cap on concurrently mapped CGN ports per home (requires --cgn)", "2048");
  args.add_option("pcap-out",
                  "capture every WAN-egress frame (post-NAT, post-CGN) to this classic "
                  "pcap file; byte-identical for any --workers");
  args.add_option("metrics-out",
                  "write the merged metrics as Prometheus text to this file "
                  "(byte-identical for any --workers)");
  args.add_option("run-report", "write the JSON run report to this file");
  args.add_flag("deterministic-report",
                "omit the run report's wall-clock section (for byte-for-byte diffs)");
  args.add_flag("no-traffic", "skip the Traffic window simulation");
  args.add_flag("help", "show this help");

  if (!args.parse(argc, argv) || args.has("help") || args.positional().empty()) {
    if (!args.error().empty()) std::fprintf(stderr, "error: %s\n\n", args.error().c_str());
    std::fputs(args.help("bismark_study <run|report|analyze>").c_str(), stderr);
    return args.has("help") ? 0 : 2;
  }

  // Scale-axis validation: a zero/negative/garbled --homes or a negative
  // budget is a usage error, not a 0-home run.
  if (const auto homes = args.get("homes")) {
    if (args.get_int("homes", -1) <= 0) {
      std::fprintf(stderr, "error: --homes must be a positive integer (got '%s')\n\n",
                   homes->c_str());
      std::fputs(args.help("bismark_study <run|report|analyze>").c_str(), stderr);
      return 2;
    }
  }
  if (args.get_int("memory-budget-mb", -1) < 0) {
    std::fprintf(stderr, "error: --memory-budget-mb must be a non-negative integer\n\n");
    std::fputs(args.help("bismark_study <run|report|analyze>").c_str(), stderr);
    return 2;
  }
  const auto usage_error = [&args](const std::string& message) {
    std::fprintf(stderr, "error: %s\n\n", message.c_str());
    std::fputs(args.help("bismark_study <run|report|analyze>").c_str(), stderr);
    return 2;
  };
  // Crash-safety knobs (DESIGN §12): a malformed cadence, a --resume that
  // contradicts the manifest-owned options, or an unusable spill directory
  // is a usage error at startup, never a failure half-way into a run.
  if (args.get_int("checkpoint-every", 0) < 0 ||
      (args.has("checkpoint-every") && args.get_int("checkpoint-every", -1) < 0)) {
    return usage_error("--checkpoint-every must be a non-negative integer");
  }
  if (args.get_int("checkpoint-every", 0) > 0 && args.get_int("memory-budget-mb", 0) <= 0 &&
      !args.has("resume")) {
    return usage_error(
        "--checkpoint-every requires fleet mode (--memory-budget-mb > 0 or --resume)");
  }
  if (args.has("spill-dir") && args.get_int("memory-budget-mb", 0) <= 0) {
    return usage_error("--spill-dir requires fleet mode (--memory-budget-mb > 0)");
  }
  // NAT444 knobs: the sub-options only mean something with the tier on, and
  // a malformed block size is a usage error before any simulation starts.
  if (args.has("cgn-port-block")) {
    if (!args.has("cgn")) return usage_error("--cgn-port-block requires --cgn");
    const auto block = args.get_int("cgn-port-block", -1);
    if (block <= 0 || block > 65535) {
      return usage_error("--cgn-port-block must be a positive integer (max 65535)");
    }
  }
  if (args.has("cgn-max-ports-per-home")) {
    if (!args.has("cgn")) return usage_error("--cgn-max-ports-per-home requires --cgn");
    if (args.get_int("cgn-max-ports-per-home", -1) <= 0) {
      return usage_error("--cgn-max-ports-per-home must be a positive integer");
    }
  }
  if (args.has("pcap-out") && args.has("resume")) {
    // Recovered shards skip their traffic window; the capture would be
    // silently partial.
    return usage_error("--pcap-out conflicts with --resume");
  }
  if (args.has("resume")) {
    if (args.get("resume")->empty()) {
      return usage_error("--resume needs the spill directory of the interrupted run");
    }
    static constexpr const char* kManifestOwned[] = {
        "seed",        "weeks",      "scale",      "homes",      "memory-budget-mb",
        "spill-dir",   "collector-outages-per-month", "heartbeat-loss",
        "upload-loss", "ack-loss",   "spool-capacity",           "fault-seed",
        "no-traffic",  "cgn",        "cgn-port-block", "cgn-max-ports-per-home"};
    for (const char* name : kManifestOwned) {
      if (args.has(name)) {
        return usage_error(std::string("--") + name +
                           " conflicts with --resume (the spill manifest supplies it)");
      }
    }
  }
  // The spill directory must be a writable directory before any work runs.
  {
    std::string dir;
    if (const auto resume_dir = args.get("resume")) {
      dir = *resume_dir;
    } else if (args.get_int("memory-budget-mb", 0) > 0) {
      dir = args.get_or("spill-dir", "bsmk-segments");
    }
    if (!dir.empty()) {
      namespace fs = std::filesystem;
      std::error_code ec;
      if (fs::exists(dir, ec) && !fs::is_directory(dir, ec)) {
        return usage_error("spill dir " + dir + " exists and is not a directory");
      }
      fs::create_directories(dir, ec);
      if (ec) {
        return usage_error("cannot create spill dir " + dir + ": " + ec.message());
      }
      // Writability probe via plain ofstream: deliberately outside the Io
      // fault seam, so an injected fault plan exercises the run, not the
      // startup validation.
      const std::string probe = dir + "/.probe.tmp";
      std::ofstream f(probe, std::ios::binary);
      f << "probe";
      f.flush();
      const bool writable = static_cast<bool>(f);
      f.close();
      fs::remove(probe, ec);
      if (!writable) {
        return usage_error("spill dir " + dir + " is not writable");
      }
    }
  }

  // Injected I/O faults (BISMARK_IO_FAULT) arm before any durable write.
  {
    std::string error;
    if (!core::InstallIoFaultPlanFromEnv(&error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }

  const std::string& command = args.positional()[0];
  try {
    if (command == "run") return CmdRun(args);
    if (command == "report") return CmdReport(args);
    if (command == "analyze") return CmdAnalyze(args);
  } catch (const std::exception& e) {
    // I/O failures on the durable paths (full disk, failed fsync, corrupt
    // segments) throw with a precise diagnostic; a crash-safe tool turns
    // them into a clear nonzero exit, never a truncated-but-successful run.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s' (expected run, report or analyze)\n",
               command.c_str());
  return 2;
}
