// Figure 11: CDF of neighbour access points visible on the 2.4 GHz scan
// channel, developed vs developing (note the bimodal shape).
#include "analysis/infrastructure.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto cdfs = analysis::NeighborAps(repo);
  const auto cdfs5 = analysis::NeighborAps5(repo);

  PrintBanner("Figure 11: Neighbour APs on the 2.4 GHz scan channel");

  TextTable table({"APs (<=)", "developed homes", "developing homes"});
  for (int aps : {0, 1, 2, 3, 5, 8, 10, 15, 20, 25, 30, 40, 60}) {
    table.add_row({TextTable::Int(aps), TextTable::Pct(cdfs.developed.at(aps)),
                   TextTable::Pct(cdfs.developing.at(aps))});
  }
  table.print();

  bench::PrintComparison("median neighbour APs (developed)", "~20",
                         TextTable::Num(cdfs.developed.median(), 1));
  bench::PrintComparison("median neighbour APs (developing)", "~2",
                         TextTable::Num(cdfs.developing.median(), 1));
  // Bimodality: mass near zero and mass past 10 with little between.
  const double low_dev = cdfs.developed.at(3.0);
  const double mid_dev = cdfs.developed.at(10.0) - low_dev;
  const double high_dev = 1.0 - cdfs.developed.at(10.0);
  bench::PrintComparison("developed modes (<=3 / 4-10 / >10 APs)",
                         "bimodal: few or a lot (>10)",
                         TextTable::Pct(low_dev) + " / " + TextTable::Pct(mid_dev) + " / " +
                             TextTable::Pct(high_dev));
  const double high_dvg = 1.0 - cdfs.developing.at(3.0);
  bench::PrintComparison("developing homes with >3 APs", "(the dense mode)",
                         TextTable::Pct(high_dvg));
  bench::PrintComparison("median neighbour APs on 5 GHz (developed)", "~1",
                         TextTable::Num(cdfs5.developed.median(), 1));
  return 0;
}
