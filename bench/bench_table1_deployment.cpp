// Table 1: classification of countries based on GDP per capita, with the
// deployment's router counts per country.
#include "common.h"

using namespace bismark;

int main() {
  const auto& study = bench::SharedStudy();
  const auto& repo = study.repository();

  PrintBanner("Table 1: Classification of countries based on GDP per capita");

  TextTable table({"group", "country", "routers", "GDP PPP ($)", "homes registered"});
  int developed_total = 0, developing_total = 0;
  for (const auto& country : home::StandardRoster()) {
    int registered = 0;
    for (const auto& info : repo.homes()) {
      if (info.country_code == country.code) ++registered;
    }
    table.add_row({country.developed ? "developed" : "developing", country.name,
                   TextTable::Int(country.router_count),
                   TextTable::Int(static_cast<long long>(country.gdp_ppp_per_capita)),
                   TextTable::Int(registered)});
    (country.developed ? developed_total : developing_total) += country.router_count;
  }
  table.print();

  bench::PrintComparison("total developed routers", "90", TextTable::Int(developed_total));
  bench::PrintComparison("total developing routers", "36", TextTable::Int(developing_total));
  bench::PrintComparison("total routers", "126",
                         TextTable::Int(developed_total + developing_total));
  bench::PrintComparison("countries", "19",
                         TextTable::Int(static_cast<long long>(home::StandardRoster().size())));
  return 0;
}
