// Figure 7: CDF of the number of unique devices in each home network.
#include "analysis/infrastructure.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto cdf = analysis::UniqueDevicesCdf(repo);

  PrintBanner("Figure 7: Number of devices in each home network");

  TextTable table({"devices (<=)", "fraction of homes"});
  for (int d = 1; d <= 16; ++d) {
    table.add_row({TextTable::Int(d), TextTable::Pct(cdf.at(d))});
  }
  table.print();

  bench::PrintComparison("homes with >= 2 devices", "(nearly all)",
                         TextTable::Pct(1.0 - cdf.at(1.0)));
  bench::PrintComparison("homes with >= 5 devices", "more than half",
                         TextTable::Pct(1.0 - cdf.at(4.0)));
  bench::PrintComparison("median devices per home", ">= 5",
                         TextTable::Num(cdf.median(), 1));
  bench::PrintComparison("mean devices per home", "~7",
                         TextTable::Num(analysis::MeanUniqueDevices(repo), 1));
  return 0;
}
