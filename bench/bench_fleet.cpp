// Fleet-scale bench: stream N-home deployments through a bounded memory
// budget and certify three things per N: ingest rate (records/sec), the
// memory cost per home (peak RSS, measured on a forked child so each N
// gets its own high-water mark), and the spill footprint on disk. Also
// re-runs the paper-scale 126-home study *in fleet mode* and checks its
// export fingerprint against the golden in-RAM hash — the spilled path
// must be byte-identical to the resident one.
//
// Reproduce locally with:
//   build/bench/bench_fleet                             # N = 1k/10k/100k
//   build/bench/bench_fleet --homes 1000,10000 --json BENCH_fleet.json
//   build/bench/bench_fleet --gate-bytes-per-home 65536 --gate-records-per-sec 100000
//   build/bench/bench_fleet --checksum-overhead-homes 1000 --gate-checksum-overhead-pct 5
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "collect/export.h"
#include "core/args.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "home/deployment.h"
#include "obs/json.h"

using namespace bismark;

namespace {

/// The in-RAM export hash for seed 20131023 / 126 homes / Compressed
/// 4-week windows (the bench_parallel_scaling golden). The fleet-mode
/// spill path must reproduce it bit-for-bit.
constexpr std::size_t kGoldenExportHash = 0xf82316df7b15d09bULL;

struct FleetPoint {
  int homes{0};
  std::uint64_t rows{0};
  double wall_s{0.0};
  double records_per_sec{0.0};
  long peak_rss_bytes{0};
  double rss_bytes_per_home{0.0};
  long disk_bytes{0};
  double disk_bytes_per_home{0.0};
};

home::DeploymentOptions FleetOptions(int homes, int weeks, int workers, int budget_mb,
                                     const std::string& spill_dir,
                                     bool verify_checksums = true) {
  home::DeploymentOptions options;
  options.seed = 20131023;
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), weeks);
  options.homes = homes;
  options.workers = workers;
  options.memory_budget_bytes = static_cast<std::size_t>(budget_mb) << 20;
  options.spill_dir = spill_dir;
  options.spill_verify_checksums = verify_checksums;
  return options;
}

std::size_t ExportFingerprint(const collect::DataRepository& repo) {
  std::ostringstream out;
  collect::ExportHeartbeats(repo, out);
  collect::ExportUptime(repo, out);
  collect::ExportCapacity(repo, out);
  collect::ExportDevices(repo, out);
  collect::ExportWifi(repo, out);
  collect::ExportTrafficFlows(repo, out);
  return std::hash<std::string>{}(out.str());
}

long DirBytes(const std::filesystem::path& dir) {
  std::error_code ec;
  long total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) total += static_cast<long>(entry.file_size(ec));
  }
  return total;
}

/// Run `body` in a forked child, parse the single result line it writes to
/// the pipe, and return the child's peak RSS in bytes via wait4. Forking
/// per measurement is what makes peak RSS meaningful per configuration —
/// ru_maxrss of a single process is a monotone high-water mark.
bool RunInChild(const std::function<void(int fd)>& body, std::string* result_line,
                long* peak_rss_bytes) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    body(fds[1]);
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  std::string buf;
  char chunk[256];
  ssize_t n = 0;
  while ((n = read(fds[0], chunk, sizeof(chunk))) > 0) buf.append(chunk, static_cast<std::size_t>(n));
  close(fds[0]);
  int status = 0;
  struct rusage usage {};
  if (wait4(pid, &status, 0, &usage) != pid) {
    std::perror("wait4");
    return false;
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "error: child exited abnormally (status %d)\n", status);
    return false;
  }
  *result_line = buf;
  *peak_rss_bytes = usage.ru_maxrss * 1024L;  // Linux reports KiB
  return true;
}

/// Peak RSS of a child that loads the binary and does nothing: the fixed
/// per-process overhead subtracted before computing bytes/home.
long BaselineRss() {
  std::string line;
  long rss = 0;
  if (!RunInChild([](int fd) { dprintf(fd, "ok\n"); }, &line, &rss)) return 0;
  return rss;
}

bool BenchOne(int homes, int weeks, int workers, int budget_mb, long baseline_rss,
              FleetPoint* out) {
  const auto spill =
      std::filesystem::temp_directory_path() /
      ("bsmk-fleet-" + std::to_string(homes) + "-" + std::to_string(getpid()));
  std::filesystem::remove_all(spill);

  std::string line;
  long rss = 0;
  const bool ok = RunInChild(
      [&](int fd) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto study = home::Deployment::RunStudy(
            FleetOptions(homes, weeks, workers, budget_mb, spill.string()));
        const auto t1 = std::chrono::steady_clock::now();
        dprintf(fd, "rows=%llu wall_s=%.6f\n",
                static_cast<unsigned long long>(study->repository().total_rows()),
                std::chrono::duration<double>(t1 - t0).count());
      },
      &line, &rss);
  if (!ok) return false;

  unsigned long long rows = 0;
  double wall_s = 0.0;
  if (std::sscanf(line.c_str(), "rows=%llu wall_s=%lf", &rows, &wall_s) != 2) {
    std::fprintf(stderr, "error: bad child result line: %s\n", line.c_str());
    return false;
  }
  out->homes = homes;
  out->rows = rows;
  out->wall_s = wall_s;
  out->records_per_sec = wall_s > 0.0 ? static_cast<double>(rows) / wall_s : 0.0;
  out->peak_rss_bytes = rss;
  out->rss_bytes_per_home =
      static_cast<double>(std::max(0L, rss - baseline_rss)) / homes;
  out->disk_bytes = DirBytes(spill);
  out->disk_bytes_per_home = static_cast<double>(out->disk_bytes) / homes;
  std::filesystem::remove_all(spill);
  return true;
}

struct ChecksumOverhead {
  int homes{0};
  std::uint64_t rows{0};
  double wall_on_s{0.0};
  double wall_off_s{0.0};
  double rps_on{0.0};
  double rps_off{0.0};
  double overhead_pct{0.0};
};

/// Run the same study + full export with CRC verification on vs off on the
/// merge read path and report the throughput cost of verification.
/// Exporting is what re-merges every spilled section, so the child streams
/// all rows to make the verify path the thing being measured. Each mode
/// takes the best of three runs: the CRC cost is deterministic compute,
/// while single-sample wall times on a shared runner carry several percent
/// of scheduler noise — min-of-K isolates the former.
bool MeasureChecksumOverhead(int homes, int weeks, int workers, int budget_mb,
                             ChecksumOverhead* out) {
  const auto one = [&](bool verify, std::uint64_t* rows, double* wall_s) {
    const auto spill = std::filesystem::temp_directory_path() /
                       ("bsmk-fleet-crc-" + std::string(verify ? "on" : "off") + "-" +
                        std::to_string(getpid()));
    std::filesystem::remove_all(spill);
    std::string line;
    long rss = 0;
    const bool ok = RunInChild(
        [&](int fd) {
          const auto t0 = std::chrono::steady_clock::now();
          const auto study = home::Deployment::RunStudy(
              FleetOptions(homes, weeks, workers, budget_mb, spill.string(), verify));
          const std::size_t hash = ExportFingerprint(study->repository());
          const auto t1 = std::chrono::steady_clock::now();
          dprintf(fd, "rows=%llu wall_s=%.6f hash=%016zx\n",
                  static_cast<unsigned long long>(study->repository().total_rows()),
                  std::chrono::duration<double>(t1 - t0).count(), hash);
        },
        &line, &rss);
    std::filesystem::remove_all(spill);
    if (!ok) return false;
    unsigned long long r = 0;
    if (std::sscanf(line.c_str(), "rows=%llu wall_s=%lf", &r, wall_s) != 2) {
      std::fprintf(stderr, "error: bad checksum-overhead result line: %s\n", line.c_str());
      return false;
    }
    *rows = r;
    return true;
  };
  out->homes = homes;
  std::uint64_t rows_off = 0;
  out->wall_on_s = 0.0;
  out->wall_off_s = 0.0;
  constexpr int kRepeats = 3;
  for (int i = 0; i < kRepeats; ++i) {
    double on_s = 0.0;
    double off_s = 0.0;
    if (!one(true, &out->rows, &on_s)) return false;
    if (!one(false, &rows_off, &off_s)) return false;
    if (out->wall_on_s == 0.0 || on_s < out->wall_on_s) out->wall_on_s = on_s;
    if (out->wall_off_s == 0.0 || off_s < out->wall_off_s) out->wall_off_s = off_s;
  }
  if (rows_off != out->rows) {
    std::fprintf(stderr, "error: checksum on/off runs disagree on row count\n");
    return false;
  }
  out->rps_on = out->wall_on_s > 0.0 ? static_cast<double>(out->rows) / out->wall_on_s : 0.0;
  out->rps_off =
      out->wall_off_s > 0.0 ? static_cast<double>(out->rows) / out->wall_off_s : 0.0;
  out->overhead_pct = out->wall_off_s > 0.0
                          ? 100.0 * (out->wall_on_s - out->wall_off_s) / out->wall_off_s
                          : 0.0;
  return true;
}

/// Paper-scale determinism anchor: 126 homes through the spill path must
/// export the same bytes as the in-RAM golden. Returns true on match.
bool CheckGolden(int workers, std::size_t* hash_out) {
  const auto spill = std::filesystem::temp_directory_path() /
                     ("bsmk-fleet-golden-" + std::to_string(getpid()));
  std::filesystem::remove_all(spill);
  std::string line;
  long rss = 0;
  const bool ok = RunInChild(
      [&](int fd) {
        const auto study = home::Deployment::RunStudy(
            FleetOptions(126, 4, workers, 8, spill.string()));
        dprintf(fd, "hash=%016zx\n", ExportFingerprint(study->repository()));
      },
      &line, &rss);
  std::filesystem::remove_all(spill);
  if (!ok) return false;
  std::size_t hash = 0;
  if (std::sscanf(line.c_str(), "hash=%zx", &hash) != 1) {
    std::fprintf(stderr, "error: bad golden result line: %s\n", line.c_str());
    return false;
  }
  *hash_out = hash;
  return hash == kGoldenExportHash;
}

std::vector<int> ParseHomesList(const std::string& spec) {
  std::vector<int> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int n = std::atoi(item.c_str());
    if (n > 0) out.push_back(n);
  }
  return out;
}

int WriteJson(const std::string& path, const std::vector<FleetPoint>& points, int weeks,
              int workers, int budget_mb, long baseline_rss, std::size_t golden_hash,
              bool golden_ok, const ChecksumOverhead* crc) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  obs::JsonWriter json(file);
  json.begin_object();
  json.kv("schema", "bismark-bench/v1");
  json.kv("bench", "fleet");
  json.kv("hardware_threads", ThreadPool::HardwareWorkers());
  json.kv("weeks", weeks);
  json.kv("workers", workers);
  // Same convention as bench_parallel_scaling: a run asking for more
  // workers than the machine has threads measures contention, not scaling,
  // and consumers must not read its timings as throughput claims.
  json.kv("oversubscribed", workers > ThreadPool::HardwareWorkers());
  json.kv("budget_mb", budget_mb);
  json.kv("baseline_rss_bytes", baseline_rss);
  char hash[20];
  std::snprintf(hash, sizeof(hash), "%016zx", golden_hash);
  json.key("golden");
  json.begin_object();
  json.kv("homes", 126);
  json.kv("export_hash", hash);
  json.kv("matches_golden", golden_ok);
  json.end_object();
  if (crc != nullptr) {
    json.key("checksum_overhead");
    json.begin_object();
    json.kv("homes", crc->homes);
    json.kv("rows", static_cast<std::int64_t>(crc->rows));
    json.kv("wall_verify_on_s", crc->wall_on_s);
    json.kv("wall_verify_off_s", crc->wall_off_s);
    json.kv("records_per_sec_verify_on", crc->rps_on);
    json.kv("records_per_sec_verify_off", crc->rps_off);
    json.kv("overhead_pct", crc->overhead_pct);
    json.end_object();
  }
  json.key("results");
  json.begin_array();
  for (const auto& p : points) {
    json.begin_object();
    json.kv("homes", p.homes);
    json.kv("rows", static_cast<std::int64_t>(p.rows));
    json.kv("wall_s", p.wall_s);
    json.kv("records_per_sec", p.records_per_sec);
    json.kv("peak_rss_bytes", static_cast<std::int64_t>(p.peak_rss_bytes));
    json.kv("rss_bytes_per_home", p.rss_bytes_per_home);
    json.kv("disk_bytes", static_cast<std::int64_t>(p.disk_bytes));
    json.kv("disk_bytes_per_home", p.disk_bytes_per_home);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::printf("wrote %zu results to %s\n", points.size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_fleet: bounded-memory fleet scale-out (records/sec, bytes/home)");
  args.add_option("homes", "comma-separated roster sizes to sweep", "1000,10000,100000");
  args.add_option("weeks", "compressed heartbeat window length per run", "1");
  args.add_option("workers", "worker threads per run (0 = all cores)", "0");
  args.add_option("budget-mb", "record-staging memory budget per run (MiB)", "64");
  args.add_option("json", "also write the results as JSON to this file");
  args.add_option("gate-bytes-per-home",
                  "fail (exit 5) if any row's RSS bytes/home (above baseline) "
                  "exceeds this (0 = no gate)", "0");
  args.add_option("gate-records-per-sec",
                  "fail (exit 6) if any row ingests slower than this (0 = no gate)",
                  "0");
  args.add_option("checksum-overhead-homes",
                  "roster size for the CRC-verify on/off comparison (0 = skip)", "1000");
  args.add_option("gate-checksum-overhead-pct",
                  "fail (exit 7) if CRC verification slows the run by more than this "
                  "percentage (0 = no gate)", "0");
  args.add_flag("skip-golden", "skip the 126-home export-hash determinism anchor");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n", args.error().c_str());
    return 2;
  }
  const auto homes_list = ParseHomesList(*args.get("homes"));
  if (homes_list.empty()) {
    std::fprintf(stderr, "error: --homes needs a comma-separated list of positive ints\n");
    return 2;
  }
  const int weeks = static_cast<int>(args.get_int("weeks", 1));
  const int workers = static_cast<int>(args.get_int("workers", 0));
  const int budget_mb = static_cast<int>(args.get_int("budget-mb", 64));

  if (workers > ThreadPool::HardwareWorkers()) {
    std::printf("note: %d workers on %d hardware threads — timings measure "
                "oversubscription, not scaling (rows are marked in the JSON)\n",
                workers, ThreadPool::HardwareWorkers());
  }

  const long baseline_rss = BaselineRss();
  std::printf("baseline process RSS: %.1f MiB; budget %d MiB, %d-week windows\n",
              baseline_rss / 1048576.0, budget_mb, weeks);

  std::size_t golden_hash = 0;
  bool golden_ok = true;
  if (!args.has("skip-golden")) {
    golden_ok = CheckGolden(workers, &golden_hash);
    std::printf("126-home fleet export hash: %016zx (%s golden %016zx)\n", golden_hash,
                golden_ok ? "matches" : "MISMATCHES", kGoldenExportHash);
  }

  std::vector<FleetPoint> points;
  TextTable table({"homes", "rows", "wall_s", "records/s", "rss_mb", "rss_b/home",
                   "disk_b/home"});
  for (const int n : homes_list) {
    FleetPoint p;
    if (!BenchOne(n, weeks, workers, budget_mb, baseline_rss, &p)) return 1;
    table.add_row({TextTable::Int(n), TextTable::Int(static_cast<long long>(p.rows)),
                   TextTable::Num(p.wall_s, 2), TextTable::Num(p.records_per_sec, 0),
                   TextTable::Num(p.peak_rss_bytes / 1048576.0, 1),
                   TextTable::Num(p.rss_bytes_per_home, 0),
                   TextTable::Num(p.disk_bytes_per_home, 0)});
    points.push_back(p);
  }
  table.print();

  const int crc_homes = static_cast<int>(args.get_int("checksum-overhead-homes", 1000));
  ChecksumOverhead crc;
  bool have_crc = false;
  if (crc_homes > 0) {
    if (!MeasureChecksumOverhead(crc_homes, weeks, workers, budget_mb, &crc)) return 1;
    have_crc = true;
    std::printf(
        "checksum overhead (%d homes, run + full export): verify-on %.0f records/s, "
        "verify-off %.0f records/s, overhead %.1f%%\n",
        crc.homes, crc.rps_on, crc.rps_off, crc.overhead_pct);
  }

  if (const auto path = args.get("json")) {
    if (const int rc = WriteJson(*path, points, weeks, workers, budget_mb, baseline_rss,
                                 golden_hash, golden_ok, have_crc ? &crc : nullptr)) {
      return rc;
    }
  }

  if (!golden_ok) {
    std::fprintf(stderr,
                 "FAIL: fleet-mode 126-home export hash diverged from the in-RAM "
                 "golden — the spill path is not byte-identical\n");
    return 4;
  }
  if (const double gate = args.get_double("gate-bytes-per-home", 0.0); gate > 0.0) {
    for (const auto& p : points) {
      if (p.rss_bytes_per_home > gate) {
        std::fprintf(stderr, "gate-bytes-per-home: %d homes used %.0f bytes/home, gate is %.0f\n",
                     p.homes, p.rss_bytes_per_home, gate);
        return 5;
      }
    }
    std::printf("gate-bytes-per-home: all rows within %.0f bytes/home\n", gate);
  }
  if (const double gate = args.get_double("gate-records-per-sec", 0.0); gate > 0.0) {
    for (const auto& p : points) {
      if (p.records_per_sec < gate) {
        std::fprintf(stderr, "gate-records-per-sec: %d homes ingested %.0f records/s, floor is %.0f\n",
                     p.homes, p.records_per_sec, gate);
        return 6;
      }
    }
    std::printf("gate-records-per-sec: all rows above %.0f records/s\n", gate);
  }
  if (const double gate = args.get_double("gate-checksum-overhead-pct", 0.0);
      gate > 0.0 && have_crc) {
    if (crc.overhead_pct > gate) {
      std::fprintf(stderr,
                   "gate-checksum-overhead-pct: CRC verification cost %.1f%%, gate is "
                   "%.1f%%\n",
                   crc.overhead_pct, gate);
      return 7;
    }
    std::printf("gate-checksum-overhead-pct: %.1f%% within the %.1f%% gate\n",
                crc.overhead_pct, gate);
  }
  return 0;
}
