// Parallel-scaling bench: wall-clock for the sharded deployment runner at
// roster_scale x {1, 4, 16} and worker counts {1, 2, 4, 8}, plus a
// determinism cross-check (every configuration must hash identically).
//
// Reproduce locally with:
//   build/bench/bench_parallel_scaling            # all scales
//   build/bench/bench_parallel_scaling --scale 4  # one scale
#include <chrono>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "collect/export.h"
#include "core/args.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "home/deployment.h"

using namespace bismark;

namespace {

home::DeploymentOptions ScalingOptions(double roster_scale, int workers) {
  home::DeploymentOptions options;
  options.seed = 20131023;
  // Compressed windows keep the x16 roster tractable while every stage
  // (heartbeats, passive services, traffic engine) still runs.
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 4);
  options.roster_scale = roster_scale;
  options.workers = workers;
  return options;
}

std::size_t ExportFingerprint(const collect::DataRepository& repo) {
  std::ostringstream out;
  collect::ExportHeartbeats(repo, out);
  collect::ExportUptime(repo, out);
  collect::ExportCapacity(repo, out);
  collect::ExportDevices(repo, out);
  collect::ExportWifi(repo, out);
  collect::ExportTrafficFlows(repo, out);
  return std::hash<std::string>{}(out.str());
}

double RunSeconds(double roster_scale, int workers, std::size_t* fingerprint) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto study = home::Deployment::RunStudy(ScalingOptions(roster_scale, workers));
  const auto t1 = std::chrono::steady_clock::now();
  *fingerprint = ExportFingerprint(study->repository());
  return std::chrono::duration<double>(t1 - t0).count();
}

void BenchScale(double roster_scale) {
  std::printf("\n== roster_scale %.0f (%d hardware threads available) ==\n", roster_scale,
              ThreadPool::HardwareWorkers());
  TextTable table({"workers", "wall_s", "speedup", "export_hash"});
  double serial_s = 0.0;
  std::size_t serial_fp = 0;
  for (const int workers : {1, 2, 4, 8}) {
    std::size_t fp = 0;
    const double s = RunSeconds(roster_scale, workers, &fp);
    if (workers == 1) {
      serial_s = s;
      serial_fp = fp;
    }
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016zx%s", fp,
                  fp == serial_fp ? "" : " MISMATCH!");
    table.add_row({TextTable::Int(workers), TextTable::Num(s, 2),
                   TextTable::Num(serial_s / s, 2), hash});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_parallel_scaling: sharded-runner speedup and determinism");
  args.add_option("scale", "run only this roster_scale (0 = the full {1,4,16} sweep)", "0");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n", args.error().c_str());
    return 2;
  }
  const double only = args.get_double("scale", 0.0);
  if (only > 0.0) {
    BenchScale(only);
  } else {
    for (const double scale : {1.0, 4.0, 16.0}) BenchScale(scale);
  }
  return 0;
}
