// Parallel-scaling bench: wall-clock for the sharded deployment runner at
// roster_scale x {1, 4, 16} and worker counts {1, 2, 4, 8}, plus a
// determinism cross-check (every configuration must hash identically).
//
// Reproduce locally with:
//   build/bench/bench_parallel_scaling            # all scales
//   build/bench/bench_parallel_scaling --scale 4  # one scale
//   build/bench/bench_parallel_scaling --scale 1 --json BENCH_parallel.json
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "collect/export.h"
#include "core/args.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "home/deployment.h"
#include "obs/json.h"

using namespace bismark;

namespace {

struct ScalePoint {
  double scale{0.0};
  int workers{0};
  double wall_s{0.0};
  double speedup{1.0};
  std::size_t export_hash{0};
  bool matches_serial{true};
  /// Hardware threads available when this row was measured. Rows with
  /// workers > hardware_threads are oversubscribed: their wall_s measures
  /// scheduling overhead, not parallel speedup, and must not be read as a
  /// scaling regression.
  int hardware_threads{0};
  bool oversubscribed{false};
};

home::DeploymentOptions ScalingOptions(double roster_scale, int workers) {
  home::DeploymentOptions options;
  options.seed = 20131023;
  // Compressed windows keep the x16 roster tractable while every stage
  // (heartbeats, passive services, traffic engine) still runs.
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 4);
  options.roster_scale = roster_scale;
  options.workers = workers;
  return options;
}

std::size_t ExportFingerprint(const collect::DataRepository& repo) {
  std::ostringstream out;
  collect::ExportHeartbeats(repo, out);
  collect::ExportUptime(repo, out);
  collect::ExportCapacity(repo, out);
  collect::ExportDevices(repo, out);
  collect::ExportWifi(repo, out);
  collect::ExportTrafficFlows(repo, out);
  return std::hash<std::string>{}(out.str());
}

double RunSeconds(double roster_scale, int workers, std::size_t* fingerprint) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto study = home::Deployment::RunStudy(ScalingOptions(roster_scale, workers));
  const auto t1 = std::chrono::steady_clock::now();
  *fingerprint = ExportFingerprint(study->repository());
  return std::chrono::duration<double>(t1 - t0).count();
}

void BenchScale(double roster_scale, std::vector<ScalePoint>& out) {
  const int hw = ThreadPool::HardwareWorkers();
  std::printf("\n== roster_scale %.0f (%d hardware threads available) ==\n", roster_scale, hw);
  TextTable table({"workers", "wall_s", "speedup", "export_hash"});
  double serial_s = 0.0;
  std::size_t serial_fp = 0;
  for (const int workers : {1, 2, 4, 8}) {
    if (workers > hw) {
      std::fprintf(stderr,
                   "warning: %d workers on a %d-hardware-thread machine; the "
                   "wall_s/speedup of this row measures oversubscription, not "
                   "parallel scaling\n",
                   workers, hw);
    }
    std::size_t fp = 0;
    const double s = RunSeconds(roster_scale, workers, &fp);
    if (workers == 1) {
      serial_s = s;
      serial_fp = fp;
    }
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016zx%s", fp,
                  fp == serial_fp ? "" : " MISMATCH!");
    table.add_row({TextTable::Int(workers), TextTable::Num(s, 2),
                   TextTable::Num(serial_s / s, 2), hash});
    out.push_back(ScalePoint{roster_scale, workers, s, serial_s / s, fp,
                             fp == serial_fp, hw, workers > hw});
  }
  table.print();
}

int WriteJson(const std::string& path, const std::vector<ScalePoint>& points) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  obs::JsonWriter json(file);
  json.begin_object();
  json.kv("schema", "bismark-bench/v1");
  json.kv("bench", "parallel_scaling");
  json.kv("hardware_threads", ThreadPool::HardwareWorkers());
  json.key("results");
  json.begin_array();
  for (const auto& p : points) {
    char hash[20];
    std::snprintf(hash, sizeof(hash), "%016zx", p.export_hash);
    json.begin_object();
    json.kv("scale", p.scale);
    json.kv("workers", p.workers);
    json.kv("wall_s", p.wall_s);
    json.kv("speedup", p.speedup);
    json.kv("export_hash", hash);
    json.kv("matches_serial", p.matches_serial);
    json.kv("hardware_threads", p.hardware_threads);
    json.kv("oversubscribed", p.oversubscribed);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::printf("wrote %zu results to %s\n", points.size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("bench_parallel_scaling: sharded-runner speedup and determinism");
  args.add_option("scale", "run only this roster_scale (0 = the full {1,4,16} sweep)", "0");
  args.add_option("json", "also write the results as JSON to this file");
  args.add_flag("strict", "fail (exit 3) if any row ran more workers than hardware threads");
  args.add_option("gate-speedup",
                  "fail (exit 4) unless every workers=4 row reaches this speedup; "
                  "requires >= 4 hardware threads (0 = no gate)",
                  "0");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n", args.error().c_str());
    return 2;
  }
  std::vector<ScalePoint> points;
  const double only = args.get_double("scale", 0.0);
  if (only > 0.0) {
    BenchScale(only, points);
  } else {
    for (const double scale : {1.0, 4.0, 16.0}) BenchScale(scale, points);
  }
  if (const auto path = args.get("json")) {
    if (const int rc = WriteJson(*path, points)) return rc;
  }
  if (args.has("strict")) {
    for (const auto& p : points) {
      if (p.oversubscribed) {
        std::fprintf(stderr,
                     "strict: %d workers exceeded the %d hardware threads; these "
                     "numbers do not measure parallel scaling\n",
                     p.workers, p.hardware_threads);
        return 3;
      }
    }
  }
  if (const double gate = args.get_double("gate-speedup", 0.0); gate > 0.0) {
    const int hw = ThreadPool::HardwareWorkers();
    if (hw < 4) {
      std::fprintf(stderr,
                   "gate-speedup: needs >= 4 hardware threads to certify the "
                   "4-worker speedup, this machine has %d\n",
                   hw);
      return 4;
    }
    for (const auto& p : points) {
      if (p.workers != 4) continue;
      if (p.speedup < gate) {
        std::fprintf(stderr,
                     "gate-speedup: scale %.0f at 4 workers reached %.2fx, gate "
                     "is %.2fx\n",
                     p.scale, p.speedup, gate);
        return 4;
      }
      std::printf("gate-speedup: scale %.0f at 4 workers %.2fx >= %.2fx ok\n", p.scale,
                  p.speedup, gate);
    }
  }
  return 0;
}
