// Figure 19: breakdown of traffic by domain rank — (a) volume share by
// volume rank, (b) connection share by connection rank, (c) connection
// share by volume rank — plus the whitelist "Total" coverage.
#include "analysis/usage.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto conc = analysis::DomainUsageShares(repo, 10);

  PrintBanner("Figure 19: Traffic share by whitelisted-domain rank");

  TextTable table({"rank", "(a) volume share", "(b) conns by conn-rank",
                   "(c) conns by vol-rank"});
  for (std::size_t r = 0; r < conc.by_rank.size(); ++r) {
    table.add_row({TextTable::Int(static_cast<long long>(r + 1)),
                   TextTable::Pct(conc.by_rank[r].volume_share),
                   TextTable::Pct(conc.by_rank[r].conns_by_conn_rank),
                   TextTable::Pct(conc.by_rank[r].conns_by_vol_rank)});
  }
  table.print();

  bench::PrintComparison("top domain's share of total volume", "~38%",
                         TextTable::Pct(conc.by_rank[0].volume_share));
  bench::PrintComparison("top domain's share of connections (by volume rank)", "< 14%",
                         TextTable::Pct(conc.by_rank[0].conns_by_vol_rank));
  bench::PrintComparison("2nd domain volume / connections", "~11% / ~7%",
                         TextTable::Pct(conc.by_rank[1].volume_share) + " / " +
                             TextTable::Pct(conc.by_rank[1].conns_by_vol_rank));
  bench::PrintComparison("top connection-rank domain's share of connections", "~19%",
                         TextTable::Pct(conc.by_rank[0].conns_by_conn_rank));
  bench::PrintComparison("whitelisted (\"Total\") share of volume", "~65%",
                         TextTable::Pct(conc.whitelisted_volume_share));
  return 0;
}
