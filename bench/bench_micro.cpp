// Micro-benchmarks (google-benchmark) for the hot substrate paths: NAT
// translation, DNS resolution, interval arithmetic, throughput metering,
// the event engine, and the statistics kernels.
//
//   build/bench/bench_micro                          # console tables
//   build/bench/bench_micro --json BENCH_micro.json  # plus JSON artifact
#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/fleet.h"
#include "bismark/meter.h"
#include "collect/column_snapshot.h"
#include "collect/export.h"
#include "collect/import.h"
#include "collect/repository.h"
#include "collect/snapshot.h"
#include "collect/spill.h"
#include "common.h"
#include "core/cdf.h"
#include "core/crc32c.h"
#include "core/intervals.h"
#include "core/rng.h"
#include "net/cgn.h"
#include "net/dns.h"
#include "net/nat.h"
#include "net/wire.h"
#include "obs/json.h"
#include "sim/engine.h"
#include "traffic/domains.h"

namespace bismark {
namespace {

const TimePoint t0 = MakeTime({2013, 4, 1});

void BM_NatOutboundNewFlow(benchmark::State& state) {
  net::NatTable nat(net::NatConfig{});
  std::uint16_t port = 1;
  std::uint32_t host = 1;
  for (auto _ : state) {
    net::Packet p;
    p.timestamp = t0;
    p.tuple = {net::Ipv4Address(10, 0, static_cast<std::uint8_t>(host >> 8 & 0xff),
                                static_cast<std::uint8_t>(host & 0xff)),
               net::Ipv4Address(93, 184, 216, 34), port, 443, net::Protocol::kTcp};
    p.lan_mac = net::MacAddress::FromParts(0x001EC2, host);
    benchmark::DoNotOptimize(nat.translate_outbound(p));
    if (++port == 0) port = 1;
    ++host;
    if (nat.active_mappings() > 50000) {
      state.PauseTiming();
      nat.expire_idle(t0 + Days(365));
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_NatOutboundNewFlow);

void BM_NatOutboundExistingFlow(benchmark::State& state) {
  net::NatTable nat(net::NatConfig{});
  net::Packet p;
  p.timestamp = t0;
  p.tuple = {net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(93, 184, 216, 34), 1234, 443,
             net::Protocol::kTcp};
  p.lan_mac = net::MacAddress::FromParts(0x001EC2, 1);
  nat.translate_outbound(p);
  for (auto _ : state) {
    net::Packet q;
    q.timestamp = t0;
    q.tuple = {net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(93, 184, 216, 34), 1234, 443,
               net::Protocol::kTcp};
    q.lan_mac = p.lan_mac;
    benchmark::DoNotOptimize(nat.translate_outbound(q));
  }
}
BENCHMARK(BM_NatOutboundExistingFlow);

void BM_NatInbound(benchmark::State& state) {
  net::NatTable nat(net::NatConfig{});
  net::Packet out;
  out.timestamp = t0;
  out.tuple = {net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(93, 184, 216, 34), 1234, 443,
               net::Protocol::kTcp};
  out.lan_mac = net::MacAddress::FromParts(0x001EC2, 1);
  nat.translate_outbound(out);
  const net::FiveTuple reply = out.tuple.reversed();
  for (auto _ : state) {
    net::Packet in;
    in.timestamp = t0;
    in.tuple = reply;
    in.direction = net::Direction::kDownstream;
    benchmark::DoNotOptimize(nat.translate_inbound(in));
  }
}
BENCHMARK(BM_NatInbound);

// --- wire dataplane ----------------------------------------------------------

net::Packet WireBenchPacket() {
  net::Packet p;
  p.timestamp = t0;
  p.tuple = {net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(93, 184, 216, 34), 1234, 443,
             net::Protocol::kTcp};
  p.size = B(256);
  p.lan_mac = net::MacAddress::FromParts(0x001EC2, 1);
  return p;
}

void BM_WireEncode(benchmark::State& state) {
  const net::Packet p = WireBenchPacket();
  const auto gw = net::MacAddress::FromParts(0x02157e, 0);
  std::array<std::byte, net::wire::kMaxFrameBytes> buf{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::wire::EncodeFrame(p, p.lan_mac, gw, buf));
  }
}
BENCHMARK(BM_WireEncode);

void BM_WireParse(benchmark::State& state) {
  const net::Packet p = WireBenchPacket();
  std::array<std::byte, net::wire::kMaxFrameBytes> buf{};
  const std::size_t len = net::wire::EncodeFrame(
      p, p.lan_mac, net::MacAddress::FromParts(0x02157e, 0), buf);
  const std::span<const std::byte> frame(buf.data(), len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::wire::ParseFrame(frame));
  }
}
BENCHMARK(BM_WireParse);

/// The CI-gated hot path: wire-path NAT translation of an established flow —
/// fixed-offset tuple extraction, one hash lookup, cached-delta rewrite.
/// Each iteration restores the pristine frame first so the lookup always
/// hits the same mapping (the memcpy is part of the measured loop for both
/// the baseline and any comparison run, so the gate stays apples-to-apples).
void BM_NatTranslateOutbound(benchmark::State& state) {
  net::NatTable nat(net::NatConfig{});
  const net::Packet p = WireBenchPacket();
  std::array<std::byte, net::wire::kMaxFrameBytes> pristine{};
  const std::size_t len = net::wire::EncodeFrame(
      p, p.lan_mac, net::MacAddress::FromParts(0x02157e, 0), pristine);
  std::array<std::byte, net::wire::kMaxFrameBytes> work = pristine;
  nat.translate_outbound_wire(std::span<std::byte>(work.data(), len), t0, p.lan_mac);
  for (auto _ : state) {
    std::memcpy(work.data(), pristine.data(), len);
    benchmark::DoNotOptimize(
        nat.translate_outbound_wire(std::span<std::byte>(work.data(), len), t0, p.lan_mac));
  }
}
BENCHMARK(BM_NatTranslateOutbound);

/// Same shape for the CGN tier: established-mapping byte translation.
void BM_CgnTranslate(benchmark::State& state) {
  net::CgnTable cgn(net::CgnConfig{});
  net::Packet p = WireBenchPacket();
  p.tuple.src_ip = net::Ipv4Address(100, 64, 0, 1);  // post-home-NAT source
  std::array<std::byte, net::wire::kMaxFrameBytes> pristine{};
  const std::size_t len = net::wire::EncodeFrame(
      p, p.lan_mac, net::MacAddress::FromParts(0x02157e, 0), pristine);
  std::array<std::byte, net::wire::kMaxFrameBytes> work = pristine;
  cgn.translate_outbound_wire(0, std::span<std::byte>(work.data(), len), t0);
  for (auto _ : state) {
    std::memcpy(work.data(), pristine.data(), len);
    benchmark::DoNotOptimize(
        cgn.translate_outbound_wire(0, std::span<std::byte>(work.data(), len), t0));
  }
}
BENCHMARK(BM_CgnTranslate);

void BM_DnsResolveCacheHit(benchmark::State& state) {
  net::ZoneCatalog zones;
  const auto catalog = traffic::DomainCatalog::BuildStandard();
  catalog.install_zones(zones);
  net::DnsResolver resolver(zones);
  resolver.resolve("google.com", t0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve("google.com", t0 + Seconds(1)));
  }
}
BENCHMARK(BM_DnsResolveCacheHit);

void BM_DnsResolveCacheMiss(benchmark::State& state) {
  net::ZoneCatalog zones;
  const auto catalog = traffic::DomainCatalog::BuildStandard();
  catalog.install_zones(zones);
  net::DnsResolver resolver(zones);
  for (auto _ : state) {
    state.PauseTiming();
    resolver.flush();
    state.ResumeTiming();
    benchmark::DoNotOptimize(resolver.resolve("netflix.com", t0));
  }
}
BENCHMARK(BM_DnsResolveCacheMiss);

void BM_IntervalSetAdd(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    IntervalSet set;
    state.ResumeTiming();
    for (int i = 0; i < 200; ++i) {
      const double start = rng.uniform(0.0, 1000.0);
      set.add(t0 + Hours(start), t0 + Hours(start + rng.uniform(0.1, 5.0)));
    }
    benchmark::DoNotOptimize(set.total());
  }
}
BENCHMARK(BM_IntervalSetAdd);

void BM_IntervalSetIntersect(benchmark::State& state) {
  Rng rng(2);
  IntervalSet a, b;
  for (int i = 0; i < 500; ++i) {
    const double s1 = rng.uniform(0.0, 5000.0);
    a.add(t0 + Hours(s1), t0 + Hours(s1 + 2.0));
    const double s2 = rng.uniform(0.0, 5000.0);
    b.add(t0 + Hours(s2), t0 + Hours(s2 + 3.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_IntervalSetIntersect);

void BM_MeterRateChanges(benchmark::State& state) {
  gateway::ThroughputMeter meter(collect::HomeId{1}, nullptr);
  TimePoint t = t0;
  for (auto _ : state) {
    meter.add_rate(net::Direction::kDownstream, 4e6, t);
    t += Seconds(4);
    meter.remove_rate(net::Direction::kDownstream, 4e6, t);
    t += Seconds(4);
  }
}
BENCHMARK(BM_MeterRateChanges);

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine(t0);
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_after(Seconds(i % 97), [] {});
    }
    engine.run_until(t0 + Hours(1));
    benchmark::DoNotOptimize(engine.executed());
  }
}
BENCHMARK(BM_EngineScheduleRun);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(200, 0.9);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_CdfQuantile(benchmark::State& state) {
  Cdf cdf;
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) cdf.add(rng.uniform(0.0, 1000.0));
  (void)cdf.median();  // force the sort outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdf.quantile(0.95));
  }
}
BENCHMARK(BM_CdfQuantile);

// --- record layer: CSV vs snapshot persistence ------------------------------

/// A ~140k-row repository with every data set represented (DNS largest by
/// far, as in a real deployment), shared by the
/// export/import/snapshot benchmarks below.
const collect::DataRepository& RecordBenchRepo() {
  using namespace collect;
  static const DataRepository* repo = [] {
    const Interval all{TimePoint{0}, TimePoint{1'000'000'000}};
    auto* r = new DataRepository(DatasetWindows{all, all, all, all, all, all});
    // A roster so the analyze benchmarks exercise the per-home and
    // per-country aggregation, not just the per-row sketches.
    static const char* kCountries[] = {"US", "CA", "GB", "FR", "BR", "IN", "ZA", "JP"};
    for (int i = 0; i < 126; ++i) {
      HomeInfo info;
      info.id = HomeId{i};
      info.country_code = kCountries[i % 8];
      info.developed = (i % 3) != 0;
      info.reports_uptime = true;
      info.reports_devices = true;
      r->register_home(info);
    }
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
      const auto start = TimePoint{rng.uniform_int(0, 500'000'000)};
      r->add(HeartbeatRun{HomeId{i % 126}, start, start + Hours(rng.uniform(1.0, 100.0))});
    }
    for (int i = 0; i < 10000; ++i) {
      r->add(UptimeRecord{HomeId{i % 126}, TimePoint{rng.uniform_int(0, 500'000'000)},
                          Hours(rng.uniform(0.0, 400.0))});
    }
    for (int i = 0; i < 2000; ++i) {
      r->add(CapacityRecord{HomeId{i % 126}, TimePoint{rng.uniform_int(0, 500'000'000)},
                            Mbps(rng.uniform(1.0, 100.0)), Mbps(rng.uniform(0.5, 10.0))});
    }
    for (int i = 0; i < 5000; ++i) {
      DeviceCountRecord dc;
      dc.home = HomeId{i % 126};
      dc.sampled = TimePoint{rng.uniform_int(0, 500'000'000)};
      dc.wired = static_cast<int>(rng.uniform_int(0, 4));
      dc.wireless_24 = static_cast<int>(rng.uniform_int(0, 9));
      dc.unique_total = dc.wired + dc.wireless_24;
      r->add(dc);
    }
    for (int i = 0; i < 5000; ++i) {
      WifiScanRecord scan;
      scan.home = HomeId{i % 126};
      scan.scanned = TimePoint{rng.uniform_int(0, 500'000'000)};
      scan.band = (i % 3) ? wireless::Band::k2_4GHz : wireless::Band::k5GHz;
      scan.channel = static_cast<int>(rng.uniform_int(1, 12));
      scan.visible_aps = static_cast<int>(rng.uniform_int(0, 30));
      r->add(scan);
    }
    for (int i = 0; i < 8000; ++i) {
      TrafficFlowRecord flow;
      flow.home = HomeId{i % 126};
      flow.flow = net::FlowId{static_cast<std::uint64_t>(i)};
      flow.first_packet = TimePoint{rng.uniform_int(0, 500'000'000)};
      flow.last_packet = flow.first_packet + Seconds(rng.uniform(0.1, 600.0));
      flow.protocol = (i % 4) ? net::Protocol::kTcp : net::Protocol::kUdp;
      flow.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
      flow.device_mac = net::MacAddress::FromParts(0x001EC2, static_cast<std::uint32_t>(i));
      flow.bytes_up = Bytes{rng.uniform_int(100, 1'000'000)};
      flow.bytes_down = Bytes{rng.uniform_int(100, 50'000'000)};
      flow.packets_up = static_cast<std::uint64_t>(rng.uniform_int(1, 1000));
      flow.packets_down = static_cast<std::uint64_t>(rng.uniform_int(1, 40000));
      flow.domain = (i % 5) ? "netflix.com" : "anon-3f2a9b";
      flow.domain_anonymized = (i % 5) == 0;
      r->add(std::move(flow));
    }
    for (int i = 0; i < 5000; ++i) {
      ThroughputMinute tm;
      tm.home = HomeId{i % 126};
      tm.minute_start = TimePoint{rng.uniform_int(0, 500'000'000)};
      tm.bytes_down = Bytes{rng.uniform_int(0, 100'000'000)};
      tm.peak_down_bps = rng.uniform(0.0, 2e7);
      r->add(tm);
    }
    // DNS is the largest data set in a real deployment (every lookup from
    // every device); size it accordingly so persistence benchmarks see a
    // realistic kind mix.
    for (int i = 0; i < 100000; ++i) {
      DnsLogRecord dns;
      dns.home = HomeId{i % 126};
      dns.when = TimePoint{rng.uniform_int(0, 500'000'000)};
      dns.device_mac = net::MacAddress::FromParts(0x001EC2, static_cast<std::uint32_t>(i));
      dns.query = (i % 3) ? "www.example.com" : "cdn.netflix.com";
      dns.a_records = 1;
      r->add(dns);
    }
    for (int i = 0; i < 500; ++i) {
      DeviceTrafficRecord dt;
      dt.home = HomeId{i % 126};
      dt.device_mac = net::MacAddress::FromParts(0x001EC2, static_cast<std::uint32_t>(i));
      dt.bytes_total = Bytes{rng.uniform_int(0, 1'000'000'000)};
      dt.flows = static_cast<std::uint64_t>(rng.uniform_int(1, 5000));
      r->add(dt);
    }
    r->finalize_deterministic_order();
    return r;
  }();
  return *repo;
}

/// The full-fidelity CSV text per data set (the import benchmarks' input).
const std::array<std::string, collect::kRecordKinds>& RecordBenchCsv() {
  static const auto* corpus = [] {
    auto* files = new std::array<std::string, collect::kRecordKinds>;
    collect::ForEachRecordType([&](auto tag) {
      using T = typename decltype(tag)::type;
      std::ostringstream out;
      collect::ExportDatasetCsv<T>(RecordBenchRepo(), out);
      (*files)[collect::kRecordIndexOf<T>] = out.str();
    });
    return files;
  }();
  return *corpus;
}

const std::string& RecordBenchSnapshot() {
  static const std::string* bytes = [] {
    std::ostringstream out;
    collect::SaveSnapshot(RecordBenchRepo(), out);
    return new std::string(out.str());
  }();
  return *bytes;
}

void BM_CsvExportAllDatasets(benchmark::State& state) {
  const auto& repo = RecordBenchRepo();
  for (auto _ : state) {
    std::size_t rows = 0;
    collect::ForEachRecordType([&](auto tag) {
      using T = typename decltype(tag)::type;
      std::ostringstream out;
      rows += collect::ExportDatasetCsv<T>(repo, out);
      benchmark::DoNotOptimize(out);
    });
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(RecordBenchRepo().total_rows()));
}
BENCHMARK(BM_CsvExportAllDatasets)->Unit(benchmark::kMillisecond);

void BM_CsvImportAllDatasets(benchmark::State& state) {
  const auto& corpus = RecordBenchCsv();
  const Interval all{TimePoint{0}, TimePoint{1'000'000'000}};
  for (auto _ : state) {
    collect::DataRepository repo(collect::DatasetWindows{all, all, all, all, all, all});
    collect::ImportReport report;
    collect::ForEachRecordType([&](auto tag) {
      using T = typename decltype(tag)::type;
      std::istringstream in(corpus[collect::kRecordIndexOf<T>]);
      collect::ImportDatasetCsv<T>(repo, in, report);
    });
    benchmark::DoNotOptimize(repo.total_rows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(RecordBenchRepo().total_rows()));
}
BENCHMARK(BM_CsvImportAllDatasets)->Unit(benchmark::kMillisecond);

void BM_SnapshotSave(benchmark::State& state) {
  const auto& repo = RecordBenchRepo();
  for (auto _ : state) {
    std::ostringstream out;
    collect::SaveSnapshot(repo, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(RecordBenchRepo().total_rows()));
}
BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state) {
  const auto& bytes = RecordBenchSnapshot();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto repo = collect::LoadSnapshot(in);
    benchmark::DoNotOptimize(repo);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(RecordBenchRepo().total_rows()));
}
BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMillisecond);

// --- columnar snapshot substrate (DESIGN §14) -------------------------------

/// A v3 columnar snapshot of RecordBenchRepo(), written once per process.
const std::string& RecordBenchColumnDir() {
  static const std::string* dir = [] {
    auto* d = new std::string(
        (std::filesystem::temp_directory_path() /
         ("bsmk-bench-colsnap-" + std::to_string(::getpid())))
            .string());
    std::filesystem::remove_all(*d);
    std::string error;
    if (!collect::SaveColumnSnapshot(RecordBenchRepo(), *d, &error)) {
      std::fprintf(stderr, "bench: SaveColumnSnapshot failed: %s\n", error.c_str());
      std::abort();
    }
    return d;
  }();
  return *dir;
}

/// Stream one kind (10k UptimeRecord rows) out of an already-open columnar
/// snapshot — the mmap + per-column decode cost with no file-open overhead.
void BM_SnapshotScanColumnar(benchmark::State& state) {
  auto repo = collect::OpenColumnSnapshot(RecordBenchColumnDir(), nullptr);
  if (!repo) state.SkipWithError("OpenColumnSnapshot failed");
  for (auto _ : state) {
    double hours = 0;
    repo->for_each_row<collect::UptimeRecord>(
        [&](const collect::UptimeRecord& u) { hours += u.uptime.hours(); });
    benchmark::DoNotOptimize(hours);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SnapshotScanColumnar);

/// The same scan over the resident row store, for the decode-overhead ratio.
void BM_SnapshotScanRowStore(benchmark::State& state) {
  const auto& repo = RecordBenchRepo();
  for (auto _ : state) {
    double hours = 0;
    repo.for_each_row<collect::UptimeRecord>(
        [&](const collect::UptimeRecord& u) { hours += u.uptime.hours(); });
    benchmark::DoNotOptimize(hours);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SnapshotScanRowStore);

/// Cold-start analysis from a v3 columnar snapshot: open the directory
/// (meta only — column files map lazily per kind) and run the full fleet
/// summary. The analyze CLI's `analyze <snapshot-dir>` path.
void BM_AnalyzeFromSnapshot(benchmark::State& state) {
  const auto& dir = RecordBenchColumnDir();
  for (auto _ : state) {
    auto repo = collect::OpenColumnSnapshot(dir, nullptr);
    if (!repo) state.SkipWithError("OpenColumnSnapshot failed");
    auto summary = analysis::SummarizeFleet(*repo, 1);
    benchmark::DoNotOptimize(summary.rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(RecordBenchRepo().total_rows()));
}
BENCHMARK(BM_AnalyzeFromSnapshot)->Unit(benchmark::kMillisecond);

/// The pre-columnar equivalent: deserialize a whole v2 row snapshot into
/// RAM, then run the same summary. The 3x+ gap is the cost the columnar
/// substrate removes (no full-corpus materialisation before analysis).
void BM_AnalyzeFromSnapshotV2(benchmark::State& state) {
  const auto& bytes = RecordBenchSnapshot();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto repo = collect::LoadSnapshot(in);
    if (!repo) state.SkipWithError("LoadSnapshot failed");
    auto summary = analysis::SummarizeFleet(*repo);
    benchmark::DoNotOptimize(summary.rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(RecordBenchRepo().total_rows()));
}
BENCHMARK(BM_AnalyzeFromSnapshotV2)->Unit(benchmark::kMillisecond);

// --- crash safety: segment checksums and the verifying merge path -----------

/// CRC32C throughput over a section-sized buffer — the per-byte cost every
/// spilled section pays once on write and once per merge pass.
void BM_SegmentChecksum(benchmark::State& state) {
  std::string buf(1 << 20, '\0');
  Rng rng(11);
  for (char& c : buf) c = static_cast<char>(rng.uniform_int(0, 255));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Crc32c(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(buf.size()));
  state.SetLabel(core::Crc32cHardwareActive() ? "hw" : "sw");
}
BENCHMARK(BM_SegmentChecksum);

/// The portable fallback, for comparison on hardware-CRC machines.
void BM_SegmentChecksumSoftware(benchmark::State& state) {
  std::string buf(1 << 20, '\0');
  Rng rng(11);
  for (char& c : buf) c = static_cast<char>(rng.uniform_int(0, 255));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Crc32cSoftware(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_SegmentChecksumSoftware);

/// A small spill-backed repository whose sections the verify benchmark
/// re-merges; built once, so the bench times the read path only.
const collect::DataRepository& SpilledBenchRepo() {
  using namespace collect;
  static const DataRepository* repo = [] {
    const auto dir = std::filesystem::temp_directory_path() /
                     ("bsmk-bench-spill-" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    const Interval all{TimePoint{0}, TimePoint{1'000'000'000}};
    const DatasetWindows w{all, all, all, all, all, all};
    auto* r = new DataRepository(w);
    SpillConfig cfg;
    cfg.dir = dir.string();
    cfg.budget_bytes = 64 << 10;  // force many sections per kind
    cfg.workers = 2;
    r->enable_spill(cfg);
    Rng rng(13);
    constexpr int kShards = 8;
    for (int shard = 0; shard < kShards; ++shard) {
      IngestBatch batch = r->make_batch();
      batch.attach_spill(r->spill(), static_cast<std::uint32_t>(shard),
                         static_cast<std::size_t>(shard % 2));
      for (int i = 0; i < 4000; ++i) {
        ThroughputMinute tm;
        tm.home = HomeId{shard * 4 + i % 4};
        tm.minute_start = TimePoint{rng.uniform_int(0, 500'000'000)};
        tm.bytes_down = Bytes{rng.uniform_int(0, 100'000'000)};
        tm.peak_down_bps = rng.uniform(0.0, 2e7);
        batch.add_throughput_minute(tm);
      }
      r->commit(std::move(batch));
    }
    r->finalize_deterministic_order();
    return r;
  }();
  return *repo;
}

/// Stream a spilled data set through the k-way merge with CRC verification
/// on every section — the exact read path a resumed fleet run takes.
void BM_SectionVerify(benchmark::State& state) {
  const auto& repo = SpilledBenchRepo();
  for (auto _ : state) {
    std::size_t rows = 0;
    repo.for_each_row<collect::ThroughputMinute>(
        [&](const collect::ThroughputMinute&) { ++rows; });
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(repo.total_rows()));
}
BENCHMARK(BM_SectionVerify)->Unit(benchmark::kMillisecond);

void BM_MacAnonymize(benchmark::State& state) {
  const auto mac = net::MacAddress::FromParts(0x001EC2, 0x123456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.anonymized(0x5EC));
  }
}
BENCHMARK(BM_MacAnonymize);

// Console output as usual, while collecting every per-iteration run for the
// machine-readable BENCH_micro.json artifact.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    std::int64_t iterations{0};
    double real_time{0.0};
    double cpu_time{0.0};
    std::string time_unit;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      rows_.push_back(Row{run.benchmark_name(),
                          static_cast<std::int64_t>(run.iterations),
                          run.GetAdjustedRealTime(), run.GetAdjustedCPUTime(),
                          benchmark::GetTimeUnitString(run.time_unit)});
    }
  }

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

int WriteJson(const std::string& path, const std::vector<CollectingReporter::Row>& rows) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  obs::JsonWriter json(file);
  json.begin_object();
  json.kv("schema", "bismark-bench/v1");
  json.kv("bench", "micro");
  json.key("benchmarks");
  json.begin_array();
  for (const auto& row : rows) {
    json.begin_object();
    json.kv("name", row.name);
    json.kv("iterations", row.iterations);
    json.kv("real_time", row.real_time);
    json.kv("cpu_time", row.cpu_time);
    json.kv("time_unit", row.time_unit);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::printf("wrote %zu benchmark results to %s\n", rows.size(), path.c_str());
  return 0;
}

}  // namespace
}  // namespace bismark

int main(int argc, char** argv) {
  const std::string json_path = bismark::bench::TakeJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bismark::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) return bismark::WriteJson(json_path, reporter.rows());
  return 0;
}
