// Table 5: number of households with one or more wired or wireless devices
// that never disconnect from the gateway for over five weeks.
#include "analysis/infrastructure.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto table5 = analysis::AlwaysConnected(repo);

  PrintBanner("Table 5: Households with always-connected devices (5+ weeks)");

  TextTable table({"group", "total houses", "w/ always-connected wired",
                   "w/ always-connected wireless"});
  auto row = [&](const char* name, const analysis::AlwaysConnectedRow& r) {
    table.add_row({name, TextTable::Int(r.total_homes),
                   TextTable::Int(r.with_wired) + " (" + TextTable::Pct(r.wired_fraction(), 0) +
                       ")",
                   TextTable::Int(r.with_wireless) + " (" +
                       TextTable::Pct(r.wireless_fraction(), 0) + ")"});
  };
  row("developed", table5.developed);
  row("developing", table5.developing);
  table.print();

  bench::PrintComparison("developed homes w/ always-on wired device", "34/79 (43%)",
                         TextTable::Pct(table5.developed.wired_fraction(), 0));
  bench::PrintComparison("developed homes w/ always-on wireless device", "16/79 (20%)",
                         TextTable::Pct(table5.developed.wireless_fraction(), 0));
  bench::PrintComparison("developing homes w/ always-on wired device", "4/34 (12%)",
                         TextTable::Pct(table5.developing.wired_fraction(), 0));
  bench::PrintComparison("developing homes w/ always-on wireless device", "4/34 (12%)",
                         TextTable::Pct(table5.developing.wireless_fraction(), 0));

  // Section 5.2 side-stat: few households use all four Ethernet ports.
  bench::PrintComparison("homes using all 4 ports (developed)", "9%",
                         TextTable::Pct(analysis::AllPortsUsedFraction(repo, true), 0));
  bench::PrintComparison("homes using all 4 ports (developing)", "9%",
                         TextTable::Pct(analysis::AllPortsUsedFraction(repo, false), 0));
  return 0;
}
