// Figure 3: CDF of the average number of downtimes per day (>= 10 min),
// developed vs developing countries.
#include "common.h"

using namespace bismark;

int main() {
  const auto& homes = bench::SharedAvailability();
  const auto cdfs = analysis::DowntimeFrequencyCdfs(homes);

  PrintBanner("Figure 3: Average number of downtimes per day (>= 10 min)");

  TextTable table({"region", "percentile", "downtimes/day"});
  bench::PrintCdfRows(table, "developed", cdfs.developed);
  bench::PrintCdfRows(table, "developing", cdfs.developing);
  table.print();

  const auto summary = analysis::SummarizeRegions(homes);
  bench::PrintComparison("median days between downtimes (developed)", "> 30 (a month)",
                         TextTable::Num(summary.median_days_between_downtimes_developed, 1));
  bench::PrintComparison("median days between downtimes (developing)", "< 1 (a day)",
                         TextTable::Num(summary.median_days_between_downtimes_developing, 2));
  bench::PrintComparison(
      "homes > 1 downtime / 10 days (developed)", "~10%",
      TextTable::Pct(1.0 - cdfs.developed.at(0.1)));
  bench::PrintComparison(
      "homes > 1 downtime / 3 days (developing)", "~50%",
      TextTable::Pct(1.0 - cdfs.developing.at(1.0 / 3.0)));
  return 0;
}
