// Figure 5: median number of downtimes per home in each country vs that
// country's GDP (PPP) per capita; marker size in the paper is the median
// downtime duration. Countries with fewer than three routers are dropped.
#include "common.h"

using namespace bismark;

int main() {
  const auto& homes = bench::SharedAvailability();
  std::vector<std::pair<std::string, double>> gdp;
  for (const auto& c : home::StandardRoster()) gdp.emplace_back(c.code, c.gdp_ppp_per_capita);
  const auto rows = analysis::CountryDowntimeScatter(homes, gdp, 3);

  PrintBanner("Figure 5: Median downtimes per country vs GDP (PPP) per capita");

  TextTable table({"country", "region", "homes", "GDP PPP ($)", "median downtimes",
                   "median duration", "median online %"});
  for (const auto& row : rows) {
    table.add_row({row.country_code, row.developed ? "developed" : "developing",
                   TextTable::Int(row.homes),
                   TextTable::Int(static_cast<long long>(row.gdp_ppp)),
                   TextTable::Num(row.median_downtimes, 1),
                   FormatDuration(Seconds(row.median_duration_s)),
                   TextTable::Pct(row.median_online_fraction)});
  }
  table.print();

  double worst_downtimes = 0.0;
  std::string worst_country;
  for (const auto& row : rows) {
    if (row.median_downtimes > worst_downtimes) {
      worst_downtimes = row.median_downtimes;
      worst_country = row.country_code;
    }
  }
  bench::PrintComparison("worst country (most median downtimes)", "PK (then IN)",
                         worst_country);
  for (const auto& row : rows) {
    if (row.country_code == "PK") {
      bench::PrintComparison("PK downtimes/day", "~2 (nearly two every day)",
                             TextTable::Num(row.median_downtimes / 196.0, 2));
    }
    if (row.country_code == "US") {
      bench::PrintComparison("US median router-on fraction", "98.25%",
                             TextTable::Pct(row.median_online_fraction, 2));
    }
    if (row.country_code == "IN") {
      bench::PrintComparison("IN median router-on fraction", "76.01%",
                             TextTable::Pct(row.median_online_fraction, 2));
    }
    if (row.country_code == "ZA") {
      bench::PrintComparison("ZA median router-on fraction", "85.57%",
                             TextTable::Pct(row.median_online_fraction, 2));
    }
  }
  return 0;
}
