// Table 2: summary of the data collected — per-data-set windows, reporting
// router counts, and the row volumes the simulated deployment produced.
#include <map>
#include <set>

#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto& w = repo.windows();
  const auto counts = repo.counts();

  PrintBanner("Table 2: Summary of data collected");

  auto homes_in = [&](auto accessor) {
    std::set<int> ids;
    for (const auto& rec : accessor) ids.insert(rec.home.value);
    return static_cast<long long>(ids.size());
  };

  TextTable table({"dataset", "kind", "window", "routers (paper)", "routers (measured)",
                   "rows collected"});
  auto window_str = [](const Interval& iv) {
    return FormatTime(iv.start).substr(0, 10) + " .. " + FormatTime(iv.end).substr(0, 10);
  };
  // The paper "consider[s] heartbeats from 126 routers that were on for at
  // least 25 days"; short-lived churn participants also reported (Fig. 2).
  long long qualifying = 0;
  {
    std::map<int, double> online_days;
    for (const auto& run : repo.heartbeat_runs()) {
      online_days[run.home.value] += (run.end - run.start).days();
    }
    for (const auto& [home, days] : online_days) {
      if (days >= 25.0) ++qualifying;
    }
  }
  table.add_row({"Heartbeats", "active", window_str(w.heartbeats), "126",
                 TextTable::Int(qualifying) + " of " +
                     TextTable::Int(homes_in(repo.heartbeat_runs())) + " reporting",
                 TextTable::Int(static_cast<long long>(counts.heartbeat_runs)) + " runs"});
  table.add_row({"Capacity", "active", window_str(w.capacity), "126",
                 TextTable::Int(homes_in(repo.capacity())),
                 TextTable::Int(static_cast<long long>(counts.capacity))});
  table.add_row({"Uptime", "passive", window_str(w.uptime), "113",
                 TextTable::Int(homes_in(repo.uptime())),
                 TextTable::Int(static_cast<long long>(counts.uptime))});
  table.add_row({"Devices", "passive", window_str(w.devices), "113",
                 TextTable::Int(homes_in(repo.device_counts())),
                 TextTable::Int(static_cast<long long>(counts.device_counts))});
  table.add_row({"WiFi", "passive", window_str(w.wifi), "93",
                 TextTable::Int(homes_in(repo.wifi_scans())),
                 TextTable::Int(static_cast<long long>(counts.wifi_scans))});
  table.add_row({"Traffic", "passive", window_str(w.traffic), "25",
                 TextTable::Int(homes_in(repo.flows())),
                 TextTable::Int(static_cast<long long>(counts.flows)) + " flows"});
  table.print();

  // Total heartbeats delivered (the runs are run-length compressed).
  long long heartbeats = 0;
  for (const auto& run : repo.heartbeat_runs()) heartbeats += run.heartbeat_count();
  bench::PrintComparison("heartbeats received (1/min while online)", "(not reported)",
                         TextTable::Int(heartbeats));
  bench::PrintComparison("traffic flow records", "(not reported)",
                         TextTable::Int(static_cast<long long>(counts.flows)));
  bench::PrintComparison("DNS response samples", "(not reported)",
                         TextTable::Int(static_cast<long long>(counts.dns)));
  return 0;
}
