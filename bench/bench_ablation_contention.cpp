// Ablation: 2.4 GHz crowding vs usable wireless throughput.
//
// Section 5.3's warning: "many devices talking to many access points in
// the vicinity causes contention and interference problems, which in turn
// reduces the available bandwidth of the wireless channel... which could
// create bottlenecks as access link throughputs continue to increase."
// This bench quantifies that: for the neighbourhood densities the study
// observed (developed median ~20 visible APs, developing ~2), how much of
// a nominal 802.11n channel — and therefore of a fast access link — can a
// home actually use?
#include "analysis/infrastructure.h"
#include "common.h"
#include "wireless/airtime.h"
#include "wireless/neighbor.h"

using namespace bismark;

int main() {
  PrintBanner("Ablation: neighbour-AP density vs usable wireless capacity");

  // Nominal effective MAC throughput of a 2.4 GHz 802.11n 20 MHz channel.
  const double nominal_mbps = 60.0;

  TextTable table({"visible APs", "airtime share", "usable channel (Mbps)",
                   "per-client (4 clients)", "caps a 50 Mbps link?"});
  for (std::size_t aps : {0u, 2u, 5u, 10u, 20u, 30u, 40u}) {
    wireless::ContentionInput input;
    input.overlapping_neighbor_aps = aps;
    input.neighbor_duty_cycle = 0.10;
    const double share = wireless::EffectiveAirtimeShare(input);
    input.own_clients = 4;
    const double per_client = wireless::PerClientShare(input) * nominal_mbps;
    const double usable = share * nominal_mbps;
    table.add_row({TextTable::Int(static_cast<long long>(aps)), TextTable::Pct(share),
                   TextTable::Num(usable, 1), TextTable::Num(per_client, 1),
                   usable < 50.0 ? "YES" : "no"});
  }
  table.print();

  // The same, at the *measured* neighbourhood medians of Fig. 11.
  const auto& repo = bench::SharedStudy().repository();
  const auto cdfs = analysis::NeighborAps(repo);
  wireless::ContentionInput developed;
  developed.overlapping_neighbor_aps =
      static_cast<std::size_t>(cdfs.developed.median());
  wireless::ContentionInput developing;
  developing.overlapping_neighbor_aps =
      static_cast<std::size_t>(cdfs.developing.median());

  bench::PrintComparison(
      "usable 2.4 GHz channel at the developed median neighbourhood",
      "a bottleneck for fast links",
      TextTable::Num(wireless::EffectiveAirtimeShare(developed) * nominal_mbps, 1) + " Mbps");
  bench::PrintComparison(
      "usable 2.4 GHz channel at the developing median neighbourhood", "nearly full channel",
      TextTable::Num(wireless::EffectiveAirtimeShare(developing) * nominal_mbps, 1) + " Mbps");
  bench::PrintComparison("5 GHz alternative (median ~1 neighbour)", "uncongested (for now)",
                         TextTable::Num(
                             wireless::EffectiveAirtimeShare(
                                 {1, 0.10, 0}) * nominal_mbps, 1) + " Mbps");
  return 0;
}
