// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary regenerates one artefact of the paper's evaluation
// from a full simulated study (Table 1 roster, Table 2 windows) and prints
// the same rows/series the paper reports, alongside the paper's published
// value where one exists.
#pragma once

#include <string>

#include "analysis/downtime.h"
#include "collect/repository.h"
#include "core/cdf.h"
#include "core/table.h"
#include "home/deployment.h"

namespace bismark::bench {

/// Seed used by every reproduction bench (change to check robustness).
inline constexpr std::uint64_t kStudySeed = 20131023;

/// Run (once per process) the full study over the paper's Table 2 windows
/// and return it. Subsequent calls return the cached deployment.
const home::Deployment& SharedStudy();

/// Availability stats with the paper's filters, cached alongside the study.
const std::vector<analysis::HomeAvailability>& SharedAvailability();

/// Print a CDF as fixed sample rows: value at selected percentiles.
void PrintCdfRows(TextTable& table, const std::string& label, const Cdf& cdf,
                  bool log_scale_hint = false);

/// Print a "paper vs measured" comparison row to stdout.
void PrintComparison(const std::string& metric, const std::string& paper,
                     const std::string& measured);

/// Scan argv for `--json FILE` (or `--json=FILE`), strip it, and return
/// FILE ("" when absent). For bench binaries whose remaining arguments are
/// parsed by someone else (google-benchmark's Initialize in bench_micro);
/// the ArgParser-based benches declare the option directly instead.
std::string TakeJsonFlag(int* argc, char** argv);

}  // namespace bismark::bench
