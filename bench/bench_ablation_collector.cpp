// Ablation: collection-infrastructure reliability vs measured availability.
//
// Section 3.3 concedes the study cannot always tell a home outage from a
// problem "along the network path between the BISmark router and Georgia
// Tech". This bench injects collector outages at increasing rates and
// shows (a) how badly raw downtime counts inflate, and (b) how much the
// simultaneous-gap detector (analysis/collection_artifacts) recovers.
#include "analysis/collection_artifacts.h"
#include "common.h"
#include "home/deployment.h"

using namespace bismark;

int main() {
  PrintBanner("Ablation: collector outages vs measured home downtime");

  TextTable table({"collector outages/mo", "true collector downtime", "raw downtimes",
                   "corrected downtimes", "detector recall"});

  long long baseline = -1;
  for (double rate : {0.0, 0.5, 2.0, 6.0}) {
    home::DeploymentOptions options;
    options.seed = bench::kStudySeed;
    options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 8);
    options.run_traffic = false;
    options.collector_outages_per_month = rate;
    options.collector_outage_mean = Hours(3);
    const auto study = home::Deployment::RunStudy(options);
    const auto& repo = study->repository();

    const auto raw = analysis::AnalyzeAvailability(repo, {Minutes(10), 10.0});
    const auto report = analysis::DetectCollectionOutages(repo);
    const auto corrected =
        analysis::AnalyzeAvailabilityCorrected(repo, report, {Minutes(10), 10.0});

    long long raw_total = 0, corrected_total = 0;
    for (const auto& h : raw) raw_total += h.downtimes;
    for (const auto& h : corrected) corrected_total += h.downtimes;
    if (baseline < 0) baseline = raw_total;

    const IntervalSet truth = study->collector_outages().clipped(
        repo.windows().heartbeats.start, repo.windows().heartbeats.end);
    double recall = 0.0;
    if (truth.total().ms > 0) {
      recall = static_cast<double>(report.outages.intersect(truth).total().ms) /
               static_cast<double>(truth.total().ms);
    }

    table.add_row({TextTable::Num(rate, 1), FormatDuration(truth.total()),
                   TextTable::Int(raw_total), TextTable::Int(corrected_total),
                   truth.total().ms > 0 ? TextTable::Pct(recall) : std::string("n/a")});
  }
  table.print();

  bench::PrintComparison("raw counts inflate with collector failures", "the §3.3 worry",
                         "see table");
  bench::PrintComparison("simultaneous-gap correction restores the baseline",
                         "(not attempted in the paper)", "corrected ~= rate-0 row");
  return 0;
}
