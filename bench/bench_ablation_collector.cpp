// Ablation: collection-infrastructure reliability vs measured availability.
//
// Section 3.3 concedes the study cannot always tell a home outage from a
// problem "along the network path between the BISmark router and Georgia
// Tech". This bench injects collector outages at increasing rates and
// shows (a) how badly raw downtime counts inflate, and (b) how much the
// simultaneous-gap detector (analysis/collection_artifacts) recovers.
#include "analysis/collection_artifacts.h"
#include "common.h"
#include "home/deployment.h"

using namespace bismark;

int main() {
  PrintBanner("Ablation: collector outages vs measured home downtime");

  TextTable table({"collector outages/mo", "true collector downtime", "raw downtimes",
                   "corrected downtimes", "detector recall"});

  long long baseline = -1;
  for (double rate : {0.0, 0.5, 2.0, 6.0}) {
    home::DeploymentOptions options;
    options.seed = bench::kStudySeed;
    options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 8);
    options.run_traffic = false;
    options.collector_outages_per_month = rate;
    options.collector_outage_mean = Hours(3);
    const auto study = home::Deployment::RunStudy(options);
    const auto& repo = study->repository();

    const auto raw = analysis::AnalyzeAvailability(repo, {Minutes(10), 10.0});
    const auto report = analysis::DetectCollectionOutages(repo);
    const auto corrected =
        analysis::AnalyzeAvailabilityCorrected(repo, report, {Minutes(10), 10.0});

    long long raw_total = 0, corrected_total = 0;
    for (const auto& h : raw) raw_total += h.downtimes;
    for (const auto& h : corrected) corrected_total += h.downtimes;
    if (baseline < 0) baseline = raw_total;

    const IntervalSet truth = study->collector_outages().clipped(
        repo.windows().heartbeats.start, repo.windows().heartbeats.end);
    double recall = 0.0;
    if (truth.total().ms > 0) {
      recall = static_cast<double>(report.outages.intersect(truth).total().ms) /
               static_cast<double>(truth.total().ms);
    }

    table.add_row({TextTable::Num(rate, 1), FormatDuration(truth.total()),
                   TextTable::Int(raw_total), TextTable::Int(corrected_total),
                   truth.total().ms > 0 ? TextTable::Pct(recall) : std::string("n/a")});
  }
  table.print();

  bench::PrintComparison("raw counts inflate with collector failures", "the §3.3 worry",
                         "see table");
  bench::PrintComparison("simultaneous-gap correction restores the baseline",
                         "(not attempted in the paper)", "corrected ~= rate-0 row");

  // Part 2: the upload pipeline under the same failures. Sweep spool
  // capacity against outage duration and account for every record: longer
  // outages back more records up behind the retry loop, and the bounded
  // spool starts paying for headroom with drop-oldest losses. Ack loss is
  // on, so the dedup gate's work (resends absorbed) is visible too.
  PrintBanner("Ablation: spool capacity vs outage duration (upload pipeline)");

  TextTable spool_table({"spool cap", "outage mean", "spooled", "delivered", "resends deduped",
                         "dropped", "stranded", "delivered %"});
  for (double outage_hours : {1.0, 6.0, 24.0}) {
    for (std::size_t capacity : {std::size_t{64}, std::size_t{512}, std::size_t{8192}}) {
      home::DeploymentOptions options;
      options.seed = bench::kStudySeed;
      options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 8);
      options.run_traffic = false;
      options.collector_outages_per_month = 4.0;
      options.collector_outage_mean = Hours(outage_hours);
      options.upload.spool_capacity = capacity;
      options.upload_faults.ack_loss_prob = 0.02;
      const auto study = home::Deployment::RunStudy(options);
      const auto& up = study->upload_stats();

      const double delivered_pct =
          up.records_spooled == 0
              ? 0.0
              : static_cast<double>(up.records_delivered) /
                    static_cast<double>(up.records_spooled);
      spool_table.add_row({TextTable::Int(static_cast<long long>(capacity)),
                           FormatDuration(Hours(outage_hours)),
                           TextTable::Int(static_cast<long long>(up.records_spooled)),
                           TextTable::Int(static_cast<long long>(up.records_delivered)),
                           TextTable::Int(static_cast<long long>(up.duplicate_transmissions)),
                           TextTable::Int(static_cast<long long>(up.records_dropped)),
                           TextTable::Int(static_cast<long long>(up.records_stranded)),
                           TextTable::Pct(delivered_pct)});
    }
  }
  spool_table.print();

  bench::PrintComparison("ample spool + retries deliver ~100% despite outages",
                         "store-and-forward goal", "8192-row rows");
  bench::PrintComparison("undersized spools trade headroom for drop-oldest loss",
                         "graceful degradation", "64-record rows");
  return 0;
}
