// Figure 10: CDF of unique devices seen on each wireless band per home.
#include "analysis/infrastructure.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto cdfs = analysis::UniqueDevicesPerBand(repo);

  PrintBanner("Figure 10: Unique devices per wireless band");

  TextTable table({"devices (<=)", "2.4 GHz homes", "5 GHz homes"});
  for (int d = 0; d <= 14; ++d) {
    table.add_row({TextTable::Int(d), TextTable::Pct(cdfs.band24.at(d)),
                   TextTable::Pct(cdfs.band5.at(d))});
  }
  table.print();

  bench::PrintComparison("median unique devices on 2.4 GHz", "5",
                         TextTable::Num(cdfs.band24.median(), 1));
  bench::PrintComparison("median unique devices on 5 GHz", "2",
                         TextTable::Num(cdfs.band5.median(), 1));
  return 0;
}
