// Figure 13: diurnal pattern of wireless device counts — weekday vs
// weekend, by local hour of day.
#include "analysis/diurnal.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto profile = analysis::WirelessDiurnalProfile(repo);

  PrintBanner("Figure 13: Mean wireless devices online by local hour");

  TextTable table({"hour", "weekday", "weekend"});
  for (int h = 0; h < 24; ++h) {
    table.add_row({TextTable::Int(h), TextTable::Num(profile.weekday[h]),
                   TextTable::Num(profile.weekend[h])});
  }
  table.print();

  std::size_t peak_hour = 0;
  for (std::size_t h = 1; h < 24; ++h) {
    if (profile.weekday[h] > profile.weekday[peak_hour]) peak_hour = h;
  }
  bench::PrintComparison("weekday peak hour", "evening (19-22)",
                         TextTable::Int(static_cast<long long>(peak_hour)) + ":00");
  bench::PrintComparison("weekday peak / trough",
                         "~2.7 / ~1.4 devices",
                         TextTable::Num(profile.weekday_peak()) + " / " +
                             TextTable::Num(profile.weekday_trough()));
  bench::PrintComparison("weekday swing vs weekend swing", "weekday clearly larger",
                         TextTable::Num(profile.weekday_swing()) + "x vs " +
                             TextTable::Num(profile.weekend_swing()) + "x");

  // Cross-check with the hourly Devices census.
  const auto census = analysis::CensusDiurnalProfile(repo);
  bench::PrintComparison("census cross-check: weekday swing (Devices data)", "(same shape)",
                         TextTable::Num(census.weekday_swing()) + "x");
  return 0;
}
