// Tables 3, 4 and 6: the paper's per-section highlight tables, each row a
// claim with its section/figure reference — regenerated here with the
// measured value beside the published one.
#include "analysis/diurnal.h"
#include "analysis/infrastructure.h"
#include "analysis/timeline_view.h"
#include "analysis/usage.h"
#include "analysis/utilization.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto& homes = bench::SharedAvailability();

  // ---- Table 3: Section 4 highlights ----
  PrintBanner("Table 3: Highlights of Section 4 (availability)");
  const auto summary = analysis::SummarizeRegions(homes);
  bench::PrintComparison(
      "[Fig 3] median time between downtimes, developed vs developing",
      "> a month vs < a day",
      TextTable::Num(summary.median_days_between_downtimes_developed, 1) + "d vs " +
          TextTable::Num(summary.median_days_between_downtimes_developing, 2) + "d");
  {
    std::vector<std::pair<std::string, double>> gdp;
    for (const auto& c : home::StandardRoster()) gdp.emplace_back(c.code, c.gdp_ppp_per_capita);
    const auto rows = analysis::CountryDowntimeScatter(homes, gdp, 3);
    std::string worst1 = "?", worst2 = "?";
    double w1 = -1, w2 = -1;
    for (const auto& row : rows) {
      if (row.median_downtimes > w1) {
        w2 = w1;
        worst2 = worst1;
        w1 = row.median_downtimes;
        worst1 = row.country_code;
      } else if (row.median_downtimes > w2) {
        w2 = row.median_downtimes;
        worst2 = row.country_code;
      }
    }
    bench::PrintComparison("[Fig 5] most-downtime countries are the lowest-GDP ones",
                           "IN and PK", worst1 + " and " + worst2);
  }
  {
    const auto appliance =
        analysis::FindArchetype(repo, analysis::AvailabilityArchetype::kAppliance);
    const auto runs = repo.heartbeat_runs_for(appliance);
    IntervalSet online;
    for (const auto& run : runs) online.add(run.start, run.end);
    const auto& w = repo.windows().heartbeats;
    bench::PrintComparison("[Fig 6b] some homes treat broadband as an appliance",
                           "router on only when in use",
                           "home " + std::to_string(appliance.value) + " online " +
                               TextTable::Pct(online.coverage_fraction(w.start, w.end)) +
                               " of the window");
  }

  // ---- Table 4: Section 5 highlights ----
  PrintBanner("Table 4: Highlights of Section 5 (infrastructure)");
  const auto table5 = analysis::AlwaysConnected(repo);
  bench::PrintComparison("[Tab 5] homes with an always-on wired device, dev vs dvg",
                         "43% vs 12%",
                         TextTable::Pct(table5.developed.wired_fraction(), 0) + " vs " +
                             TextTable::Pct(table5.developing.wired_fraction(), 0));
  const auto bands = analysis::UniqueDevicesPerBand(repo);
  bench::PrintComparison("[Fig 10] median devices on 2.4 GHz vs 5 GHz", "5 vs 2",
                         TextTable::Num(bands.band24.median(), 0) + " vs " +
                             TextTable::Num(bands.band5.median(), 0));
  const auto neighbors = analysis::NeighborAps(repo);
  bench::PrintComparison("[Fig 11] median visible APs, developed vs developing",
                         "~20 vs ~2",
                         TextTable::Num(neighbors.developed.median(), 0) + " vs " +
                             TextTable::Num(neighbors.developing.median(), 0));

  // ---- Table 6: Section 6 highlights ----
  PrintBanner("Table 6: Highlights of Section 6 (usage)");
  const auto diurnal = analysis::WirelessDiurnalProfile(repo);
  bench::PrintComparison("[Fig 13] weekday traffic much more diurnal than weekend",
                         "clear weekday swing",
                         TextTable::Num(diurnal.weekday_swing(), 1) + "x vs " +
                             TextTable::Num(diurnal.weekend_swing(), 1) + "x");
  const auto points = analysis::LinkSaturation(repo);
  const auto over = analysis::OversaturatedUplinks(points);
  bench::PrintComparison("[Fig 15] some homes oversaturate their uplink (bufferbloat)",
                         "2 homes",
                         TextTable::Int(static_cast<long long>(over.size())) + " homes");
  const auto devices = analysis::DeviceUsageShares(repo);
  bench::PrintComparison("[Fig 17] single hungriest device's share of home traffic",
                         "~65% (avg)", TextTable::Pct(devices.share_by_rank[0]));
  const auto domains = analysis::DomainUsageShares(repo);
  bench::PrintComparison("[Fig 19] top domain's volume share vs connection share",
                         "38% vs 19%",
                         TextTable::Pct(domains.by_rank[0].volume_share) + " vs " +
                             TextTable::Pct(domains.by_rank[0].conns_by_conn_rank));
  return 0;
}
