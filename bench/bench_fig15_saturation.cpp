// Figure 15: 95th-percentile link utilisation vs measured capacity, for
// uplink and downlink, one point per Traffic home.
#include "analysis/utilization.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto points = analysis::LinkSaturation(repo);

  PrintBanner("Figure 15: 95th-percentile utilisation vs measured capacity");

  TextTable table({"home", "down cap (Mbps)", "down util p95", "up cap (Mbps)", "up util p95",
                   "traffic minutes"});
  for (const auto& p : points) {
    table.add_row({TextTable::Int(p.home.value), TextTable::Num(p.capacity_down_mbps, 1),
                   TextTable::Num(p.utilization_down_p95), TextTable::Num(p.capacity_up_mbps, 1),
                   TextTable::Num(p.utilization_up_p95),
                   TextTable::Int(p.minutes_observed)});
  }
  table.print();

  int down_saturated = 0, under_half = 0, up_low = 0;
  for (const auto& p : points) {
    if (p.utilization_down_p95 >= 0.95) ++down_saturated;
    if (p.utilization_down_p95 < 0.5) ++under_half;
    if (p.utilization_up_p95 < 0.5) ++up_low;
  }
  const auto over = analysis::OversaturatedUplinks(points);

  bench::PrintComparison("homes saturating downlink at p95", "only 2",
                         TextTable::Int(down_saturated));
  bench::PrintComparison("homes using < 50% of downlink at p95", "most homes",
                         TextTable::Int(under_half) + " of " +
                             TextTable::Int(static_cast<long long>(points.size())));
  bench::PrintComparison("homes with uplink p95 under 0.5", "most (all but ~3)",
                         TextTable::Int(up_low));
  bench::PrintComparison("homes over-utilising the uplink (>1.0)", "2 (bufferbloat)",
                         TextTable::Int(static_cast<long long>(over.size())));
  return 0;
}
