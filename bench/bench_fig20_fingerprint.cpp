// Figure 20: per-device domain distributions — a desktop spreads its
// traffic (with cloud-sync prominent) while a streaming player sends
// nearly everything to streaming services. The contrast is the basis for
// the device-fingerprinting future work of Section 7.
#include "analysis/usage.h"
#include "common.h"

using namespace bismark;

namespace {
void PrintProfile(const collect::DataRepository& repo, net::MacAddress mac,
                  const char* caption) {
  std::printf("\n%s (%s...)\n", caption, mac.to_string().substr(0, 8).c_str());
  const auto profile = analysis::DeviceDomainProfile(repo, mac, 8);
  TextTable table({"domain", "share of device traffic"});
  for (const auto& d : profile) {
    table.add_row({d.domain, TextTable::Pct(d.share)});
  }
  table.print();
}
}  // namespace

int main() {
  const auto& repo = bench::SharedStudy().repository();

  PrintBanner("Figure 20: Per-device traffic distribution (fingerprinting)");

  const auto desktop = analysis::FindDeviceByVendor(repo, net::VendorClass::kIntel);
  const auto streamer = analysis::FindDeviceByVendor(repo, net::VendorClass::kInternetTv);
  const auto apple = analysis::FindDeviceByVendor(repo, net::VendorClass::kApple);

  if (desktop != net::MacAddress{}) {
    PrintProfile(repo, desktop, "(a) Desktop-class device (Intel NIC)");
  } else if (apple != net::MacAddress{}) {
    PrintProfile(repo, apple, "(a) Desktop-class device (Apple)");
  }
  if (streamer != net::MacAddress{}) {
    PrintProfile(repo, streamer, "(b) Streaming player (Roku-class)");
  }

  const auto pick_general = desktop != net::MacAddress{} ? desktop : apple;
  const double general_index = analysis::DomainConcentrationIndex(repo, pick_general);
  const double streamer_index = analysis::DomainConcentrationIndex(repo, streamer);
  bench::PrintComparison("\nstreamer traffic to top streaming domains",
                         "dominated by pandora/hulu/netflix",
                         TextTable::Pct(streamer_index) + " to its top domain");
  bench::PrintComparison("concentration: streamer vs general-purpose",
                         "streamer far more concentrated",
                         TextTable::Pct(streamer_index) + " vs " +
                             TextTable::Pct(general_index));
  bench::PrintComparison("usable as a device fingerprint", "yes (Section 7)",
                         streamer_index > general_index ? "yes" : "NO");
  return 0;
}
