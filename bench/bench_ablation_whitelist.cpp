// Ablation: whitelist size vs visible traffic share.
//
// The firmware only reveals domains on the Alexa-top-200 whitelist
// (Section 3.2.2); the paper reports that whitelisted traffic covers ~65 %
// of volume. Sweeping the whitelist size against the workload model shows
// how much visibility the choice of 200 buys — and how quickly the curve
// flattens (the long tail the paper cannot see).
#include "common.h"
#include "traffic/apps.h"

using namespace bismark;

int main() {
  PrintBanner("Ablation: whitelist size vs visible share of traffic volume");

  const auto catalog = traffic::DomainCatalog::BuildStandard();

  // Draw a large corpus of application sessions with the same mix the
  // household simulator uses, and attribute volume per domain rank.
  Rng rng(bench::kStudySeed);
  std::vector<double> volume_by_domain(catalog.domains().size(), 0.0);
  const traffic::AppType apps[] = {
      traffic::AppType::kWebBrowsing,   traffic::AppType::kVideoStreaming,
      traffic::AppType::kAudioStreaming, traffic::AppType::kSocialMedia,
      traffic::AppType::kCloudSync,     traffic::AppType::kEmail,
      traffic::AppType::kSoftwareUpdate, traffic::AppType::kOnlineGaming,
  };
  const double weights[] = {30, 12, 6, 18, 8, 10, 2, 2};
  double total = 0.0;
  for (int i = 0; i < 40000; ++i) {
    const auto app = apps[rng.weighted_index(weights)];
    const auto plan = traffic::AppModel::PlanSession(app, catalog, rng);
    const double bytes =
        static_cast<double>(plan.total_down().count + plan.total_up().count);
    volume_by_domain[plan.domain_index] += bytes;
    total += bytes;
  }

  TextTable table({"whitelist size", "visible volume share"});
  for (std::size_t k : {10u, 25u, 50u, 100u, 200u, 400u}) {
    double visible = 0.0;
    // The whitelist is the top-k by catalog popularity rank (the catalog's
    // first k entries), clamped to the whitelist+tail population.
    for (std::size_t i = 0; i < std::min(k, volume_by_domain.size()); ++i) {
      visible += volume_by_domain[i];
    }
    table.add_row({TextTable::Int(static_cast<long long>(k)),
                   TextTable::Pct(visible / total)});
  }
  table.print();

  double at200 = 0.0;
  for (std::size_t i = 0; i < 200 && i < volume_by_domain.size(); ++i) {
    at200 += volume_by_domain[i];
  }
  bench::PrintComparison("visible share with the paper's 200-domain whitelist", "~65%",
                         TextTable::Pct(at200 / total));
  bench::PrintComparison("implication", "tail (~35%) stays anonymised",
                         TextTable::Pct(1.0 - at200 / total) + " hidden");
  return 0;
}
