// Figure 8: average number of devices connected to the access point at any
// time, wired vs wireless, developed vs developing (with stddev bars).
#include "analysis/infrastructure.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto dev = analysis::ConnectedDevices(repo, true);
  const auto dvg = analysis::ConnectedDevices(repo, false);

  PrintBanner("Figure 8: Average connected devices by medium and region");

  TextTable table({"region", "medium", "mean connected", "stddev", "homes"});
  table.add_row({"developed", "wired", TextTable::Num(dev.wired.mean),
                 TextTable::Num(dev.wired.stddev), TextTable::Int(dev.wired.homes)});
  table.add_row({"developed", "wireless", TextTable::Num(dev.wireless.mean),
                 TextTable::Num(dev.wireless.stddev), TextTable::Int(dev.wireless.homes)});
  table.add_row({"developing", "wired", TextTable::Num(dvg.wired.mean),
                 TextTable::Num(dvg.wired.stddev), TextTable::Int(dvg.wired.homes)});
  table.add_row({"developing", "wireless", TextTable::Num(dvg.wireless.mean),
                 TextTable::Num(dvg.wireless.stddev), TextTable::Int(dvg.wireless.homes)});
  table.print();

  bench::PrintComparison("more wireless than wired (both regions)", "yes",
                         (dev.wireless.mean > dev.wired.mean &&
                          dvg.wireless.mean > dvg.wired.mean)
                             ? "yes"
                             : "NO");
  bench::PrintComparison(
      "developed has ~1 more device connected", "~+1",
      "+" + TextTable::Num((dev.wired.mean + dev.wireless.mean) -
                           (dvg.wired.mean + dvg.wireless.mean), 2));
  bench::PrintComparison("avg wired ports used < 1 (both regions)", "yes",
                         (dev.wired.mean < 1.5 && dvg.wired.mean < 1.0) ? "yes" : "NO");
  return 0;
}
