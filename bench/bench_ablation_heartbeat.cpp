// Ablation: heartbeat loss vs false downtime.
//
// Section 3.3 concedes that a lost-heartbeat streak is indistinguishable
// from downtime. With i.i.d. per-minute loss p, a >= 10-minute all-lost
// gap occurs with probability p^10 per slot — negligible at realistic
// rates but explosive past ~40 %. This bench measures the false-downtime
// rate on a home that is *continuously online* for 30 days, using the
// exact per-heartbeat path simulation.
#include "analysis/downtime.h"
#include "collect/server.h"
#include "common.h"

using namespace bismark;

int main() {
  PrintBanner("Ablation: heartbeat loss rate vs false downtime detections");

  const TimePoint t0 = MakeTime({2012, 10, 1});
  const Interval window{t0, t0 + Days(30)};
  IntervalSet online;
  online.add(window.start, window.end);  // ground truth: never down

  TextTable table({"loss rate", "heartbeats lost", "false downtimes / 30 days",
                   "downtime minutes charged"});
  for (double loss : {0.0, 0.01, 0.05, 0.10, 0.20, 0.35, 0.50, 0.60}) {
    collect::DataRepository repo(collect::DatasetWindows::Compressed(t0, 5));
    collect::CollectionServer server(repo,
                                     collect::HeartbeatPathConfig{Minutes(1), loss, Minutes(10)});
    server.ingest_heartbeats(collect::HomeId{1}, online,
                             Rng(bench::kStudySeed ^ static_cast<std::uint64_t>(loss * 1000)),
                             /*simulate_individual_loss=*/true);
    const auto downtimes =
        analysis::ExtractDowntimes(repo.heartbeat_runs(), window, Minutes(10));
    Duration charged{0};
    for (const auto& d : downtimes) charged += d.gap.length();
    table.add_row({TextTable::Pct(loss, 0),
                   TextTable::Int(static_cast<long long>(server.heartbeats_lost())),
                   TextTable::Int(static_cast<long long>(downtimes.size())),
                   TextTable::Num(charged.minutes(), 0)});
  }
  table.print();

  bench::PrintComparison("false downtimes at realistic loss (<= 5%)", "statistically zero",
                         "see rows above");
  bench::PrintComparison("conclusion", "10-min threshold robust to path loss",
                         "false downtime needs >~40% sustained loss");
  return 0;
}
