#include "common.h"

#include <cstdio>
#include <memory>
#include <string_view>

namespace bismark::bench {

const home::Deployment& SharedStudy() {
  static const std::unique_ptr<home::Deployment> study = [] {
    home::DeploymentOptions options;
    options.seed = kStudySeed;
    options.windows = collect::DatasetWindows::Paper();
    // Fig. 2's reality: short-lived participants beyond the 126-home core;
    // the analyses' 25-day filter must earn its keep.
    options.churn_homes = 30;
    std::fprintf(stderr, "[bench] simulating the full study (126 homes, Table 2 windows)...\n");
    auto deployment = home::Deployment::RunStudy(options);
    std::fprintf(stderr, "[bench] study complete\n");
    return deployment;
  }();
  return *study;
}

const std::vector<analysis::HomeAvailability>& SharedAvailability() {
  static const std::vector<analysis::HomeAvailability> homes =
      analysis::AnalyzeAvailability(SharedStudy().repository(), {Minutes(10), 25.0});
  return homes;
}

void PrintCdfRows(TextTable& table, const std::string& label, const Cdf& cdf,
                  bool log_scale_hint) {
  (void)log_scale_hint;
  static constexpr double kPercentiles[] = {0.10, 0.25, 0.50, 0.75, 0.90, 0.95};
  for (double p : kPercentiles) {
    table.add_row({label, "p" + TextTable::Num(p * 100, 0), TextTable::Num(cdf.quantile(p), 3)});
  }
}

void PrintComparison(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-58s paper: %-14s measured: %s\n", metric.c_str(), paper.c_str(),
              measured.c_str());
}

std::string TakeJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < *argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = std::string(arg.substr(7));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

}  // namespace bismark::bench
