// Figure 9: average number of wireless devices connected at any given time
// per spectrum band (with stddev bars).
#include "analysis/infrastructure.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto dev = analysis::ConnectedWireless(repo, true);
  const auto dvg = analysis::ConnectedWireless(repo, false);

  PrintBanner("Figure 9: Average wireless devices connected per band");

  TextTable table({"region", "band", "mean connected", "stddev"});
  table.add_row({"developed", "2.4 GHz", TextTable::Num(dev.band24.mean),
                 TextTable::Num(dev.band24.stddev)});
  table.add_row({"developed", "5 GHz", TextTable::Num(dev.band5.mean),
                 TextTable::Num(dev.band5.stddev)});
  table.add_row({"developing", "2.4 GHz", TextTable::Num(dvg.band24.mean),
                 TextTable::Num(dvg.band24.stddev)});
  table.add_row({"developing", "5 GHz", TextTable::Num(dvg.band5.mean),
                 TextTable::Num(dvg.band5.stddev)});
  table.print();

  bench::PrintComparison("2.4 GHz carries significantly more devices", "yes",
                         dev.band24.mean > dev.band5.mean * 1.5 ? "yes" : "NO");
  bench::PrintComparison(
      "2.4:5 GHz concurrent-device ratio (developed)", "(several-fold)",
      TextTable::Num(dev.band24.mean / std::max(0.01, dev.band5.mean), 1) + "x");
  return 0;
}
