// Ablation: how modem buffering turns uplink saturation into the Fig. 15/16
// "utilisation > capacity" artefact.
//
// One simulated home runs a sustained upload against a 2 Mbps uplink while
// we sweep (a) the overdrive headroom the deep buffer absorbs and (b) the
// buffer depth. We report the gateway-metered p95 uplink ratio and the
// standing queueing delay — the paper's "significant latency and
// performance problems" (Fig. 16 caption).
#include "bismark/gateway.h"
#include "common.h"
#include "core/stats.h"

using namespace bismark;

namespace {
struct Outcome {
  double p95_ratio;
  double queue_delay_s;
  std::uint64_t drops;
};

Outcome RunCase(double headroom, Bytes buffer) {
  net::AccessLinkConfig link_cfg;
  link_cfg.down_capacity = Mbps(16);
  link_cfg.up_capacity = Mbps(2);
  link_cfg.uplink_buffer = buffer;
  link_cfg.allow_uplink_overdrive = headroom > 0.0;
  link_cfg.overdrive_headroom = headroom;
  net::AccessLink link(link_cfg);

  const auto catalog = traffic::DomainCatalog::BuildStandard(50);
  gateway::Anonymizer anonymizer(catalog, {});
  collect::DataRepository repo(collect::DatasetWindows::Paper());
  gateway::GatewayConfig gw_cfg;
  gw_cfg.home = collect::HomeId{1};
  gw_cfg.consent = gateway::ConsentLevel::kFullTraffic;
  gateway::Gateway gw(gw_cfg, link, anonymizer, &repo);

  // A 3.2 Mbps application demand against the 2 Mbps uplink, in bursts.
  const TimePoint t0 = repo.windows().traffic.start;
  TimePoint t = t0;
  for (int i = 0; i < 600; ++i) {  // ~100 minutes of 8s-on / 2s-off bursts
    const double granted = gw.admit_rate(net::Direction::kUpstream, 3.2e6);
    gw.add_rate(net::Direction::kUpstream, granted, t);
    gw.remove_rate(net::Direction::kUpstream, granted, t + Seconds(8));
    t += Seconds(10);
  }
  gw.finalize(t + Minutes(1));

  std::vector<double> peaks;
  for (const auto& minute : repo.throughput()) peaks.push_back(minute.peak_up_bps / 2e6);
  Outcome out;
  out.p95_ratio = Quantile(peaks, 0.95);
  out.queue_delay_s = link.uplink_queueing_delay().seconds();
  out.drops = link.uplink_drops();
  return out;
}
}  // namespace

int main() {
  PrintBanner("Ablation: bufferbloat (uplink buffer depth x overdrive headroom)");

  TextTable table({"overdrive headroom", "buffer", "uplink p95 ratio", "queue delay (s)",
                   "drops"});
  for (double headroom : {0.0, 0.15, 0.35, 0.5}) {
    for (Bytes buffer : {KB(64), KB(256), KB(512)}) {
      const Outcome out = RunCase(headroom, buffer);
      table.add_row({TextTable::Num(headroom), TextTable::Int(buffer.count / 1000) + " KB",
                     TextTable::Num(out.p95_ratio), TextTable::Num(out.queue_delay_s),
                     TextTable::Int(static_cast<long long>(out.drops))});
    }
  }
  table.print();

  const Outcome shallow = RunCase(0.0, KB(64));
  const Outcome deep = RunCase(0.35, KB(512));
  bench::PrintComparison("shallow buffer: utilisation capped at capacity", "<= 1.0",
                         TextTable::Num(shallow.p95_ratio));
  bench::PrintComparison("deep buffer: utilisation exceeds capacity", "> 1.0 (Fig 16)",
                         TextTable::Num(deep.p95_ratio));
  bench::PrintComparison("deep buffer standing queue delay", "seconds (bufferbloat)",
                         TextTable::Num(deep.queue_delay_s) + " s");
  return 0;
}
