// Figure 12: devices seen across the Traffic homes by manufacturer class
// (devices that transferred at least 100 KB; BISmark's own Netgear
// gateways removed).
#include "analysis/usage.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto histogram = analysis::VendorHistogram(repo, KB(100), true);

  PrintBanner("Figure 12: Devices seen by manufacturer class (Traffic homes)");

  TextTable table({"manufacturer/type", "devices seen"});
  for (const auto& entry : histogram) {
    table.add_row({std::string(net::VendorClassName(entry.vendor)),
                   TextTable::Int(entry.devices)});
  }
  table.print();

  bench::PrintComparison("most common manufacturer", "Apple",
                         histogram.empty()
                             ? "(none)"
                             : std::string(net::VendorClassName(histogram[0].vendor)));
  bench::PrintComparison("second most common", "ODM / Intel",
                         histogram.size() > 1
                             ? std::string(net::VendorClassName(histogram[1].vendor))
                             : "(none)");
  int total = 0;
  for (const auto& e : histogram) total += e.devices;
  bench::PrintComparison("total classified devices (25 homes)", "~150",
                         TextTable::Int(total));
  const auto with_gateways = analysis::VendorHistogram(repo, KB(100), false);
  int gateways = 0;
  for (const auto& e : with_gateways) {
    if (e.vendor == net::VendorClass::kGateway) gateways = e.devices;
  }
  bench::PrintComparison("gateway-class devices removed from the figure", "(Netgear filtered)",
                         TextTable::Int(gateways));
  return 0;
}
