// Figure 18: the number of homes for which each domain ranks in the
// top-five or top-ten by traffic volume.
#include "analysis/usage.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto prevalence = analysis::TopDomainPrevalence(repo);

  PrintBanner("Figure 18: Homes where a domain is top-5 / top-10 by volume");

  TextTable table({"domain", "homes top-5", "homes top-10"});
  for (std::size_t i = 0; i < prevalence.size() && i < 25; ++i) {
    table.add_row({prevalence[i].domain, TextTable::Int(prevalence[i].homes_top5),
                   TextTable::Int(prevalence[i].homes_top10)});
  }
  table.print();

  // The "usual suspects" should lead; the tail should be long.
  int tail_one_or_two = 0;
  for (const auto& p : prevalence) {
    if (p.homes_top10 <= 2) ++tail_one_or_two;
  }
  bench::PrintComparison("most prevalent domain", "google/youtube/facebook class",
                         prevalence.empty() ? "(none)" : prevalence[0].domain);
  bench::PrintComparison("distinct domains in some home's top-10", "(long tail)",
                         TextTable::Int(static_cast<long long>(prevalence.size())));
  bench::PrintComparison("domains popular in only 1-2 homes", "quite long tail",
                         TextTable::Int(tail_one_or_two));
  return 0;
}
