// Figure 14: diurnal link-utilisation timeseries for one (busy, well-
// behaved) home: per-bucket max throughput against the capacity estimate.
#include "analysis/utilization.h"
#include "common.h"

using namespace bismark;

namespace {
void PrintSeries(const analysis::UtilizationSeries& series, bool upstream) {
  const double cap = upstream ? series.capacity_up_mbps : series.capacity_down_mbps;
  std::printf("\n%s traffic vs measured capacity %.1f Mbps (40-col bars)\n",
              upstream ? "(a) Upstream" : "(b) Downstream", cap);
  for (std::size_t i = 0; i < series.buckets.size(); i += 2) {  // every 8h
    const auto& b = series.buckets[i];
    const double v = upstream ? b.max_up_mbps : b.max_down_mbps;
    const int bars = cap > 0.0 ? static_cast<int>(40.0 * std::min(1.2, v / cap)) : 0;
    std::printf("  %-11s %6.2f Mbps |%-48s|\n", FormatTime(b.start).substr(5, 11).c_str(), v,
                std::string(static_cast<std::size_t>(bars), '#').c_str());
  }
}
}  // namespace

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto points = analysis::LinkSaturation(repo);
  const auto home = analysis::BusiestHome(points);
  const auto series = analysis::UtilizationTimeseries(repo, home, Hours(4));

  PrintBanner("Figure 14: Diurnal link utilisation for one home");
  std::printf("home %d: capacity %.1f down / %.1f up Mbps\n", home.value,
              series.capacity_down_mbps, series.capacity_up_mbps);

  PrintSeries(series, true);
  PrintSeries(series, false);

  // Shape checks: capacity steady, utilisation diurnal.
  double busiest = 0.0, quietest = 1e18;
  int active_buckets = 0;
  for (const auto& b : series.buckets) {
    if (b.max_down_mbps > 0) {
      ++active_buckets;
      busiest = std::max(busiest, b.max_down_mbps);
      quietest = std::min(quietest, b.max_down_mbps);
    }
  }
  bench::PrintComparison("capacity roughly constant across window", "yes (dotted line)",
                         "median-of-probes by construction");
  bench::PrintComparison("utilisation tracks daily cycles", "yes",
                         active_buckets > 10 && busiest > 2.0 * std::max(0.01, quietest)
                             ? "yes"
                             : "weak");
  bench::PrintComparison("downstream peak stays <= capacity", "yes (shaped)",
                         busiest <= series.capacity_down_mbps * 1.05 ? "yes" : "NO");
  return 0;
}
