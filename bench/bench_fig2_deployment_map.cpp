// Figure 2: the BISmark deployment map — "the green dots indicate routers
// that are currently reporting (156)... the red dots include the full set
// of routers that have ever contributed data (295). Because we only use
// data from routers that consistently report... we use data from 126
// routers in 19 countries." Rendered here as per-country counts of
// ever-contributed vs consistently-reporting routers, measured from the
// heartbeat data set (with churn participants included in the deployment).
#include <map>
#include <set>

#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const Interval window = repo.windows().heartbeats;

  // Per-home online days, from heartbeats alone.
  std::map<int, double> online_days;
  for (const auto& run : repo.heartbeat_runs()) {
    online_days[run.home.value] += (run.end - run.start).days();
  }

  PrintBanner("Figure 2: The BISmark deployment (per-country router counts)");

  std::map<std::string, std::pair<int, int>> by_country;  // ever, consistent
  for (const auto& info : repo.homes()) {
    auto& [ever, consistent] = by_country[info.country_code];
    const auto it = online_days.find(info.id.value);
    if (it == online_days.end()) continue;  // never reported
    ++ever;
    if (it->second >= 25.0) ++consistent;
  }

  TextTable table({"country", "ever contributed", "consistent (>= 25 days)"});
  int total_ever = 0, total_consistent = 0;
  for (const auto& [code, counts] : by_country) {
    table.add_row({code, TextTable::Int(counts.first), TextTable::Int(counts.second)});
    total_ever += counts.first;
    total_consistent += counts.second;
  }
  table.print();

  bench::PrintComparison("routers that ever contributed data", "295 (red dots)",
                         TextTable::Int(total_ever) + " (we simulate 30 churn homes)");
  bench::PrintComparison("consistently-reporting routers used in the study", "126",
                         TextTable::Int(total_consistent));
  bench::PrintComparison("countries represented", "19",
                         TextTable::Int(static_cast<long long>(by_country.size())));
  bench::PrintComparison("study span", "Oct 2012 - Apr 2013",
                         FormatTime(window.start).substr(0, 10) + " .. " +
                             FormatTime(window.end).substr(0, 10));
  return 0;
}
