// Figure 16: uplink utilisation exceeding the capacity estimate in the two
// bufferbloat case-study homes — (a) the constant scientific-data
// uploader, (b) diurnal bursts past capacity.
#include "analysis/utilization.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto points = analysis::LinkSaturation(repo);
  const auto over = analysis::OversaturatedUplinks(points);

  PrintBanner("Figure 16: Uplink utilisation exceeding measured capacity");

  if (over.empty()) {
    std::printf("no over-saturating homes found (expected 2)\n");
    return 1;
  }

  for (std::size_t i = 0; i < over.size() && i < 2; ++i) {
    const auto series = analysis::UtilizationTimeseries(repo, over[i], Hours(6));
    std::printf("\n(%c) home %d — measured uplink capacity %.2f Mbps\n",
                static_cast<char>('a' + i), over[i].value, series.capacity_up_mbps);
    std::printf("  %-11s  %9s  %s\n", "bucket", "max Mbps", "vs capacity");
    for (std::size_t k = 0; k < series.buckets.size(); k += 4) {  // daily rows
      const auto& b = series.buckets[k];
      const double ratio =
          series.capacity_up_mbps > 0 ? b.max_up_mbps / series.capacity_up_mbps : 0.0;
      std::printf("  %-11s  %9.2f  %5.2fx %s\n", FormatTime(b.start).substr(5, 11).c_str(),
                  b.max_up_mbps, ratio, ratio > 1.0 ? "<-- exceeds estimate" : "");
    }
    int exceeded = 0, active = 0;
    for (const auto& b : series.buckets) {
      if (b.max_up_mbps > 0) ++active;
      if (b.max_up_mbps > series.capacity_up_mbps) ++exceeded;
    }
    bench::PrintComparison("  buckets exceeding capacity", "(most, for the uploader)",
                           TextTable::Int(exceeded) + " of " + TextTable::Int(active));
  }

  bench::PrintComparison("over-saturating homes found", "2",
                         TextTable::Int(static_cast<long long>(over.size())));
  for (const auto& p : points) {
    for (const auto& id : over) {
      if (p.home == id) {
        bench::PrintComparison(
            "  home " + std::to_string(id.value) + " uplink p95 ratio",
            "> 1 (queueing in the modem)", TextTable::Num(p.utilization_up_p95));
      }
    }
  }
  return 0;
}
