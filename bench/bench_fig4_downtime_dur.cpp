// Figure 4: CDF of downtime durations, developed vs developing countries.
#include "common.h"

using namespace bismark;

int main() {
  const auto& homes = bench::SharedAvailability();
  const auto cdfs = analysis::DowntimeDurationCdfs(homes);

  PrintBanner("Figure 4: Downtime duration (seconds)");

  TextTable table({"region", "percentile", "duration (s)"});
  bench::PrintCdfRows(table, "developed", cdfs.developed, true);
  bench::PrintCdfRows(table, "developing", cdfs.developing, true);
  table.print();

  bench::PrintComparison("median downtime duration (developed)", "~30 min",
                         FormatDuration(Seconds(cdfs.developed.median())));
  bench::PrintComparison("median downtime duration (developing)", "~30 min, heavier tail",
                         FormatDuration(Seconds(cdfs.developing.median())));
  bench::PrintComparison("p90 duration developed", "(hours)",
                         FormatDuration(Seconds(cdfs.developed.quantile(0.9))));
  bench::PrintComparison("p90 duration developing", "(up to days)",
                         FormatDuration(Seconds(cdfs.developing.quantile(0.9))));
  bench::PrintComparison(
      "longest downtime observed", "several days",
      FormatDuration(Seconds(std::max(cdfs.developed.quantile(1.0),
                                      cdfs.developing.quantile(1.0)))));
  return 0;
}
