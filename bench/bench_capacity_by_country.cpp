// Supplementary: the Capacity data set (Section 3.2's publicly released,
// continuously updated measurement) summarised per country — the broadband
// view regulators would read off the deployment. Not a numbered figure in
// the paper, but the data set it highlights.
#include "analysis/capacity_stats.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();

  PrintBanner("Capacity data set: per-country access-link estimates");

  const auto rows = analysis::CapacityByCountry(repo, 2);
  TextTable table({"country", "region", "homes", "median down (Mbps)", "median up (Mbps)",
                   "down:up"});
  for (const auto& row : rows) {
    table.add_row({row.country_code, row.developed ? "developed" : "developing",
                   TextTable::Int(row.homes), TextTable::Num(row.median_down_mbps, 1),
                   TextTable::Num(row.median_up_mbps, 2),
                   TextTable::Num(row.median_down_mbps / std::max(0.01, row.median_up_mbps), 1) +
                       ":1"});
  }
  table.print();

  const auto cdfs = analysis::CapacityDistributions(repo);
  bench::PrintComparison("developed vs developing median downstream", "(developed faster)",
                         TextTable::Num(cdfs.developed_down.median(), 1) + " vs " +
                             TextTable::Num(cdfs.developing_down.median(), 1) + " Mbps");

  // Probe stability backs Fig. 14's flat capacity line.
  const auto homes = analysis::SummarizeCapacity(repo);
  Cdf cv;
  for (const auto& h : homes) cv.add(h.down_cv);
  bench::PrintComparison("median probe coefficient-of-variation",
                         "capacity 'fairly constant' (Fig 14)",
                         TextTable::Pct(cv.median()));
  return 0;
}
