// Figure 6: example availability timelines for the three archetypes —
// (a) an always-on household, (b) an appliance-mode household that powers
// the router only when using it, (c) a household with a flaky ISP. The
// archetypes are *found in the measured data*, not looked up from ground
// truth, exactly as the authors eyeballed their heartbeat logs.
#include "analysis/timeline_view.h"
#include "common.h"

using namespace bismark;

namespace {
void PrintTimeline(const collect::DataRepository& repo, collect::HomeId home,
                   const char* caption) {
  const auto* info = repo.find_home(home);
  const TimeZone tz{info ? info->utc_offset : Duration{0}};
  const auto runs = repo.heartbeat_runs_for(home);
  // Render 12 days starting a third into the window (away from edges).
  const TimePoint from =
      repo.windows().heartbeats.start + Days(60);
  const auto days = analysis::RenderTimeline(runs, tz, from, 12);

  std::printf("\n%s (home %d, %s)\n", caption, home.value,
              info ? info->country_code.c_str() : "?");
  std::printf("  each row is one local day, '#' = online (30-min cells)\n");
  for (const auto& day : days) {
    std::printf("  %-5s |%s| %5.1f%%\n", FormatMonthDay(day.midnight).c_str(),
                day.cells.c_str(), day.online_fraction * 100.0);
  }
}
}  // namespace

int main() {
  const auto& repo = bench::SharedStudy().repository();

  PrintBanner("Figure 6: Modes of router availability");

  const auto always_on = analysis::FindArchetype(repo, analysis::AvailabilityArchetype::kAlwaysOn);
  const auto appliance = analysis::FindArchetype(repo, analysis::AvailabilityArchetype::kAppliance);
  const auto flaky = analysis::FindArchetype(repo, analysis::AvailabilityArchetype::kFlaky);

  PrintTimeline(repo, always_on, "(a) never intentionally turned off (typical developed home)");
  PrintTimeline(repo, appliance, "(b) router as appliance: evenings and weekends only");
  PrintTimeline(repo, flaky, "(c) continuously powered but sporadic ISP outages");

  bench::PrintComparison("\n(a) archetype exists", "yes (typical US home)",
                         always_on.value >= 0 ? "found" : "missing");
  bench::PrintComparison("(b) archetype exists", "yes (Chinese household, Fig 6b)",
                         appliance != always_on ? "found" : "missing");
  bench::PrintComparison("(c) archetype exists", "yes (April 2013 outage spell)",
                         (flaky != always_on && flaky != appliance) ? "found" : "missing");
  return 0;
}
