// Figure 17: breakdown of home data usage by device rank — the dominant
// device carries most of the traffic.
#include "analysis/usage.h"
#include "common.h"

using namespace bismark;

int main() {
  const auto& repo = bench::SharedStudy().repository();
  const auto conc = analysis::DeviceUsageShares(repo, 8);

  PrintBanner("Figure 17: Share of home traffic by device rank");

  TextTable table({"device rank", "mean share of home traffic"});
  for (std::size_t r = 0; r < conc.share_by_rank.size(); ++r) {
    if (conc.share_by_rank[r] <= 0.0) break;
    table.add_row({TextTable::Int(static_cast<long long>(r + 1)),
                   TextTable::Pct(conc.share_by_rank[r])});
  }
  table.print();

  bench::PrintComparison("homes analysed", "25", TextTable::Int(conc.homes));
  bench::PrintComparison("dominant device share", "~60-65%",
                         TextTable::Pct(conc.share_by_rank[0]));
  bench::PrintComparison("second device share", "~20%",
                         TextTable::Pct(conc.share_by_rank[1]));
  bench::PrintComparison("every traffic home has >= 3 devices", "yes",
                         conc.share_by_rank[2] > 0.0 ? "yes" : "NO");
  return 0;
}
