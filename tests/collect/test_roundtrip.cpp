// Full-fidelity export/import round-trip: a faulted, sharded study's
// repository — every data set, including the private traffic ones — must be
// reproduced *exactly* (operator== per row) from its own CSV export. This
// is the property the schema layer's lossless codecs exist for; the public
// release views stay deliberately lossy and are covered elsewhere.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "collect/export.h"
#include "collect/import.h"
#include "home/deployment.h"

namespace bismark::collect {
namespace {

TEST(FullFidelityRoundTrip, FaultedShardedStudyReproducesExactly) {
  home::DeploymentOptions options;
  options.seed = 4242;
  options.windows = DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 1);
  options.roster_scale = 0.1;
  options.workers = 4;
  options.upload_faults.upload_loss_prob = 0.05;
  options.upload_faults.ack_loss_prob = 0.02;
  options.fault_seed = 7;
  const auto study = home::Deployment::RunStudy(options);
  const auto& source = study->repository();
  ASSERT_GT(source.rows<TrafficFlowRecord>().size(), 0u)
      << "fixture must exercise the private traffic data sets";

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bismark_full_roundtrip").string();
  std::filesystem::remove_all(dir);
  const std::size_t exported = ExportAllDatasets(source, dir);
  EXPECT_EQ(exported, source.total_rows());

  DataRepository imported(options.windows);
  const auto report = ImportAllDatasets(imported, dir);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.total_rows(), source.total_rows());

  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    ASSERT_EQ(imported.rows<T>().size(), source.rows<T>().size()) << Schema<T>::kKindName;
    EXPECT_EQ(imported.rows<T>(), source.rows<T>())
        << Schema<T>::kKindName << " must round-trip bit-for-bit";
    EXPECT_EQ(report.by_kind[kRecordIndexOf<T>], source.rows<T>().size());
  });
  std::filesystem::remove_all(dir);
}

TEST(FullFidelityRoundTrip, SingleDatasetStreamRoundTrip) {
  // Stream-level check with hostile field contents: quotes handled by the
  // exporter's quoting must survive the parser.
  const Interval all{TimePoint{0}, TimePoint{1'000'000'000}};
  DataRepository source(DatasetWindows{all, all, all, all, all, all});
  DnsLogRecord dns;
  dns.home = HomeId{3};
  dns.when = TimePoint{1000};
  dns.query = "weird,\"name\"\nwith.newline";
  dns.a_records = 1;
  source.add(dns);

  std::stringstream s;
  EXPECT_EQ(ExportDatasetCsv<DnsLogRecord>(source, s), 1u);
  DataRepository target(DatasetWindows{all, all, all, all, all, all});
  ImportReport report;
  EXPECT_EQ(ImportDatasetCsv<DnsLogRecord>(target, s, report), 1u);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  ASSERT_EQ(target.rows<DnsLogRecord>().size(), 1u);
  EXPECT_EQ(target.rows<DnsLogRecord>()[0], dns);
}

}  // namespace
}  // namespace bismark::collect
