// The schema layer: one Schema<T> specialisation per data set is the only
// per-dataset definition in the system. These tests pin the derived pieces
// (kind names, variant order, headers, codecs) that committed artifacts
// and on-disk formats depend on.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "collect/schema.h"

namespace bismark::collect {
namespace {

TEST(SchemaTypelist, WireOrderIsStable) {
  // These indices key the spool drop ledger, the obs counter labels, and
  // the snapshot kind order. Appending is fine; reordering never is.
  EXPECT_EQ(kRecordIndexOf<HeartbeatRun>, 0u);
  EXPECT_EQ(kRecordIndexOf<UptimeRecord>, 1u);
  EXPECT_EQ(kRecordIndexOf<CapacityRecord>, 2u);
  EXPECT_EQ(kRecordIndexOf<DeviceCountRecord>, 3u);
  EXPECT_EQ(kRecordIndexOf<WifiScanRecord>, 4u);
  EXPECT_EQ(kRecordIndexOf<TrafficFlowRecord>, 5u);
  EXPECT_EQ(kRecordIndexOf<ThroughputMinute>, 6u);
  EXPECT_EQ(kRecordIndexOf<DnsLogRecord>, 7u);
  EXPECT_EQ(kRecordIndexOf<DeviceTrafficRecord>, 8u);
  EXPECT_EQ(kRecordIndexOf<CgnEventRecord>, kRecordKinds - 1);
  EXPECT_EQ(kRecordKinds, 10u);
}

TEST(SchemaTypelist, KindNamesMatchCommittedLabels) {
  // The metric series bismark_spool_dropped_total{kind="..."} and the BENCH
  // tables carry these exact strings.
  EXPECT_STREQ(RecordKindName(0), "heartbeat_run");
  EXPECT_STREQ(RecordKindName(1), "uptime");
  EXPECT_STREQ(RecordKindName(2), "capacity");
  EXPECT_STREQ(RecordKindName(3), "device_count");
  EXPECT_STREQ(RecordKindName(4), "wifi_scan");
  EXPECT_STREQ(RecordKindName(5), "traffic_flow");
  EXPECT_STREQ(RecordKindName(6), "throughput");
  EXPECT_STREQ(RecordKindName(7), "dns");
  EXPECT_STREQ(RecordKindName(8), "device_traffic");
  EXPECT_STREQ(RecordKindName(9), "cgn_event");
  EXPECT_STREQ(RecordKindName(kRecordKinds), "unknown");
}

TEST(SchemaTypelist, KindNamesAndCsvFilesAreDistinct) {
  std::set<std::string> names;
  std::set<std::string> files;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    names.insert(Schema<T>::kKindName);
    files.insert(Schema<T>::kCsvFile);
  });
  EXPECT_EQ(names.size(), kRecordKinds);
  EXPECT_EQ(files.size(), kRecordKinds);
}

TEST(SchemaTypelist, RecordTimeDispatchesThroughTheVariant) {
  Record r = UptimeRecord{HomeId{4}, TimePoint{123456}, Hours(2)};
  EXPECT_EQ(RecordTime(r).ms, 123456);
  r = DeviceTrafficRecord{};  // registry rows are windowless
  EXPECT_EQ(RecordTime(r).ms, 0);
}

TEST(SchemaHeaders, FullFidelityHeadersComeFromFieldLists) {
  EXPECT_EQ(CsvHeader<HeartbeatRun>(), "home,run_start_ms,run_end_ms");
  EXPECT_EQ(CsvHeader<CapacityRecord>(), "home,measured_ms,down_bps,up_bps");
  EXPECT_EQ(CsvHeader<TrafficFlowRecord>(),
            "home,flow,first_ms,last_ms,proto,dst_port,device_mac,bytes_up,bytes_down,"
            "packets_up,packets_down,domain,domain_anonymized");
}

TEST(SchemaCodecs, ExactDoubleRoundTrip) {
  // The %.17g encoding must reproduce any double bit-for-bit.
  for (const double v : {0.1, 1.0 / 3.0, 3.875e9, -0.0, 12345678.901234567}) {
    double back = 0.0;
    ASSERT_TRUE(CsvDecode(CsvEncode(v), back));
    EXPECT_EQ(back, v);
  }
}

TEST(SchemaCodecs, EnumsRoundTripByName) {
  net::Protocol p{};
  ASSERT_TRUE(CsvDecode(CsvEncode(net::Protocol::kUdp), p));
  EXPECT_EQ(p, net::Protocol::kUdp);
  EXPECT_FALSE(CsvDecode("quic", p));

  wireless::Band b{};
  ASSERT_TRUE(CsvDecode(CsvEncode(wireless::Band::k5GHz), b));
  EXPECT_EQ(b, wireless::Band::k5GHz);
  EXPECT_FALSE(CsvDecode("60 GHz", b));

  net::VendorClass vc{};
  ASSERT_TRUE(CsvDecode(CsvEncode(net::VendorClass::kUnknown), vc));
  EXPECT_EQ(vc, net::VendorClass::kUnknown);
}

TEST(SchemaCodecs, RejectsOutOfRangeAndTrailingGarbage) {
  std::uint16_t port = 0;
  EXPECT_FALSE(CsvDecode(std::string("65536"), port));  // > 0xffff
  EXPECT_TRUE(CsvDecode(std::string("65535"), port));
  int n = 0;
  EXPECT_FALSE(CsvDecode(std::string("12x"), n));
  bool flag = false;
  EXPECT_FALSE(CsvDecode(std::string("true"), flag));  // only "1"/"0"
}

TEST(SchemaAdmission, HeartbeatRunsClipToTheWindow) {
  DatasetWindows w{};
  w.heartbeats = {TimePoint{1000}, TimePoint{5000}};
  HeartbeatRun run{HomeId{1}, TimePoint{0}, TimePoint{9000}};
  ASSERT_TRUE(Schema<HeartbeatRun>::Admit(w, run));
  EXPECT_EQ(run.start.ms, 1000);
  EXPECT_EQ(run.end.ms, 5000);

  HeartbeatRun outside{HomeId{1}, TimePoint{6000}, TimePoint{9000}};
  EXPECT_FALSE(Schema<HeartbeatRun>::Admit(w, outside));
}

TEST(SchemaAdmission, PointRecordsUseContainsAndRegistryRowsAlwaysPass) {
  DatasetWindows w{};
  w.uptime = {TimePoint{1000}, TimePoint{5000}};
  const UptimeRecord in{HomeId{1}, TimePoint{2000}, Hours(1)};
  const UptimeRecord out{HomeId{1}, TimePoint{5000}, Hours(1)};  // half-open
  EXPECT_TRUE(Schema<UptimeRecord>::Admit(w, in));
  EXPECT_FALSE(Schema<UptimeRecord>::Admit(w, out));
  EXPECT_TRUE(Schema<DeviceTrafficRecord>::Admit(w, DeviceTrafficRecord{}));
}

TEST(SchemaSortKeys, CanonicalOrderIsTimeThenHome) {
  const UptimeRecord a{HomeId{9}, TimePoint{100}, Hours(1)};
  const UptimeRecord b{HomeId{1}, TimePoint{200}, Hours(1)};
  EXPECT_LT(Schema<UptimeRecord>::SortKey(a), Schema<UptimeRecord>::SortKey(b));
  // Same time: the home id breaks the tie.
  const UptimeRecord c{HomeId{2}, TimePoint{100}, Hours(1)};
  EXPECT_LT(Schema<UptimeRecord>::SortKey(a.home.value < c.home.value ? a : c),
            Schema<UptimeRecord>::SortKey(a.home.value < c.home.value ? c : a));
}

}  // namespace
}  // namespace bismark::collect
