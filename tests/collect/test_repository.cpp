#include <gtest/gtest.h>

#include "collect/repository.h"

namespace bismark::collect {
namespace {

TEST(DatasetWindowsTest, PaperDatesMatchTable2) {
  const auto w = DatasetWindows::Paper();
  EXPECT_EQ(w.heartbeats.start, MakeTime({2012, 10, 1}));
  EXPECT_EQ(w.heartbeats.end, MakeTime({2013, 4, 15}));
  EXPECT_EQ(w.uptime.start, MakeTime({2013, 3, 6}));
  EXPECT_EQ(w.wifi.start, MakeTime({2012, 11, 1}));
  EXPECT_EQ(w.wifi.end, MakeTime({2012, 11, 15}));
  EXPECT_EQ(w.traffic.start, MakeTime({2013, 4, 1}));
  EXPECT_EQ(w.traffic.end, MakeTime({2013, 4, 15}));
  // Nested windows: traffic/capacity inside heartbeats.
  EXPECT_GE(w.traffic.start, w.heartbeats.start);
  EXPECT_LE(w.traffic.end, w.heartbeats.end);
}

TEST(DatasetWindowsTest, CompressedKeepsStructure) {
  const TimePoint start = MakeTime({2012, 10, 1});
  const auto w = DatasetWindows::Compressed(start, 8);
  EXPECT_EQ(w.heartbeats.start, start);
  EXPECT_EQ((w.heartbeats.end - w.heartbeats.start).days(), 56.0);
  EXPECT_LE(w.uptime.start, w.uptime.end);
  EXPECT_GE(w.uptime.start, w.heartbeats.start);
  EXPECT_LE(w.traffic.end, w.heartbeats.end);
  EXPECT_EQ((w.wifi.end - w.wifi.start).days(), 14.0);
}

class RepositoryTest : public ::testing::Test {
 protected:
  RepositoryTest() : repo_(DatasetWindows::Paper()) {}
  DataRepository repo_;
  const DatasetWindows w_ = DatasetWindows::Paper();
};

TEST_F(RepositoryTest, RegisterAndFindHomes) {
  HomeInfo info;
  info.id = HomeId{7};
  info.country_code = "US";
  repo_.register_home(info);
  ASSERT_NE(repo_.find_home(HomeId{7}), nullptr);
  EXPECT_EQ(repo_.find_home(HomeId{7})->country_code, "US");
  EXPECT_EQ(repo_.find_home(HomeId{8}), nullptr);
}

TEST_F(RepositoryTest, HeartbeatRunsClippedToWindow) {
  // A run straddling the window start is trimmed, not dropped.
  repo_.add_heartbeat_run(
      HeartbeatRun{HomeId{1}, w_.heartbeats.start - Days(2), w_.heartbeats.start + Days(1)});
  ASSERT_EQ(repo_.heartbeat_runs().size(), 1u);
  EXPECT_EQ(repo_.heartbeat_runs()[0].start, w_.heartbeats.start);
  // A run entirely outside is dropped.
  repo_.add_heartbeat_run(
      HeartbeatRun{HomeId{1}, w_.heartbeats.end + Days(1), w_.heartbeats.end + Days(2)});
  EXPECT_EQ(repo_.heartbeat_runs().size(), 1u);
}

TEST_F(RepositoryTest, HeartbeatCountPerRun) {
  const HeartbeatRun run{HomeId{1}, w_.heartbeats.start, w_.heartbeats.start + Minutes(10)};
  EXPECT_EQ(run.heartbeat_count(), 10);
}

TEST_F(RepositoryTest, PointRecordsOutsideWindowDropped) {
  repo_.add_uptime(UptimeRecord{HomeId{1}, w_.uptime.start - Days(1), Hours(1)});
  repo_.add_uptime(UptimeRecord{HomeId{1}, w_.uptime.start + Days(1), Hours(1)});
  EXPECT_EQ(repo_.uptime().size(), 1u);

  repo_.add_capacity(CapacityRecord{HomeId{1}, w_.capacity.start + Days(1), Mbps(10), Mbps(1)});
  repo_.add_capacity(CapacityRecord{HomeId{1}, w_.capacity.end + Days(1), Mbps(10), Mbps(1)});
  EXPECT_EQ(repo_.capacity().size(), 1u);

  DeviceCountRecord dc;
  dc.home = HomeId{1};
  dc.sampled = w_.devices.start + Hours(5);
  repo_.add_device_count(dc);
  dc.sampled = w_.devices.end + Hours(5);
  repo_.add_device_count(dc);
  EXPECT_EQ(repo_.device_counts().size(), 1u);
}

TEST_F(RepositoryTest, PerHomeFilters) {
  for (int home = 0; home < 3; ++home) {
    for (int i = 0; i < home + 1; ++i) {
      TrafficFlowRecord rec;
      rec.home = HomeId{home};
      rec.first_packet = w_.traffic.start + Hours(i);
      rec.last_packet = rec.first_packet + Minutes(1);
      repo_.add_flow(std::move(rec));
    }
  }
  EXPECT_EQ(repo_.flows_for(HomeId{0}).size(), 1u);
  EXPECT_EQ(repo_.flows_for(HomeId{1}).size(), 2u);
  EXPECT_EQ(repo_.flows_for(HomeId{2}).size(), 3u);
  EXPECT_TRUE(repo_.flows_for(HomeId{9}).empty());
}

TEST_F(RepositoryTest, CountsSummary) {
  repo_.add_heartbeat_run(
      HeartbeatRun{HomeId{1}, w_.heartbeats.start, w_.heartbeats.start + Days(1)});
  repo_.add_uptime(UptimeRecord{HomeId{1}, w_.uptime.start + Hours(1), Hours(1)});
  DnsLogRecord dns;
  dns.home = HomeId{1};
  dns.when = w_.traffic.start + Hours(1);
  repo_.add_dns(std::move(dns));
  const auto counts = repo_.counts();
  EXPECT_EQ(counts.heartbeat_runs, 1u);
  EXPECT_EQ(counts.uptime, 1u);
  EXPECT_EQ(counts.dns, 1u);
  EXPECT_EQ(counts.flows, 0u);
}

TEST_F(RepositoryTest, ThroughputWindowEnforced) {
  ThroughputMinute m;
  m.home = HomeId{1};
  m.minute_start = w_.traffic.start + Minutes(5);
  repo_.add_throughput_minute(m);
  m.minute_start = w_.traffic.end + Minutes(5);
  repo_.add_throughput_minute(m);
  EXPECT_EQ(repo_.throughput().size(), 1u);
}

TEST_F(RepositoryTest, TotalBytesHelper) {
  TrafficFlowRecord rec;
  rec.bytes_up = KB(10);
  rec.bytes_down = KB(30);
  EXPECT_EQ(rec.total_bytes(), KB(40));
}

}  // namespace
}  // namespace bismark::collect
