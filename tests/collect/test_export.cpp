#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "collect/export.h"

namespace bismark::collect {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  ExportTest() : repo_(DatasetWindows::Paper()) {
    const auto& w = repo_.windows();
    repo_.add_heartbeat_run(
        HeartbeatRun{HomeId{1}, w.heartbeats.start, w.heartbeats.start + Hours(1)});
    repo_.add_uptime(UptimeRecord{HomeId{1}, w.uptime.start + Hours(1), Hours(1)});
    repo_.add_capacity(
        CapacityRecord{HomeId{1}, w.capacity.start + Hours(1), Mbps(20), Mbps(4)});
    DeviceCountRecord dc;
    dc.home = HomeId{1};
    dc.sampled = w.devices.start + Hours(1);
    dc.wired = 1;
    dc.wireless_24 = 3;
    repo_.add_device_count(dc);
    WifiScanRecord scan;
    scan.home = HomeId{1};
    scan.scanned = w.wifi.start + Hours(1);
    scan.band = wireless::Band::k2_4GHz;
    scan.channel = 11;
    scan.visible_aps = 12;
    repo_.add_wifi_scan(scan);
    TrafficFlowRecord flow;
    flow.home = HomeId{1};
    flow.first_packet = w.traffic.start + Hours(1);
    flow.last_packet = flow.first_packet + Minutes(5);
    flow.domain = "netflix.com";
    flow.bytes_down = MB(100);
    repo_.add_flow(std::move(flow));
  }
  DataRepository repo_;
};

TEST_F(ExportTest, EachExporterWritesHeaderAndRows) {
  std::ostringstream out;
  EXPECT_EQ(ExportHeartbeats(repo_, out), 1u);
  EXPECT_NE(out.str().find("run_start_ms"), std::string::npos);

  out.str("");
  EXPECT_EQ(ExportUptime(repo_, out), 1u);
  out.str("");
  EXPECT_EQ(ExportCapacity(repo_, out), 1u);
  EXPECT_NE(out.str().find("20.000"), std::string::npos);
  out.str("");
  EXPECT_EQ(ExportDevices(repo_, out), 1u);
  out.str("");
  EXPECT_EQ(ExportWifi(repo_, out), 1u);
  EXPECT_NE(out.str().find("2.4 GHz"), std::string::npos);
}

TEST_F(ExportTest, TrafficExportIsSeparateFromPublicSet) {
  std::ostringstream out;
  EXPECT_EQ(ExportTrafficFlows(repo_, out), 1u);
  EXPECT_NE(out.str().find("netflix.com"), std::string::npos);
}

TEST_F(ExportTest, PublicDatasetExcludesTraffic) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bismark_export_test").string();
  std::filesystem::remove_all(dir);
  const std::size_t rows = ExportPublicDatasets(repo_, dir);
  EXPECT_EQ(rows, 5u);  // one row per public data set above
  // The five public files exist; no traffic file is written (Section 3.2:
  // everything but Traffic is released).
  EXPECT_TRUE(std::filesystem::exists(dir + "/heartbeats.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/uptime.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/capacity.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/devices.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/wifi.csv"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/traffic.csv"));
  std::filesystem::remove_all(dir);
}

TEST_F(ExportTest, EmptyRepositoryExportsHeadersOnly) {
  DataRepository empty(DatasetWindows::Paper());
  std::ostringstream out;
  EXPECT_EQ(ExportHeartbeats(empty, out), 0u);
  EXPECT_FALSE(out.str().empty());  // header still present
}

// Byte-level golden for the release format. These literals are the public
// contract of the released CSVs: any refactor of the export path must keep
// producing exactly these bytes for these rows.
TEST(ExportGoldenBytes, ReleaseViewsMatchHistoricalFormat) {
  const Interval all{TimePoint{0}, TimePoint{1'000'000'000}};
  DataRepository repo(DatasetWindows{all, all, all, all, all, all});
  repo.add(HeartbeatRun{HomeId{3}, TimePoint{60000}, TimePoint{240000}});
  repo.add(UptimeRecord{HomeId{4}, TimePoint{1000}, Seconds(4521.5)});
  repo.add(CapacityRecord{HomeId{5}, TimePoint{2000}, Mbps(19.5), Mbps(4.5)});

  std::ostringstream out;
  ExportHeartbeats(repo, out);
  EXPECT_EQ(out.str(),
            "home,run_start_ms,run_end_ms,heartbeats\n"
            "3,60000,240000,3\n");

  out.str("");
  ExportUptime(repo, out);
  EXPECT_EQ(out.str(),
            "home,reported_ms,uptime_s\n"
            "4,1000,4521.500\n");

  out.str("");
  ExportCapacity(repo, out);
  EXPECT_EQ(out.str(),
            "home,measured_ms,down_mbps,up_mbps\n"
            "5,2000,19.500,4.500\n");
}

TEST(ExportGoldenBytes, FullFidelityViewUsesExactCodecs) {
  const Interval all{TimePoint{0}, TimePoint{1'000'000'000}};
  DataRepository repo(DatasetWindows{all, all, all, all, all, all});
  repo.add(CapacityRecord{HomeId{5}, TimePoint{2000}, Mbps(19.5), Mbps(4.5)});

  std::ostringstream out;
  ExportDatasetCsv<CapacityRecord>(repo, out);
  // %.17g keeps the exact double (19.5 Mbps = 19500000 bps exactly).
  EXPECT_EQ(out.str(),
            "home,measured_ms,down_bps,up_bps\n"
            "5,2000,19500000,4500000\n");
}

TEST(ExportGoldenBytes, HostileFieldsAreRfc4180Quoted) {
  const Interval all{TimePoint{0}, TimePoint{1'000'000'000}};
  DataRepository repo(DatasetWindows{all, all, all, all, all, all});
  DnsLogRecord dns;
  dns.home = HomeId{1};
  dns.when = TimePoint{5};
  dns.query = "a,\"b\"";
  repo.add(dns);
  std::ostringstream out;
  ExportDatasetCsv<DnsLogRecord>(repo, out);
  EXPECT_NE(out.str().find("\"a,\"\"b\"\"\""), std::string::npos) << out.str();
}

}  // namespace
}  // namespace bismark::collect
