// Binary snapshots: exact repository round-trip, strict rejection of
// corrupt or drifted inputs.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "collect/snapshot.h"
#include "core/crc32c.h"

namespace bismark::collect {
namespace {

/// Recompute the trailing whole-file CRC32C after a deliberate body
/// mutation, so tests reach the parse-layer error they target instead of
/// tripping the v2 integrity check first.
void FixupCrc(std::string& bytes) {
  ASSERT_GE(bytes.size(), 4u);
  const std::uint32_t crc = core::Crc32c(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

DatasetWindows WideWindows() {
  const Interval all{TimePoint{0}, TimePoint{1'000'000'000}};
  return DatasetWindows{all, all, all, all, all, all};
}

/// Fill a repository with at least one row in every data set and values
/// that exercise every codec (doubles, MACs, enums, strings, bools).
void Populate(DataRepository& repo) {

  HomeInfo info;
  info.id = HomeId{7};
  info.country_code = "US";
  info.developed = true;
  info.utc_offset = Hours(-5);
  info.reports_uptime = true;
  info.consented_traffic = true;
  info.true_down_mbps = 19.75;
  repo.register_home(info);

  repo.add(HeartbeatRun{HomeId{7}, TimePoint{60000}, TimePoint{360000}});
  repo.add(UptimeRecord{HomeId{7}, TimePoint{120000}, Hours(13)});
  repo.add(CapacityRecord{HomeId{7}, TimePoint{180000}, Mbps(19.993), Mbps(4.111)});
  DeviceCountRecord dc;
  dc.home = HomeId{7};
  dc.sampled = TimePoint{240000};
  dc.wired = 2;
  dc.wireless_24 = 5;
  dc.unique_total = 11;
  repo.add(dc);
  WifiScanRecord scan;
  scan.home = HomeId{7};
  scan.scanned = TimePoint{300000};
  scan.band = wireless::Band::k5GHz;
  scan.channel = 36;
  scan.visible_aps = 4;
  repo.add(scan);
  TrafficFlowRecord flow;
  flow.home = HomeId{7};
  flow.flow = net::FlowId{0xdeadbeef01ull};
  flow.first_packet = TimePoint{360000};
  flow.last_packet = TimePoint{420000};
  flow.protocol = net::Protocol::kUdp;
  flow.dst_port = 443;
  flow.device_mac = net::MacAddress({0x02, 0x11, 0x22, 0x33, 0x44, 0x55});
  flow.bytes_up = Bytes{1234};
  flow.bytes_down = Bytes{56789};
  flow.packets_up = 12;
  flow.packets_down = 48;
  flow.domain = "anon-3f2a";
  flow.domain_anonymized = true;
  repo.add(flow);
  ThroughputMinute tm;
  tm.home = HomeId{7};
  tm.minute_start = TimePoint{480000};
  tm.bytes_down = Bytes{999};
  tm.peak_down_bps = 1.5e6;
  repo.add(tm);
  DnsLogRecord dns;
  dns.home = HomeId{7};
  dns.when = TimePoint{540000};
  dns.device_mac = net::MacAddress({0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee});
  dns.query = "netflix.com";
  dns.a_records = 2;
  repo.add(dns);
  DeviceTrafficRecord dt;
  dt.home = HomeId{7};
  dt.device_mac = net::MacAddress({0x02, 0x01, 0x02, 0x03, 0x04, 0x05});
  dt.vendor = net::VendorClass::kUnknown;
  dt.bytes_total = Bytes{777777};
  dt.flows = 42;
  repo.add(dt);
}

template <typename T>
void ExpectSameRows(const DataRepository& a, const DataRepository& b) {
  ASSERT_EQ(a.rows<T>().size(), b.rows<T>().size()) << Schema<T>::kKindName;
  EXPECT_EQ(a.rows<T>(), b.rows<T>()) << Schema<T>::kKindName;
}

TEST(Snapshot, RoundTripReproducesEveryDatasetExactly) {
  DataRepository repo(WideWindows());
  Populate(repo);
  std::stringstream buf;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(repo, buf, &error)) << error;

  const auto loaded = LoadSnapshot(buf, &error);
  ASSERT_NE(loaded, nullptr) << error;

  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    ExpectSameRows<T>(repo, *loaded);
  });
  ASSERT_EQ(loaded->homes().size(), 1u);
  EXPECT_EQ(loaded->homes()[0], repo.homes()[0]);
  EXPECT_EQ(loaded->windows().heartbeats.start, repo.windows().heartbeats.start);
  EXPECT_EQ(loaded->windows().traffic.end, repo.windows().traffic.end);
  EXPECT_EQ(loaded->total_rows(), repo.total_rows());
}

TEST(Snapshot, EmptyRepositoryRoundTrips) {
  const DataRepository repo(WideWindows());
  std::stringstream buf;
  ASSERT_TRUE(SaveSnapshot(repo, buf));
  std::string error;
  const auto loaded = LoadSnapshot(buf, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->total_rows(), 0u);
  EXPECT_TRUE(loaded->homes().empty());
}

std::string SnapshotBytes() {
  std::stringstream buf;
  DataRepository repo(WideWindows());
  Populate(repo);
  SaveSnapshot(repo, buf);
  return buf.str();
}

std::unique_ptr<DataRepository> LoadFrom(const std::string& bytes, std::string& error) {
  std::stringstream in(bytes);
  return LoadSnapshot(in, &error);
}

TEST(Snapshot, RejectsBadMagic) {
  std::string bytes = SnapshotBytes();
  bytes[0] = 'X';
  std::string error;
  EXPECT_EQ(LoadFrom(bytes, error), nullptr);
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(Snapshot, RejectsFutureVersion) {
  std::string bytes = SnapshotBytes();
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);  // little-endian u32
  std::string error;
  EXPECT_EQ(LoadFrom(bytes, error), nullptr);
  EXPECT_NE(error.find("unsupported version"), std::string::npos) << error;
}

TEST(Snapshot, RejectsKindNameDrift) {
  // Corrupt the first kind's name in place: the loader must refuse rather
  // than misinterpret rows (this is what catches schema drift on disk).
  std::string bytes = SnapshotBytes();
  const auto pos = bytes.find("heartbeat_run");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = 'X';
  FixupCrc(bytes);
  std::string error;
  EXPECT_EQ(LoadFrom(bytes, error), nullptr);
  EXPECT_NE(error.find("kind name mismatch"), std::string::npos) << error;
}

TEST(Snapshot, RejectsFieldNameDrift) {
  std::string bytes = SnapshotBytes();
  const auto pos = bytes.find("run_start_ms");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = 'X';
  FixupCrc(bytes);
  std::string error;
  EXPECT_EQ(LoadFrom(bytes, error), nullptr);
  EXPECT_NE(error.find("field name mismatch"), std::string::npos) << error;
}

TEST(Snapshot, RejectsTruncationAndTrailingBytes) {
  const std::string bytes = SnapshotBytes();
  std::string error;
  EXPECT_EQ(LoadFrom(bytes.substr(0, bytes.size() - 3), error), nullptr);
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  // Junk appended after the body: with the trailing CRC re-fixed-up the
  // parser itself must reject the extra bytes (schema-drift safety net).
  std::string padded = bytes + "junk";
  FixupCrc(padded);
  EXPECT_EQ(LoadFrom(padded, error), nullptr);
  EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
}

TEST(Snapshot, RejectsBodyCorruptionViaTrailingCrc) {
  // Any single flipped body bit must be caught by the v2 whole-file CRC32C
  // before field-level parsing ever sees the damage.
  std::string bytes = SnapshotBytes();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  std::string error;
  EXPECT_EQ(LoadFrom(bytes, error), nullptr);
  EXPECT_NE(error.find("CRC32C mismatch"), std::string::npos) << error;

  // Chopping the trailer entirely is reported as a missing CRC, not a parse
  // error deep inside some data set.
  const std::string headerish = SnapshotBytes().substr(0, 13);
  EXPECT_EQ(LoadFrom(headerish, error), nullptr);
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(Snapshot, V1SnapshotWithoutTrailingCrcStillLoads) {
  // v1 is the pre-CRC format: the identical body, version 1, no trailer.
  // Archived snapshots from that era must stay readable forever.
  std::string bytes = SnapshotBytes();
  bytes.resize(bytes.size() - 4);  // drop the v2 whole-file CRC32C
  bytes[8] = 1;                    // little-endian u32 version field
  std::string error;
  const auto loaded = LoadFrom(bytes, error);
  ASSERT_NE(loaded, nullptr) << error;
  DataRepository repo(WideWindows());
  Populate(repo);
  EXPECT_EQ(loaded->total_rows(), repo.total_rows());
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    ExpectSameRows<T>(repo, *loaded);
  });
}

TEST(Snapshot, FileRoundTripAndMissingFileError) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bismark_snapshot_test.bin").string();
  DataRepository repo(WideWindows());
  Populate(repo);
  std::string error;
  ASSERT_TRUE(SaveSnapshotFile(repo, path, &error)) << error;
  const auto loaded = LoadSnapshotFile(path, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->total_rows(), repo.total_rows());
  std::filesystem::remove(path);

  EXPECT_EQ(LoadSnapshotFile("/nonexistent/snap.bin", &error), nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace bismark::collect
