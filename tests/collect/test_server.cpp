#include <gtest/gtest.h>

#include "collect/server.h"

namespace bismark::collect {
namespace {

const TimePoint t0 = MakeTime({2012, 10, 1});

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : repo_(DatasetWindows::Compressed(t0, 8)) {}
  DataRepository repo_;
};

TEST_F(ServerTest, LosslessIngestMapsIntervalsToRuns) {
  CollectionServer server(repo_, HeartbeatPathConfig{Minutes(1), 0.0, Minutes(10)});
  IntervalSet online;
  online.add(t0, t0 + Days(1));
  online.add(t0 + Days(2), t0 + Days(3));
  server.ingest_heartbeats(HomeId{1}, online, Rng(1));
  ASSERT_EQ(repo_.heartbeat_runs().size(), 2u);
  EXPECT_GT(server.heartbeats_received(), 2800u);  // ~2 days of minutes
  EXPECT_EQ(server.heartbeats_lost(), 0u);
}

TEST_F(ServerTest, RunsAlignToHeartbeatTicks) {
  CollectionServer server(repo_, HeartbeatPathConfig{Minutes(1), 0.0, Minutes(10)});
  IntervalSet online;
  online.add(t0 + Seconds(30), t0 + Minutes(10));  // starts mid-minute
  server.ingest_heartbeats(HomeId{1}, online, Rng(1));
  ASSERT_EQ(repo_.heartbeat_runs().size(), 1u);
  // First heartbeat at the next minute boundary.
  EXPECT_EQ(repo_.heartbeat_runs()[0].start, t0 + Minutes(1));
}

TEST_F(ServerTest, TooShortIntervalYieldsNoRun) {
  CollectionServer server(repo_, HeartbeatPathConfig{Minutes(1), 0.0, Minutes(10)});
  IntervalSet online;
  online.add(t0 + Seconds(10), t0 + Seconds(50));  // no tick inside
  server.ingest_heartbeats(HomeId{1}, online, Rng(1));
  EXPECT_TRUE(repo_.heartbeat_runs().empty());
}

TEST_F(ServerTest, ExactSimulationWithZeroLossMatchesFast) {
  CollectionServer fast(repo_, HeartbeatPathConfig{Minutes(1), 0.0, Minutes(10)});
  IntervalSet online;
  online.add(t0, t0 + Days(2));
  fast.ingest_heartbeats(HomeId{1}, online, Rng(1), false);

  DataRepository repo2(DatasetWindows::Compressed(t0, 8));
  CollectionServer exact(repo2, HeartbeatPathConfig{Minutes(1), 0.0, Minutes(10)});
  exact.ingest_heartbeats(HomeId{1}, online, Rng(1), true);

  ASSERT_EQ(repo_.heartbeat_runs().size(), 1u);
  ASSERT_EQ(repo2.heartbeat_runs().size(), 1u);
  EXPECT_EQ(repo_.heartbeat_runs()[0].start, repo2.heartbeat_runs()[0].start);
  // The exact path's run ends one period after the last received beat.
  EXPECT_NEAR(static_cast<double>(repo_.heartbeat_runs()[0].end.ms),
              static_cast<double>(repo2.heartbeat_runs()[0].end.ms), 60001.0);
}

TEST_F(ServerTest, ModerateLossDoesNotSplitRuns) {
  // At 5 % loss, a >= 10-minute all-lost gap is p^10 ~ 1e-13: runs survive.
  CollectionServer server(repo_, HeartbeatPathConfig{Minutes(1), 0.05, Minutes(10)});
  IntervalSet online;
  online.add(t0, t0 + Days(7));
  server.ingest_heartbeats(HomeId{1}, online, Rng(2), true);
  EXPECT_EQ(repo_.heartbeat_runs().size(), 1u);
  EXPECT_GT(server.heartbeats_lost(), 300u);  // ~5 % of 10k
}

TEST_F(ServerTest, ExtremeLossCreatesFalseDowntime) {
  // The ablation case: heartbeat loss masquerading as downtime.
  CollectionServer server(repo_, HeartbeatPathConfig{Minutes(1), 0.55, Minutes(10)});
  IntervalSet online;
  online.add(t0, t0 + Days(14));
  server.ingest_heartbeats(HomeId{1}, online, Rng(3), true);
  EXPECT_GT(repo_.heartbeat_runs().size(), 1u);
}

TEST_F(ServerTest, FastPathAccountsExpectedLoss) {
  CollectionServer server(repo_, HeartbeatPathConfig{Minutes(1), 0.10, Minutes(10)});
  IntervalSet online;
  online.add(t0, t0 + Days(1));
  server.ingest_heartbeats(HomeId{1}, online, Rng(4), false);
  const double loss_rate = static_cast<double>(server.heartbeats_lost()) /
                           (server.heartbeats_lost() + server.heartbeats_received());
  EXPECT_NEAR(loss_rate, 0.10, 0.01);
}

}  // namespace
}  // namespace bismark::collect
