#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "analysis/downtime.h"
#include "collect/export.h"
#include "collect/import.h"
#include "home/deployment.h"

namespace bismark::collect {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  const auto f = ParseCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(ParseCsvLineTest, QuotedFieldsAndEscapes) {
  const auto f = ParseCsvLine("\"has,comma\",plain,\"has\"\"quote\"");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "has,comma");
  EXPECT_EQ(f[1], "plain");
  EXPECT_EQ(f[2], "has\"quote");
}

TEST(ParseCsvLineTest, EmptyFields) {
  const auto f = ParseCsvLine(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& field : f) EXPECT_TRUE(field.empty());
}

TEST(ParseCsvLineTest, QuotedFieldWithEmbeddedNewline) {
  // ReadCsvRecord joins the physical lines; the parser then sees one
  // logical record with a literal newline inside the quoted field.
  const auto f = ParseCsvLine("a,\"two\nlines\",c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "two\nlines");
}

TEST(ParseCsvLineTest, AdjacentQuotedAndBareText) {
  const auto f = ParseCsvLine("\"a\"b,\"\",x\"y\"");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "ab");  // RFC 4180 doesn't allow this; we concatenate
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "xy");
}

TEST(ParseCsvLineTest, OnlyDoubledQuotesInsideQuotes) {
  const auto f = ParseCsvLine("\"\"\"quoted\"\"\"");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "\"quoted\"");
}

TEST(ReadCsvRecordTest, StripsTrailingCarriageReturn) {
  std::istringstream in("a,b\r\nc,d\r\n");
  std::string record;
  ASSERT_TRUE(ReadCsvRecord(in, record));
  EXPECT_EQ(record, "a,b");
  ASSERT_TRUE(ReadCsvRecord(in, record));
  EXPECT_EQ(record, "c,d");
  EXPECT_FALSE(ReadCsvRecord(in, record));
}

TEST(ReadCsvRecordTest, JoinsQuotedMultiLineFields) {
  // One logical record spanning three physical lines; CRLF inside the
  // quoted field is normalised to LF (we strip the CR per physical line).
  std::istringstream in("a,\"first\r\nsecond\nthird\",z\nnext,row\n");
  std::string record;
  ASSERT_TRUE(ReadCsvRecord(in, record));
  EXPECT_EQ(record, "a,\"first\nsecond\nthird\",z");
  const auto f = ParseCsvLine(record);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "first\nsecond\nthird");
  ASSERT_TRUE(ReadCsvRecord(in, record));
  EXPECT_EQ(record, "next,row");
}

TEST(ReadCsvRecordTest, UnterminatedQuoteConsumesToEof) {
  std::istringstream in("a,\"open\nstill open");
  std::string record;
  ASSERT_TRUE(ReadCsvRecord(in, record));
  EXPECT_EQ(record, "a,\"open\nstill open");
  EXPECT_FALSE(ReadCsvRecord(in, record));
}

TEST(ReadCsvRecordTest, CrlfReleaseFileImportsCleanly) {
  // A release CSV saved with Windows line endings must import unchanged.
  std::string csv = "home,reported_ms,uptime_s\r\n1,1000,3600.000\r\n2,2000,7200.000\r\n";
  std::istringstream in(csv);
  ImportReport report;
  DataRepository repo(DatasetWindows{
      {}, {TimePoint{0}, TimePoint{1000000}}, {}, {}, {}, {}});
  ImportUptime(repo, in, report);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.uptime(), 2u);
  ASSERT_EQ(repo.uptime().size(), 2u);
  EXPECT_EQ(repo.uptime()[1].uptime, Seconds(7200));
}

class ImportTest : public ::testing::Test {
 protected:
  ImportTest() : source_(DatasetWindows::Paper()), target_(DatasetWindows::Paper()) {
    const auto& w = source_.windows();
    // Populate the source with a couple of rows in each public data set.
    source_.add_heartbeat_run(
        {HomeId{1}, w.heartbeats.start, w.heartbeats.start + Days(3)});
    source_.add_heartbeat_run(
        {HomeId{1}, w.heartbeats.start + Days(3) + Hours(2), w.heartbeats.end});
    source_.add_heartbeat_run({HomeId{2}, w.heartbeats.start, w.heartbeats.end});
    source_.add_uptime({HomeId{1}, w.uptime.start + Hours(12), Hours(100)});
    source_.add_capacity({HomeId{1}, w.capacity.start + Hours(1), Mbps(20.5), Mbps(4.25)});
    DeviceCountRecord dc;
    dc.home = HomeId{2};
    dc.sampled = w.devices.start + Hours(3);
    dc.wired = 1;
    dc.wireless_24 = 4;
    dc.wireless_5 = 2;
    dc.unique_total = 9;
    dc.unique_24 = 6;
    dc.unique_5 = 3;
    source_.add_device_count(dc);
    WifiScanRecord scan;
    scan.home = HomeId{2};
    scan.scanned = w.wifi.start + Hours(1);
    scan.band = wireless::Band::k5GHz;
    scan.channel = 36;
    scan.visible_aps = 3;
    scan.associated_clients = 1;
    source_.add_wifi_scan(scan);
  }

  DataRepository source_;
  DataRepository target_;
};

TEST_F(ImportTest, RoundTripThroughStreams) {
  ImportReport report;
  {
    std::stringstream s;
    ExportHeartbeats(source_, s);
    ImportHeartbeats(target_, s, report);
  }
  {
    std::stringstream s;
    ExportUptime(source_, s);
    ImportUptime(target_, s, report);
  }
  {
    std::stringstream s;
    ExportCapacity(source_, s);
    ImportCapacity(target_, s, report);
  }
  {
    std::stringstream s;
    ExportDevices(source_, s);
    ImportDevices(target_, s, report);
  }
  {
    std::stringstream s;
    ExportWifi(source_, s);
    ImportWifi(target_, s, report);
  }
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.heartbeat_runs(), 3u);

  // Heartbeat runs identical.
  ASSERT_EQ(target_.heartbeat_runs().size(), source_.heartbeat_runs().size());
  for (std::size_t i = 0; i < source_.heartbeat_runs().size(); ++i) {
    EXPECT_EQ(target_.heartbeat_runs()[i].start, source_.heartbeat_runs()[i].start);
    EXPECT_EQ(target_.heartbeat_runs()[i].end, source_.heartbeat_runs()[i].end);
  }
  // Capacity round-trips to CSV precision (3 decimals of Mbps).
  ASSERT_EQ(target_.capacity().size(), 1u);
  EXPECT_NEAR(target_.capacity()[0].downstream.mbps(), 20.5, 1e-3);
  EXPECT_NEAR(target_.capacity()[0].upstream.mbps(), 4.25, 1e-3);
  // Device census fields all survive.
  ASSERT_EQ(target_.device_counts().size(), 1u);
  EXPECT_EQ(target_.device_counts()[0].unique_total, 9);
  EXPECT_EQ(target_.device_counts()[0].unique_5, 3);
  // WiFi band decoded.
  ASSERT_EQ(target_.wifi_scans().size(), 1u);
  EXPECT_EQ(target_.wifi_scans()[0].band, wireless::Band::k5GHz);
}

TEST_F(ImportTest, AnalysisIdenticalOnImportedData) {
  // The point of the release: downstream analysis must not care whether it
  // runs on live or re-imported data.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bismark_import_roundtrip").string();
  std::filesystem::remove_all(dir);
  ExportPublicDatasets(source_, dir);

  // Consumers must register home metadata themselves (not in the release).
  for (int id : {1, 2}) {
    HomeInfo info;
    info.id = HomeId{id};
    info.country_code = "US";
    info.developed = true;
    target_.register_home(info);
    // Mirror registration into the source for a like-for-like comparison.
  }
  DataRepository source_with_homes(DatasetWindows::Paper());
  for (const auto& run : source_.heartbeat_runs()) source_with_homes.add_heartbeat_run(run);
  for (int id : {1, 2}) {
    HomeInfo info;
    info.id = HomeId{id};
    info.country_code = "US";
    info.developed = true;
    source_with_homes.register_home(info);
  }

  const auto report = ImportPublicDatasets(target_, dir);
  EXPECT_TRUE(report.ok());

  const auto original = analysis::AnalyzeAvailability(source_with_homes, {Minutes(10), 1.0});
  const auto imported = analysis::AnalyzeAvailability(target_, {Minutes(10), 1.0});
  ASSERT_EQ(original.size(), imported.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].downtimes, imported[i].downtimes);
    EXPECT_DOUBLE_EQ(original[i].online_days, imported[i].online_days);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ImportTest, MissingDirectoryReportsErrors) {
  const auto report = ImportPublicDatasets(target_, "/nonexistent/bismark-release");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.total_rows(), 0u);
  EXPECT_EQ(report.errors.size(), 5u);  // one per file
}

TEST_F(ImportTest, MalformedRowsSkippedAndReported) {
  std::stringstream s;
  s << "home,run_start_ms,run_end_ms,heartbeats\n";
  s << "1,1000,2000,1\n";          // but end-start is 1000ms => fine
  s << "2,not-a-number,2000,1\n";  // malformed
  s << "3,5000,4000,1\n";          // end <= start
  ImportReport report;
  DataRepository repo(DatasetWindows{
      {TimePoint{0}, TimePoint{1000000}}, {}, {}, {}, {}, {}});
  ImportHeartbeats(repo, s, report);
  EXPECT_EQ(report.heartbeat_runs(), 1u);
  EXPECT_EQ(report.errors.size(), 2u);
}

TEST_F(ImportTest, WrongHeaderRejected) {
  std::stringstream s;
  s << "totally,wrong,header\n1,2,3\n";
  ImportReport report;
  ImportUptime(target_, s, report);
  EXPECT_EQ(report.uptime(), 0u);
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors[0].find("unexpected header"), std::string::npos);
}


TEST(ImportDeploymentScaleTest, FullStudyReleaseRoundTrips) {
  // Export a whole (compressed) study's public data sets and re-import:
  // the availability analysis must be bit-identical, which is the contract
  // the paper's public release implicitly makes with external researchers.
  home::DeploymentOptions options;
  options.seed = 31337;
  options.windows = DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 4);
  options.run_traffic = false;
  const auto study = home::Deployment::RunStudy(options);
  const auto& source = study->repository();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bismark_fullstudy_roundtrip").string();
  std::filesystem::remove_all(dir);
  ExportPublicDatasets(source, dir);

  DataRepository imported(options.windows);
  for (const auto& info : source.homes()) imported.register_home(info);
  const auto report = ImportPublicDatasets(imported, dir);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.heartbeat_runs(), source.heartbeat_runs().size());
  EXPECT_EQ(report.device_counts(), source.device_counts().size());
  EXPECT_EQ(report.wifi_scans(), source.wifi_scans().size());

  const auto original = analysis::AnalyzeAvailability(source, {Minutes(10), 10.0});
  const auto roundtrip = analysis::AnalyzeAvailability(imported, {Minutes(10), 10.0});
  ASSERT_EQ(original.size(), roundtrip.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].home, roundtrip[i].home);
    EXPECT_EQ(original[i].downtimes, roundtrip[i].downtimes);
    EXPECT_DOUBLE_EQ(original[i].online_days, roundtrip[i].online_days);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bismark::collect
