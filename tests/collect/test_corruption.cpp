// Corruption property suite (DESIGN §12): random bit flips and truncations
// over segment files and binary snapshots must always be *detected* — reads
// fail closed with a diagnostic, never return silently wrong rows — and a
// quarantined spill directory must be usable again after recovery re-runs
// the dropped shards.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "collect/manifest.h"
#include "collect/repository.h"
#include "collect/snapshot.h"
#include "core/rng.h"

namespace bismark::collect {
namespace {

namespace fs = std::filesystem;

constexpr int kHomes = 8;
constexpr int kShardSize = 2;
constexpr int kShards = kHomes / kShardSize;

fs::path FreshDir(const char* tag) {
  const auto dir = fs::temp_directory_path() /
                   (std::string("bsmk-test-corrupt-") + tag + "-" +
                    std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

/// A few hundred rows across three kinds — enough that every segment file
/// holds several committed sections worth corrupting.
void EmitHome(RecordSink& sink, const DatasetWindows& w, int home_idx) {
  const HomeId home{home_idx};
  Rng rng(3000 + static_cast<std::uint64_t>(home_idx));
  for (int i = 0; i < 12; ++i) {
    CapacityRecord cap;
    cap.home = home;
    cap.measured = w.capacity.start + Hours(6 * i);
    cap.downstream = BitRate{rng.uniform(1e6, 1e8)};
    cap.upstream = BitRate{rng.uniform(1e5, 1e7)};
    sink.add_capacity(cap);
  }
  for (int i = 0; i < 25; ++i) {
    WifiScanRecord scan;
    scan.home = home;
    scan.scanned = w.wifi.start + Hours(i * 2);
    scan.band = i % 2 ? wireless::Band::k5GHz : wireless::Band::k2_4GHz;
    scan.channel = 1 + i % 11;
    scan.visible_aps = static_cast<int>(rng.uniform(0.0, 20.0));
    sink.add_wifi_scan(scan);
  }
  for (int i = 0; i < 40; ++i) {
    ThroughputMinute tm;
    tm.home = home;
    tm.minute_start = w.traffic.start + Minutes(i);
    tm.bytes_down = B(1000 * (i + home_idx));
    tm.peak_down_bps = rng.uniform(0.0, 1e7);
    sink.add_throughput_minute(tm);
  }
}

void RegisterHomes(DataRepository& repo) {
  for (int h = 0; h < kHomes; ++h) {
    HomeInfo info;
    info.id = HomeId{h};
    info.country_code = "US";
    info.reports_uptime = true;
    repo.register_home(info);
  }
}

void EmitShard(DataRepository& repo, const DatasetWindows& w, int shard) {
  IngestBatch batch = repo.make_batch();
  batch.attach_spill(repo.spill(), static_cast<std::uint32_t>(shard),
                     static_cast<std::size_t>(shard % 2));
  for (int h = shard * kShardSize; h < (shard + 1) * kShardSize; ++h) {
    EmitHome(batch, w, h);
  }
  repo.commit(std::move(batch));
}

SpillConfig TinyBudget(const fs::path& dir) {
  SpillConfig cfg;
  cfg.dir = dir.string();
  cfg.budget_bytes = 16 << 10;  // force several sections per shard
  cfg.workers = 2;
  return cfg;
}

std::unique_ptr<DataRepository> BuildSpilled(const DatasetWindows& w,
                                             const fs::path& dir) {
  auto repo = std::make_unique<DataRepository>(w);
  RegisterHomes(*repo);
  repo->enable_spill(TinyBudget(dir));
  for (int shard = 0; shard < kShards; ++shard) EmitShard(*repo, w, shard);
  repo->finalize_deterministic_order();
  return repo;
}

/// Stream every kind the emitter produced; corrupt bytes must surface here.
void ReadEverything(const DataRepository& repo) {
  std::uint64_t rows = 0;
  repo.for_each_row<CapacityRecord>([&](const CapacityRecord&) { ++rows; });
  repo.for_each_row<WifiScanRecord>([&](const WifiScanRecord&) { ++rows; });
  repo.for_each_row<ThroughputMinute>([&](const ThroughputMinute&) { ++rows; });
  ASSERT_GT(rows, 0u);
}

template <typename T>
void ExpectSameRows(const DataRepository& got_repo, const DataRepository& want_repo) {
  std::vector<T> got;
  got_repo.for_each_row<T>([&](const T& row) { got.push_back(row); });
  EXPECT_EQ(got, want_repo.rows<T>()) << Schema<T>::kKindName;
}

std::string Slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void Dump(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CorruptionFuzz, SegmentBitFlipsAlwaysDetected) {
  const auto w = DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 2);
  const auto dir = FreshDir("segflip");
  const auto repo = BuildSpilled(w, dir);
  ASSERT_NO_FATAL_FAILURE(ReadEverything(*repo));  // clean baseline

  const fs::path seg = dir / "seg-g0-w0.bsmkseg";
  const std::string clean = Slurp(seg);
  ASSERT_GT(clean.size(), 1000u);

  Rng rng(20131023);
  int detected = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const auto byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(clean.size()) - 1));
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    std::string bent = clean;
    bent[byte] = static_cast<char>(bent[byte] ^ (1 << bit));
    Dump(seg, bent);
    try {
      ReadEverything(*repo);
      ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                    << " read back silently";
    } catch (const std::runtime_error& e) {
      ++detected;
      EXPECT_NE(std::string(e.what()).find("spill: corrupt"), std::string::npos)
          << e.what();
    }
  }
  EXPECT_EQ(detected, 24);

  // Restoring the clean bytes restores the read path (no sticky state).
  Dump(seg, clean);
  ASSERT_NO_FATAL_FAILURE(ReadEverything(*repo));
  fs::remove_all(dir);
}

TEST(CorruptionFuzz, SegmentTruncationAlwaysDetected) {
  const auto w = DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 2);
  const auto dir = FreshDir("segtrunc");
  const auto repo = BuildSpilled(w, dir);

  const fs::path seg = dir / "seg-g0-w1.bsmkseg";
  const std::string clean = Slurp(seg);
  ASSERT_GT(clean.size(), 1000u);

  Rng rng(42);
  for (int trial = 0; trial < 12; ++trial) {
    const auto keep = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(clean.size()) - 1));
    Dump(seg, clean.substr(0, keep));
    EXPECT_THROW(ReadEverything(*repo), std::runtime_error)
        << "truncation to " << keep << " bytes read back silently";
  }
  Dump(seg, clean);
  ASSERT_NO_FATAL_FAILURE(ReadEverything(*repo));
  fs::remove_all(dir);
}

TEST(CorruptionFuzz, SnapshotBitFlipsAlwaysRejected) {
  const auto w = DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 2);
  DataRepository repo(w);
  RegisterHomes(repo);
  {
    IngestBatch batch = repo.make_batch();
    for (int h = 0; h < kHomes; ++h) EmitHome(batch, w, h);
    repo.commit(std::move(batch));
  }
  repo.finalize_deterministic_order();

  std::stringstream buf;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(repo, buf, &error)) << error;
  const std::string clean = buf.str();

  Rng rng(7);
  for (int trial = 0; trial < 48; ++trial) {
    const auto byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(clean.size()) - 1));
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    std::string bent = clean;
    bent[byte] = static_cast<char>(bent[byte] ^ (1 << bit));
    std::stringstream in(bent);
    std::string why;
    EXPECT_EQ(LoadSnapshot(in, &why), nullptr)
        << "flip at byte " << byte << " bit " << bit << " loaded silently";
    EXPECT_FALSE(why.empty());
  }

  // Truncation sweep: every proper prefix must be rejected too.
  std::set<std::size_t> cuts = {0, 1, 7, 8, 11, 12, 15, clean.size() / 2,
                                clean.size() - 5, clean.size() - 4,
                                clean.size() - 1};
  for (int trial = 0; trial < 16; ++trial) {
    cuts.insert(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(clean.size()) - 1)));
  }
  for (const std::size_t cut : cuts) {
    std::stringstream in(clean.substr(0, cut));
    std::string why;
    EXPECT_EQ(LoadSnapshot(in, &why), nullptr) << "prefix of " << cut << " bytes";
  }

  std::stringstream ok(clean);
  EXPECT_NE(LoadSnapshot(ok, &error), nullptr) << error;
}

TEST(CorruptionFuzz, RecoveredDirectoryIsUsableAfterQuarantine) {
  const auto w = DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 2);

  // Reference rows from the all-in-RAM path.
  DataRepository ram(w);
  RegisterHomes(ram);
  for (int shard = 0; shard < kShards; ++shard) {
    IngestBatch batch = ram.make_batch();
    for (int h = shard * kShardSize; h < (shard + 1) * kShardSize; ++h) {
      EmitHome(batch, w, h);
    }
    ram.commit(std::move(batch));
  }
  ram.finalize_deterministic_order();

  // A spilled run with full WAL bookkeeping, then one flipped section byte.
  const auto dir = FreshDir("recover");
  SectionRef victim;
  {
    DataRepository repo(w);
    RegisterHomes(repo);
    repo.enable_spill(TinyBudget(dir));
    ManifestConfig mcfg;
    mcfg.schema_fingerprint = SchemaFingerprint();
    mcfg.shard_count = kShards;
    mcfg.options_blob = "corruption-suite";
    repo.spill()->write_run_config(mcfg);
    for (int shard = 0; shard < kShards; ++shard) {
      EmitShard(repo, w, shard);
      std::vector<HomeInfo> homes;
      for (int h = shard * kShardSize; h < (shard + 1) * kShardSize; ++h) {
        HomeInfo info;
        info.id = HomeId{h};
        info.country_code = "US";
        info.reports_uptime = true;
        homes.push_back(info);
      }
      repo.spill()->record_shard_done(static_cast<std::uint32_t>(shard), homes);
    }
    repo.spill()->flush_all();
    bool found = false;
    for (std::size_t kind = 0; kind < kRecordKinds && !found; ++kind) {
      for (const SectionRef& ref : repo.spill()->sections_of_kind(kind)) {
        if (ref.file == 0) {  // lives in seg-g0-w0.bsmkseg
          victim = ref;
          found = true;
          break;
        }
      }
    }
    ASSERT_TRUE(found);
  }
  {
    std::fstream f(dir / "seg-g0-w0.bsmkseg",
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(victim.offset));
    const char orig = static_cast<char>(f.get());
    f.seekp(static_cast<std::streamoff>(victim.offset));
    f.put(static_cast<char>(orig ^ 0x04));
  }

  // Recovery quarantines the victim's shard; re-running just that shard
  // through a resumed SpillDir must reproduce the reference rows exactly.
  SpillRecovery rec;
  std::string error;
  ASSERT_TRUE(RecoverSpillDir(dir.string(), &rec, &error)) << error;
  EXPECT_GE(rec.sections_quarantined, 1u);
  ASSERT_EQ(rec.shards_dropped, 1u);
  ASSERT_EQ(rec.done_shards.size(), static_cast<std::size_t>(kShards - 1));

  DataRepository resumed(w);
  resumed.enable_spill_recovered(TinyBudget(dir), rec);  // registers recovered homes
  std::set<std::uint32_t> done(rec.done_shards.begin(), rec.done_shards.end());
  for (int shard = 0; shard < kShards; ++shard) {
    if (done.count(static_cast<std::uint32_t>(shard)) != 0) continue;
    EmitShard(resumed, w, shard);
    for (int h = shard * kShardSize; h < (shard + 1) * kShardSize; ++h) {
      HomeInfo info;
      info.id = HomeId{h};
      info.country_code = "US";
      info.reports_uptime = true;
      resumed.register_home(info);
    }
  }
  resumed.finalize_deterministic_order();
  EXPECT_EQ(resumed.homes().size(), static_cast<std::size_t>(kHomes));

  ExpectSameRows<CapacityRecord>(resumed, ram);
  ExpectSameRows<WifiScanRecord>(resumed, ram);
  ExpectSameRows<ThroughputMinute>(resumed, ram);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace bismark::collect
