// Write-ahead manifest recovery: replay, torn-tail truncation, mid-flight
// section handling, quarantine, and the cross-generation pairing rules.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "collect/manifest.h"
#include "collect/spill.h"

namespace bismark::collect {
namespace {

namespace fs = std::filesystem;

HomeInfo TestHome(int id) {
  HomeInfo info;
  info.id = HomeId{id};
  info.country_code = "US";
  info.reports_uptime = true;
  return info;
}

SpillConfig TestConfig(const std::string& dir) {
  SpillConfig cfg;
  cfg.dir = dir;
  cfg.budget_bytes = 1 << 20;
  cfg.workers = 2;
  return cfg;
}

ManifestConfig TestRunConfig(std::uint32_t generation, std::uint32_t shards) {
  ManifestConfig cfg;
  cfg.schema_fingerprint = SchemaFingerprint();
  cfg.budget_bytes = 1 << 20;
  cfg.workers = 2;
  cfg.generation = generation;
  cfg.shard_count = shards;
  cfg.options_blob = "opaque-options";
  return cfg;
}

class ManifestRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: ctest runs suite cases as concurrent processes.
    dir_ = (fs::temp_directory_path() /
            ("bismark_manifest_test-" + std::to_string(::getpid()))).string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Append a committed section for `shard` through the real write path.
  static SectionRef Commit(SpillDir& spill, std::uint32_t shard, std::uint32_t run,
                           const std::string& body) {
    SegmentLog& log = spill.log_for_worker(0);
    const SectionRef ref = log.append(/*kind=*/0, shard, run, /*rows=*/3, body);
    spill.register_section(0, ref);
    return ref;
  }

  std::string dir_;
};

TEST_F(ManifestRecoveryTest, MissingManifestIsAnEmptyDirectory) {
  fs::create_directories(dir_);
  SpillRecovery rec;
  std::string error;
  ASSERT_TRUE(RecoverSpillDir(dir_, &rec, &error)) << error;
  EXPECT_FALSE(rec.has_config);
  ASSERT_FALSE(rec.diagnostics.empty());
  EXPECT_NE(rec.diagnostics[0].find("no manifest found"), std::string::npos);
}

TEST_F(ManifestRecoveryTest, CleanRunRoundTrips) {
  {
    SpillDir spill(TestConfig(dir_));
    spill.write_run_config(TestRunConfig(0, 4));
    Commit(spill, /*shard=*/1, /*run=*/0, "section-body-bytes");
    Commit(spill, /*shard=*/1, /*run=*/1, "more-bytes");
    spill.record_shard_done(1, {TestHome(10), TestHome(11)});
    ManifestCheckpoint ckpt;
    ckpt.sim_clock_ms = 123456;
    ckpt.shards_done = 1;
    ckpt.sketch_blob = "sketchy";
    spill.write_checkpoint(ckpt);
  }
  SpillRecovery rec;
  std::string error;
  ASSERT_TRUE(RecoverSpillDir(dir_, &rec, &error)) << error;
  ASSERT_TRUE(rec.has_config);
  EXPECT_EQ(rec.config.generation, 0u);
  EXPECT_EQ(rec.config.shard_count, 4u);
  EXPECT_EQ(rec.config.options_blob, "opaque-options");
  ASSERT_TRUE(rec.has_checkpoint);
  EXPECT_EQ(rec.checkpoint.sim_clock_ms, 123456);
  EXPECT_EQ(rec.checkpoint.sketch_blob, "sketchy");
  EXPECT_EQ(rec.done_shards, (std::vector<std::uint32_t>{1}));
  ASSERT_EQ(rec.homes.size(), 2u);
  EXPECT_EQ(rec.homes[0].id.value, 10);
  EXPECT_EQ(rec.sections_verified, 2u);
  EXPECT_EQ(rec.sections_quarantined, 0u);
  EXPECT_EQ(rec.sections[0].size(), 2u);
  EXPECT_EQ(rec.sections[0][0].bytes, std::string("section-body-bytes").size());

  // The cheap config-only read agrees.
  ManifestConfig cfg;
  ASSERT_TRUE(ReadManifestConfig(dir_, &cfg, &error)) << error;
  EXPECT_EQ(cfg.options_blob, "opaque-options");
}

TEST_F(ManifestRecoveryTest, TornManifestTailIsTruncated) {
  {
    SpillDir spill(TestConfig(dir_));
    spill.write_run_config(TestRunConfig(0, 2));
    Commit(spill, 0, 0, "committed");
    spill.record_shard_done(0, {TestHome(1)});
  }
  const std::string manifest = dir_ + "/manifest.bsmkman";
  const auto clean_size = fs::file_size(manifest);
  {
    // A crash mid-append: a length prefix promising more bytes than exist.
    std::ofstream out(manifest, std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 'p', 'a', 'r', 't'};
    out.write(torn, sizeof torn);
  }
  SpillRecovery rec;
  std::string error;
  ASSERT_TRUE(RecoverSpillDir(dir_, &rec, &error)) << error;
  EXPECT_EQ(rec.manifest_bytes_truncated, 8u);
  EXPECT_EQ(fs::file_size(manifest), clean_size);
  EXPECT_EQ(rec.done_shards, (std::vector<std::uint32_t>{0}));
  bool mentioned = false;
  for (const auto& d : rec.diagnostics) {
    mentioned |= d.find("torn manifest tail") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(ManifestRecoveryTest, GarbageManifestIsNotResumable) {
  fs::create_directories(dir_);
  {
    std::ofstream out(dir_ + "/manifest.bsmkman", std::ios::binary);
    out << "this is not a manifest at all";
  }
  SpillRecovery rec;
  std::string error;
  EXPECT_FALSE(RecoverSpillDir(dir_, &rec, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST_F(ManifestRecoveryTest, MidFlightSectionsAreDroppedAndTruncated) {
  SectionRef orphan;
  {
    SpillDir spill(TestConfig(dir_));
    spill.write_run_config(TestRunConfig(0, 2));
    Commit(spill, 0, 0, "kept-section");
    spill.record_shard_done(0, {TestHome(1)});
    // Shard 1 committed a section but crashed before its shard-done record.
    orphan = Commit(spill, 1, 0, "orphaned-section-bytes");
  }
  SpillRecovery rec;
  std::string error;
  ASSERT_TRUE(RecoverSpillDir(dir_, &rec, &error)) << error;
  EXPECT_EQ(rec.done_shards, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(rec.sections[0].size(), 1u);
  EXPECT_GT(rec.segment_bytes_truncated, 0u);
  // The orphan's bytes are gone from the segment file: the next generation
  // appends over them and a later recovery must not see stale frames.
  const std::string seg = dir_ + "/" + rec.files[orphan.file];
  EXPECT_LE(fs::file_size(seg), orphan.offset - kSectionHeaderBytes);
}

TEST_F(ManifestRecoveryTest, CorruptSectionQuarantinesOwningShard) {
  SectionRef victim;
  {
    SpillDir spill(TestConfig(dir_));
    spill.write_run_config(TestRunConfig(0, 3));
    victim = Commit(spill, 0, 0, "soon-to-be-flipped");
    spill.record_shard_done(0, {TestHome(1)});
    Commit(spill, 2, 0, "healthy-bytes");
    spill.record_shard_done(2, {TestHome(2)});
  }
  {
    std::fstream f(dir_ + "/seg-g0-w0.bsmkseg",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(victim.offset + 2));
    f.put('X');
  }
  SpillRecovery rec;
  std::string error;
  ASSERT_TRUE(RecoverSpillDir(dir_, &rec, &error)) << error;
  EXPECT_EQ(rec.sections_quarantined, 1u);
  EXPECT_EQ(rec.shards_dropped, 1u);
  EXPECT_EQ(rec.done_shards, (std::vector<std::uint32_t>{2}));
  ASSERT_EQ(rec.homes.size(), 1u);
  EXPECT_EQ(rec.homes[0].id.value, 2);
  bool mentioned = false;
  for (const auto& d : rec.diagnostics) {
    mentioned |= d.find("quarantined") != std::string::npos &&
                 d.find("shard 0 will re-run") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(ManifestRecoveryTest, ConflictingConfigRecordsAreAHardError) {
  {
    SpillDir spill(TestConfig(dir_));
    spill.write_run_config(TestRunConfig(0, 2));
  }
  {
    ManifestWriter w;
    w.open(dir_ + "/manifest.bsmkman", /*fresh=*/false);
    ManifestConfig drifted = TestRunConfig(1, 2);
    drifted.options_blob = "different-options";
    w.config(drifted);
    w.sync();
  }
  SpillRecovery rec;
  std::string error;
  EXPECT_FALSE(RecoverSpillDir(dir_, &rec, &error));
  EXPECT_NE(error.find("disagree"), std::string::npos) << error;
}

TEST_F(ManifestRecoveryTest, StaleGenerationSectionsAreNotPairedWithLaterDones) {
  // Regression: shard 1 commits sections in generation 0 but crashes before
  // its shard-done record. A resume (generation 1) re-runs shard 1 and
  // completes it. The gen-0 section records still sit in the manifest; a
  // second recovery must pair shard 1 only with its gen-1 sections — pairing
  // the stale gen-0 ones would duplicate (or, post-truncation, quarantine)
  // the shard.
  {
    SpillDir spill(TestConfig(dir_));
    spill.write_run_config(TestRunConfig(0, 2));
    Commit(spill, 0, 0, "gen0-shard0");
    spill.record_shard_done(0, {TestHome(1)});
    Commit(spill, 1, 0, "gen0-shard1-orphan");  // crash before shard-done
  }
  SpillRecovery first;
  std::string error;
  ASSERT_TRUE(RecoverSpillDir(dir_, &first, &error)) << error;
  ASSERT_EQ(first.done_shards, (std::vector<std::uint32_t>{0}));
  {
    SpillDir spill(TestConfig(dir_), first);
    EXPECT_EQ(spill.generation(), 1u);
    spill.write_run_config(TestRunConfig(1, 2));
    SegmentLog& log = spill.log_for_worker(0);
    const SectionRef ref = log.append(0, /*shard=*/1, /*run=*/0, 3, "gen1-shard1-redo");
    spill.register_section(0, ref);
    spill.record_shard_done(1, {TestHome(2)});
  }
  SpillRecovery second;
  ASSERT_TRUE(RecoverSpillDir(dir_, &second, &error)) << error;
  EXPECT_EQ(second.done_shards, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(second.sections_quarantined, 0u);
  EXPECT_EQ(second.shards_dropped, 0u);
  ASSERT_EQ(second.sections[0].size(), 2u);
  // Shard 1's surviving section is the generation-1 redo, not the orphan.
  for (const SectionRef& ref : second.sections[0]) {
    if (ref.shard == 1) {
      EXPECT_EQ(ref.bytes, std::string("gen1-shard1-redo").size());
    }
  }
}

TEST_F(ManifestRecoveryTest, SchemaDriftRefusesToResume) {
  {
    SpillDir spill(TestConfig(dir_));
    ManifestConfig cfg = TestRunConfig(0, 2);
    cfg.schema_fingerprint = cfg.schema_fingerprint ^ 0x1;  // drifted writer
    spill.write_run_config(cfg);
  }
  SpillRecovery rec;
  std::string error;
  EXPECT_FALSE(RecoverSpillDir(dir_, &rec, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

}  // namespace
}  // namespace bismark::collect
