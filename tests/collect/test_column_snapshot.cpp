// BSMKSNAP v3 columnar snapshots: exact round-trips (string edge cases
// included), kind-selective reads proven through the I/O seam, fail-closed
// behaviour under bit flips and truncation, and bit-identical parallel
// analysis at any worker count.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/fleet.h"
#include "collect/column_snapshot.h"
#include "collect/repository.h"
#include "core/io.h"
#include "core/rng.h"

namespace bismark::collect {
namespace {

namespace fs = std::filesystem;

DatasetWindows WideWindows() {
  const Interval all{TimePoint{0}, TimePoint{1'000'000'000}};
  return DatasetWindows{all, all, all, all, all, all};
}

/// Per-process scratch dir (ctest runs suite cases as concurrent processes)
/// plus the buffered-read override reset, so every case sees a clean seam.
class ColumnSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ForceBufferedReadsForTest(false);
    core::ResetIoReadStats();
    dir_ = fs::temp_directory_path() /
           ("bismark_colsnap_test-" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    core::ForceBufferedReadsForTest(false);
    fs::remove_all(dir_);
  }

  std::string snap_dir(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

/// At least one row in every data set, with string values that stress the
/// offsets+blob column codec: empty, embedded NUL, and multi-byte UTF-8.
void Populate(DataRepository& repo) {
  HomeInfo info;
  info.id = HomeId{7};
  info.country_code = "US";
  info.developed = true;
  info.utc_offset = Hours(-5);
  info.reports_uptime = true;
  info.consented_traffic = true;
  info.true_down_mbps = 19.75;
  repo.register_home(info);

  repo.add(HeartbeatRun{HomeId{7}, TimePoint{60000}, TimePoint{360000}});
  repo.add(UptimeRecord{HomeId{7}, TimePoint{120000}, Hours(13)});
  repo.add(CapacityRecord{HomeId{7}, TimePoint{180000}, Mbps(19.993), Mbps(4.111)});
  DeviceCountRecord dc;
  dc.home = HomeId{7};
  dc.sampled = TimePoint{240000};
  dc.wired = 2;
  dc.wireless_24 = 5;
  dc.unique_total = 11;
  repo.add(dc);
  WifiScanRecord scan;
  scan.home = HomeId{7};
  scan.scanned = TimePoint{300000};
  scan.band = wireless::Band::k5GHz;
  scan.channel = 36;
  scan.visible_aps = 4;
  repo.add(scan);
  const std::string kEdgeStrings[] = {
      "",                                  // empty value, non-empty neighbours
      std::string("a\0b", 3),              // embedded NUL survives the blob
      "caf\xc3\xa9.\xe4\xbe\x8b.jp",       // multi-byte UTF-8
      "plain.example.com",
  };
  for (int i = 0; i < 4; ++i) {
    TrafficFlowRecord flow;
    flow.home = HomeId{7};
    flow.flow = net::FlowId{0xdeadbeef00ull + static_cast<std::uint64_t>(i)};
    flow.first_packet = TimePoint{360000 + i};
    flow.last_packet = TimePoint{420000 + i};
    flow.protocol = net::Protocol::kUdp;
    flow.dst_port = 443;
    flow.device_mac = net::MacAddress({0x02, 0x11, 0x22, 0x33, 0x44, 0x55});
    flow.bytes_up = Bytes{1234};
    flow.bytes_down = Bytes{56789};
    flow.packets_up = 12;
    flow.packets_down = 48;
    flow.domain = kEdgeStrings[i];
    flow.domain_anonymized = (i == 1);
    repo.add(std::move(flow));
  }
  ThroughputMinute tm;
  tm.home = HomeId{7};
  tm.minute_start = TimePoint{480000};
  tm.bytes_down = Bytes{999};
  tm.peak_down_bps = 1.5e6;
  repo.add(tm);
  DnsLogRecord dns;
  dns.home = HomeId{7};
  dns.when = TimePoint{540000};
  dns.device_mac = net::MacAddress({0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee});
  dns.query = "netflix.com";
  dns.a_records = 2;
  repo.add(dns);
  DeviceTrafficRecord dt;
  dt.home = HomeId{7};
  dt.device_mac = net::MacAddress({0x02, 0x01, 0x02, 0x03, 0x04, 0x05});
  dt.vendor = net::VendorClass::kUnknown;
  dt.bytes_total = Bytes{777777};
  dt.flows = 42;
  repo.add(dt);
  repo.finalize_deterministic_order();
}

template <typename T>
std::vector<T> CollectRows(const DataRepository& repo) {
  std::vector<T> rows;
  repo.for_each_row<T>([&](const T& r) { rows.push_back(r); });
  return rows;
}

void ExpectSameRepo(const DataRepository& expected, const DataRepository& actual) {
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    EXPECT_EQ(CollectRows<T>(expected), CollectRows<T>(actual)) << Schema<T>::kKindName;
  });
  EXPECT_EQ(expected.total_rows(), actual.total_rows());
  ASSERT_EQ(expected.homes().size(), actual.homes().size());
  for (std::size_t i = 0; i < expected.homes().size(); ++i) {
    EXPECT_EQ(expected.homes()[i], actual.homes()[i]);
  }
}

TEST_F(ColumnSnapshotTest, RoundTripReproducesEveryDatasetExactly) {
  DataRepository repo(WideWindows());
  Populate(repo);
  const std::string dir = snap_dir("full");
  std::string error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, dir, &error)) << error;
  ASSERT_TRUE(IsColumnSnapshotDir(dir));

  const auto loaded = OpenColumnSnapshot(dir, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_TRUE(loaded->column_backed());
  ExpectSameRepo(repo, *loaded);
  EXPECT_EQ(loaded->windows().heartbeats.start, repo.windows().heartbeats.start);
  EXPECT_EQ(loaded->windows().traffic.end, repo.windows().traffic.end);
}

TEST_F(ColumnSnapshotTest, RoundTripThroughBufferedReadFallback) {
  // The heap fallback must expose byte-identical data to the mmap path.
  DataRepository repo(WideWindows());
  Populate(repo);
  const std::string dir = snap_dir("buffered");
  std::string error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, dir, &error)) << error;

  core::ForceBufferedReadsForTest(true);
  const auto loaded = OpenColumnSnapshot(dir, &error);
  ASSERT_NE(loaded, nullptr) << error;
  ExpectSameRepo(repo, *loaded);
}

TEST_F(ColumnSnapshotTest, EmptyRepositoryRoundTrips) {
  const DataRepository repo(WideWindows());
  const std::string dir = snap_dir("empty");
  std::string error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, dir, &error)) << error;

  // No rows -> no kind files, just the meta.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().filename().string(), kColumnMetaFile);
    ++files;
  }
  EXPECT_EQ(files, 1u);

  const auto loaded = OpenColumnSnapshot(dir, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->total_rows(), 0u);
  EXPECT_TRUE(loaded->homes().empty());
}

TEST_F(ColumnSnapshotTest, ParallelWritersProduceIdenticalBytes) {
  DataRepository repo(WideWindows());
  Populate(repo);
  std::string error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, snap_dir("w1"), &error, 1)) << error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, snap_dir("w4"), &error, 4)) << error;

  const auto bytes_of = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  std::size_t compared = 0;
  for (const auto& e : fs::directory_iterator(snap_dir("w1"))) {
    const auto name = e.path().filename();
    EXPECT_EQ(bytes_of(e.path()), bytes_of(fs::path(snap_dir("w4")) / name)) << name;
    ++compared;
  }
  EXPECT_GT(compared, 1u);
}

TEST_F(ColumnSnapshotTest, AnalyzeReadsOnlyQueriedKindSegments) {
  // The product guarantee of DESIGN §14: a single-figure query maps only
  // its own kind files. Proven through the core::IoReadStats seam rather
  // than asserted from code structure.
  DataRepository repo(WideWindows());
  Populate(repo);
  const std::string dir = snap_dir("selective");
  std::string error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, dir, &error)) << error;

  const auto loaded = OpenColumnSnapshot(dir, &error);
  ASSERT_NE(loaded, nullptr) << error;

  core::ResetIoReadStats();
  double down = 0;
  loaded->for_each_row<CapacityRecord>(
      [&](const CapacityRecord& c) { down += c.downstream.mbps(); });
  EXPECT_GT(down, 0.0);

  const auto paths = core::IoReadPaths();
  ASSERT_EQ(paths.size(), 1u) << "capacity scan must map exactly one kind file";
  EXPECT_NE(paths[0].find("capacity"), std::string::npos) << paths[0];
  EXPECT_NE(paths[0].find(kColumnFileSuffix), std::string::npos) << paths[0];
  EXPECT_EQ(core::CurrentIoReadStats().files_opened, 1u);

  // A second scan of the same kind re-uses the mapping: no new opens.
  loaded->for_each_row<CapacityRecord>([&](const CapacityRecord&) {});
  EXPECT_EQ(core::CurrentIoReadStats().files_opened, 1u);
}

// --- fail closed: bit flips and truncation ----------------------------------

/// Streams every kind; the reader verifies a kind file's frames and CRCs on
/// first touch, so damage anywhere surfaces as std::runtime_error here.
bool StreamsCleanly(const std::string& dir, const DataRepository& expected) {
  std::string error;
  const auto loaded = OpenColumnSnapshot(dir, &error);
  if (loaded == nullptr) return false;
  bool same = true;
  try {
    ForEachRecordType([&](auto tag) {
      using T = typename decltype(tag)::type;
      if (CollectRows<T>(expected) != CollectRows<T>(*loaded)) same = false;
    });
  } catch (const std::runtime_error&) {
    return false;
  }
  return same;
}

TEST_F(ColumnSnapshotTest, BitFlipsInColumnFileFailClosedOrDecodeIdentically) {
  DataRepository repo(WideWindows());
  Populate(repo);
  const std::string dir = snap_dir("fuzz");
  std::string error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, dir, &error)) << error;

  const fs::path victim = fs::path(dir) / "traffic_flow.bsmkcol";
  ASSERT_TRUE(fs::exists(victim)) << "expected a flow kind file";
  std::string pristine;
  {
    std::ifstream in(victim, std::ios::binary);
    pristine.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(pristine.size(), kColumnFileHeaderBytes);

  std::size_t rejected = 0, total = 0;
  for (std::size_t pos = 0; pos < pristine.size(); pos += 7) {
    std::string bent = pristine;
    bent[pos] = static_cast<char>(bent[pos] ^ 0x20);
    {
      std::ofstream out(victim, std::ios::binary | std::ios::trunc);
      out.write(bent.data(), static_cast<std::streamsize>(bent.size()));
    }
    ++total;
    if (!StreamsCleanly(dir, repo)) ++rejected;
    // Flips landing in inter-section zero padding are outside every CRC and
    // may legitimately decode identically; anything else must be caught.
  }
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(pristine.data(), static_cast<std::streamsize>(pristine.size()));
  }
  EXPECT_TRUE(StreamsCleanly(dir, repo)) << "restored file must verify again";
  EXPECT_GT(total, 20u);
  EXPECT_GE(rejected * 10, total * 9)
      << "expected >=90% of bit flips rejected (" << rejected << "/" << total << ")";
}

TEST_F(ColumnSnapshotTest, TruncatedColumnFileFailsClosed) {
  DataRepository repo(WideWindows());
  Populate(repo);
  const std::string dir = snap_dir("trunc");
  std::string error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, dir, &error)) << error;

  const fs::path victim = fs::path(dir) / "uptime.bsmkcol";
  ASSERT_TRUE(fs::exists(victim));
  const auto full = fs::file_size(victim);
  for (const std::uintmax_t keep :
       {std::uintmax_t{0}, std::uintmax_t{7}, full / 2, full - 1}) {
    fs::resize_file(victim, keep);
    EXPECT_FALSE(StreamsCleanly(dir, repo)) << "kept " << keep << " of " << full;
  }
}

TEST_F(ColumnSnapshotTest, DamagedMetaFailsClosed) {
  DataRepository repo(WideWindows());
  Populate(repo);
  const std::string dir = snap_dir("metafuzz");
  std::string error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, dir, &error)) << error;

  const fs::path meta = fs::path(dir) / kColumnMetaFile;
  std::string pristine;
  {
    std::ifstream in(meta, std::ios::binary);
    pristine.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{4}, pristine.size() / 2, pristine.size() - 2}) {
    std::string bent = pristine;
    bent[pos] = static_cast<char>(bent[pos] ^ 0x01);
    std::ofstream(meta, std::ios::binary | std::ios::trunc)
        .write(bent.data(), static_cast<std::streamsize>(bent.size()));
    EXPECT_EQ(OpenColumnSnapshot(dir, &error), nullptr) << "flip at " << pos;
  }
  // Truncated meta: the directory no longer parses; fail closed, not crash.
  std::ofstream(meta, std::ios::binary | std::ios::trunc)
      .write(pristine.data(), static_cast<std::streamsize>(pristine.size() / 3));
  EXPECT_EQ(OpenColumnSnapshot(dir, &error), nullptr);
  // A directory without the meta file is simply not a snapshot dir.
  fs::remove(meta);
  EXPECT_FALSE(IsColumnSnapshotDir(dir));
}

// --- parallel analysis determinism ------------------------------------------

TEST_F(ColumnSnapshotTest, ParallelAnalyzeIsBitIdenticalAcrossWorkerCounts) {
  // Enough capacity rows to span multiple stripes would need 64Ki+ rows;
  // what matters here is that the per-(kind,stripe) partials merge in
  // stripe order regardless of which worker ran them, so worker counts
  // 1/2/4 must serialize to byte-identical summaries.
  DataRepository repo(WideWindows());
  Rng rng(20131023);
  static const char* kCountries[] = {"US", "BR", "IN"};
  for (int h = 0; h < 30; ++h) {
    HomeInfo info;
    info.id = HomeId{h};
    info.country_code = kCountries[h % 3];
    info.reports_uptime = true;
    info.reports_devices = true;
    repo.register_home(info);
    repo.add(HeartbeatRun{HomeId{h}, TimePoint{0}, TimePoint{0} + Days(30)});
    for (int i = 0; i < 40; ++i) {
      repo.add(CapacityRecord{HomeId{h}, TimePoint{1000 * i},
                              Mbps(rng.lognormal(2.5, 0.8)), Mbps(rng.lognormal(1.0, 0.7))});
      WifiScanRecord scan;
      scan.home = HomeId{h};
      scan.scanned = TimePoint{2000 * i};
      scan.visible_aps = static_cast<int>(rng.uniform_int(0, 20));
      repo.add(scan);
    }
  }
  repo.finalize_deterministic_order();
  const std::string dir = snap_dir("det");
  std::string error;
  ASSERT_TRUE(SaveColumnSnapshot(repo, dir, &error)) << error;
  const auto loaded = OpenColumnSnapshot(dir, &error);
  ASSERT_NE(loaded, nullptr) << error;

  const std::string one =
      analysis::SerializeFleetSummary(analysis::SummarizeFleet(*loaded, 1));
  const std::string two =
      analysis::SerializeFleetSummary(analysis::SummarizeFleet(*loaded, 2));
  const std::string four =
      analysis::SerializeFleetSummary(analysis::SummarizeFleet(*loaded, 4));
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);

  analysis::FleetSummary summary;
  ASSERT_TRUE(analysis::DeserializeFleetSummary(one, &summary, &error)) << error;
  ASSERT_EQ(summary.capacity_by_country.size(), 3u);
  EXPECT_EQ(summary.capacity_by_country.at("US").homes, 10u);
  EXPECT_EQ(summary.capacity_by_country.at("BR").down_mbps.count(), 400u);
}

}  // namespace
}  // namespace bismark::collect
