// Spill round-trip: a repository routed through spill-to-disk segment
// files must reproduce the in-RAM canonical row order and export bytes
// exactly — including SortKey ties, multi-section merges from a tiny flush
// threshold, and commits arriving in arbitrary shard order.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collect/export.h"
#include "collect/repository.h"
#include "core/rng.h"

namespace bismark::collect {
namespace {

constexpr int kHomes = 24;
constexpr int kShardSize = 4;
constexpr int kShards = kHomes / kShardSize;

std::filesystem::path FreshSpillDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("bsmk-test-spill-") + tag + "-" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

/// Deterministic synthetic rows for one home, fed to whichever sink the
/// caller stages through. Includes same-timestamp ties within the home
/// (resolved by append order) and across homes (resolved by home id).
void EmitHome(RecordSink& sink, const DatasetWindows& w, int home_idx) {
  const HomeId home{home_idx};
  Rng rng(900 + static_cast<std::uint64_t>(home_idx));

  TimePoint t = w.heartbeats.start;
  for (int run = 0; run < 6; ++run) {
    const TimePoint end = t + Hours(4 + (home_idx + run) % 5);
    sink.add_heartbeat_run(HeartbeatRun{home, t, end});
    t = end + Hours(1 + run % 3);
  }
  for (int i = 0; i < 20; ++i) {
    CapacityRecord cap;
    cap.home = home;
    // Same timestamp for every home: a cross-home SortKey tie.
    cap.measured = w.capacity.start + Hours(6 * i);
    cap.downstream = BitRate{rng.uniform(1e6, 1e8)};
    cap.upstream = BitRate{rng.uniform(1e5, 1e7)};
    sink.add_capacity(cap);
  }
  for (int i = 0; i < 50; ++i) {
    DeviceCountRecord dev;
    dev.home = home;
    dev.sampled = w.devices.start + Hours(i * 5);
    dev.wired = home_idx % 3;
    dev.wireless_24 = i % 4;
    dev.unique_total = 2 + i / 10;
    sink.add_device_count(dev);
  }
  for (int i = 0; i < 40; ++i) {
    WifiScanRecord scan;
    scan.home = home;
    scan.scanned = w.wifi.start + Hours(i * 2);
    scan.band = i % 2 ? wireless::Band::k5GHz : wireless::Band::k2_4GHz;
    scan.channel = 1 + i % 11;
    scan.visible_aps = static_cast<int>(rng.uniform(0.0, 20.0));
    sink.add_wifi_scan(scan);
  }
  for (int i = 0; i < 30; ++i) {
    TrafficFlowRecord flow;
    flow.home = home;
    flow.flow = net::FlowId{static_cast<std::uint64_t>(home_idx) * 1000 + i};
    // Two flows per timestamp: a within-home tie, ordered by append.
    flow.first_packet = w.traffic.start + Hours(i / 2);
    flow.last_packet = flow.first_packet + Minutes(5);
    flow.dst_port = static_cast<std::uint16_t>(443 + i % 3);
    flow.device_mac = net::MacAddress::FromParts(0x001122, static_cast<std::uint32_t>(i));
    flow.bytes_up = B(static_cast<std::int64_t>(rng.uniform(1e3, 1e6)));
    flow.bytes_down = B(static_cast<std::int64_t>(rng.uniform(1e4, 1e7)));
    flow.domain = i % 4 ? "example.com" : "anon-deadbeef";
    flow.domain_anonymized = i % 4 == 0;
    sink.add_flow(flow);
  }
  for (int i = 0; i < 60; ++i) {
    ThroughputMinute tm;
    tm.home = home;
    tm.minute_start = w.traffic.start + Minutes(i);
    tm.bytes_down = B(1000 * (i + home_idx));
    tm.peak_down_bps = rng.uniform(0.0, 1e7);
    sink.add_throughput_minute(tm);
  }
  UptimeRecord up;
  up.home = home;
  up.reported = w.uptime.start + Hours(12 + home_idx % 7);
  up.uptime = Hours(100 + home_idx);
  sink.add_uptime(up);
}

void RegisterHomes(DataRepository& repo) {
  for (int h = 0; h < kHomes; ++h) {
    HomeInfo info;
    info.id = HomeId{h};
    info.country_code = "US";
    info.reports_uptime = true;
    info.reports_devices = true;
    repo.register_home(info);
  }
}

/// The reference: all rows staged in RAM, batches committed in shard order.
std::unique_ptr<DataRepository> BuildInRam(const DatasetWindows& w) {
  auto repo = std::make_unique<DataRepository>(w);
  RegisterHomes(*repo);
  for (int shard = 0; shard < kShards; ++shard) {
    IngestBatch batch = repo->make_batch();
    for (int h = shard * kShardSize; h < (shard + 1) * kShardSize; ++h) {
      EmitHome(batch, w, h);
    }
    repo->commit(std::move(batch));
  }
  repo->finalize_deterministic_order();
  return repo;
}

/// The spilled twin: a tiny budget forces many mid-shard flushes (so every
/// kind gets several sections per shard), and commits land in *reverse*
/// shard order to prove the merge re-derives the canonical order.
std::unique_ptr<DataRepository> BuildSpilled(const DatasetWindows& w,
                                             const std::filesystem::path& dir) {
  auto repo = std::make_unique<DataRepository>(w);
  RegisterHomes(*repo);
  SpillConfig cfg;
  cfg.dir = dir.string();
  cfg.budget_bytes = 16 << 10;  // threshold clamps to the 4 KiB floor
  cfg.workers = 2;
  repo->enable_spill(cfg);
  for (int shard = kShards - 1; shard >= 0; --shard) {
    IngestBatch batch = repo->make_batch();
    batch.attach_spill(repo->spill(), static_cast<std::uint32_t>(shard),
                       static_cast<std::size_t>(shard % 2));
    for (int h = shard * kShardSize; h < (shard + 1) * kShardSize; ++h) {
      EmitHome(batch, w, h);
    }
    repo->commit(std::move(batch));
  }
  repo->finalize_deterministic_order();
  return repo;
}

template <typename T>
void ExpectSameRows(const DataRepository& ram, const DataRepository& spilled) {
  std::vector<T> got;
  spilled.for_each_row<T>([&](const T& row) { got.push_back(row); });
  EXPECT_EQ(got, ram.rows<T>());
  EXPECT_EQ(spilled.row_count<T>(), ram.rows<T>().size());
}

TEST(SpillRoundTrip, CanonicalOrderMatchesInRam) {
  const auto w = DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 2);
  const auto dir = FreshSpillDir("order");
  const auto ram = BuildInRam(w);
  const auto spilled = BuildSpilled(w, dir);

  ASSERT_TRUE(spilled->spilling());
  ASSERT_FALSE(ram->spilling());
  // The tiny threshold must actually have fragmented the data.
  EXPECT_GT(spilled->spill()->sections_written(), static_cast<std::uint64_t>(kShards));

  ExpectSameRows<HeartbeatRun>(*ram, *spilled);
  ExpectSameRows<UptimeRecord>(*ram, *spilled);
  ExpectSameRows<CapacityRecord>(*ram, *spilled);
  ExpectSameRows<DeviceCountRecord>(*ram, *spilled);
  ExpectSameRows<WifiScanRecord>(*ram, *spilled);
  ExpectSameRows<TrafficFlowRecord>(*ram, *spilled);
  ExpectSameRows<ThroughputMinute>(*ram, *spilled);
  EXPECT_EQ(spilled->total_rows(), ram->total_rows());

  std::filesystem::remove_all(dir);
}

TEST(SpillRoundTrip, ExportBytesIdentical) {
  const auto w = DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 2);
  const auto dir = FreshSpillDir("export");
  const auto ram = BuildInRam(w);
  const auto spilled = BuildSpilled(w, dir);

  const auto export_all = [](const DataRepository& repo) {
    std::ostringstream out;
    ExportHeartbeats(repo, out);
    ExportUptime(repo, out);
    ExportCapacity(repo, out);
    ExportDevices(repo, out);
    ExportWifi(repo, out);
    ExportTrafficFlows(repo, out);
    return out.str();
  };
  const std::string a = export_all(*ram);
  const std::string b = export_all(*spilled);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  std::filesystem::remove_all(dir);
}

TEST(SpillRoundTrip, RepeatedStreamingReadsAreStable) {
  const auto w = DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 2);
  const auto dir = FreshSpillDir("reread");
  const auto spilled = BuildSpilled(w, dir);

  // for_each_row merges scratch sections lazily; a second pass must see
  // the identical sequence (reads are logically const).
  std::vector<WifiScanRecord> first, second;
  spilled->for_each_row<WifiScanRecord>([&](const WifiScanRecord& r) { first.push_back(r); });
  spilled->for_each_row<WifiScanRecord>([&](const WifiScanRecord& r) { second.push_back(r); });
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), spilled->row_count<WifiScanRecord>());

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bismark::collect
