// IdempotentIngest: at-least-once delivery + (home, seq) dedup must equal
// exactly-once repository contents — including when the same batch stream
// is replayed many times across shard staging buffers.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "collect/export.h"
#include "collect/repository.h"
#include "collect/upload.h"

namespace bismark {
namespace {

using collect::DataRepository;
using collect::DatasetWindows;
using collect::HomeId;
using collect::IdempotentIngest;
using collect::IngestBatch;
using collect::UploadBatch;

const TimePoint kStart = MakeTime({2013, 3, 1});

DatasetWindows Windows() { return DatasetWindows::Compressed(kStart, 2); }

/// A deterministic little batch stream: each home ships three batches of
/// uptime + capacity records with in-window timestamps.
std::vector<UploadBatch> MakeStream(const std::vector<int>& home_ids) {
  std::vector<UploadBatch> stream;
  const DatasetWindows w = Windows();
  for (int id : home_ids) {
    for (std::uint64_t seq = 0; seq < 3; ++seq) {
      UploadBatch batch;
      batch.home = HomeId{id};
      batch.seq = seq;
      for (int k = 0; k < 4; ++k) {
        const TimePoint t = w.uptime.start + Hours(6.0 * (static_cast<double>(seq) * 4 + k));
        batch.records.emplace_back(collect::UptimeRecord{HomeId{id}, t, Hours(1)});
        collect::CapacityRecord cap;
        cap.home = HomeId{id};
        cap.measured = w.capacity.start + Hours(6.0 * (static_cast<double>(seq) * 4 + k));
        batch.records.emplace_back(cap);
      }
      stream.push_back(std::move(batch));
    }
  }
  return stream;
}

std::string ExportBytes(const DataRepository& repo) {
  std::ostringstream out;
  collect::ExportUptime(repo, out);
  collect::ExportCapacity(repo, out);
  return out.str();
}

TEST(IdempotentIngest, CommitsOnceAndRejectsReplays) {
  DataRepository repo(Windows());
  IdempotentIngest gate(repo);
  const auto stream = MakeStream({1});

  EXPECT_TRUE(gate.deliver(stream[0]));
  EXPECT_FALSE(gate.deliver(stream[0]));
  EXPECT_FALSE(gate.deliver(stream[0]));

  EXPECT_EQ(gate.stats().batches_committed, 1u);
  EXPECT_EQ(gate.stats().batches_deduped, 2u);
  EXPECT_EQ(gate.stats().records_committed, stream[0].records.size());
  EXPECT_EQ(repo.uptime().size(), 4u);
  EXPECT_EQ(repo.capacity().size(), 4u);
}

TEST(IdempotentIngest, SameSeqFromDifferentHomesBothCommit) {
  DataRepository repo(Windows());
  IdempotentIngest gate(repo);
  const auto stream = MakeStream({1, 2});  // both homes ship seq 0, 1, 2

  for (const auto& batch : stream) EXPECT_TRUE(gate.deliver(batch));
  EXPECT_EQ(gate.stats().batches_committed, stream.size());
  EXPECT_EQ(gate.stats().batches_deduped, 0u);
}

TEST(IdempotentIngest, RebindKeepsDedupStateAcrossSinks) {
  DataRepository first(Windows());
  DataRepository second(Windows());
  IdempotentIngest gate(first);
  const auto stream = MakeStream({1});

  EXPECT_TRUE(gate.deliver(stream[0]));
  gate.rebind_sink(second);
  EXPECT_FALSE(gate.deliver(stream[0])) << "dedup survives sink rotation";
  EXPECT_TRUE(gate.deliver(stream[1]));
  EXPECT_EQ(first.uptime().size(), 4u);
  EXPECT_EQ(second.uptime().size(), 4u);
}

/// The satellite scenario: replay the whole batch stream N times through
/// per-shard gates (each home pinned to its shard, as in the deployment
/// runner) and require the merged repository to export byte-identically to
/// a single clean delivery.
TEST(IdempotentIngest, NFoldReplayAcrossShardGatesExportsSingleDeliveryBytes) {
  const std::vector<int> shard_a = {1, 2, 3};
  const std::vector<int> shard_b = {4, 5, 6};
  auto stream_a = MakeStream(shard_a);
  auto stream_b = MakeStream(shard_b);

  // Reference: every batch delivered exactly once.
  DataRepository reference(Windows());
  {
    IdempotentIngest gate(reference);
    for (const auto& b : stream_a) gate.deliver(b);
    for (const auto& b : stream_b) gate.deliver(b);
    reference.finalize_deterministic_order();
  }
  const std::string reference_bytes = ExportBytes(reference);
  ASSERT_FALSE(reference_bytes.empty());

  // Replayed: the same stream arrives 4 times, interleaved across the two
  // shard staging buffers, which are then committed like the runner does.
  DataRepository replayed(Windows());
  IngestBatch batch_a = replayed.make_batch();
  IngestBatch batch_b = replayed.make_batch();
  IdempotentIngest gate_a(batch_a);
  IdempotentIngest gate_b(batch_b);
  std::uint64_t deduped = 0;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < stream_a.size(); ++i) {
      deduped += !gate_a.deliver(stream_a[i]);
      deduped += !gate_b.deliver(stream_b[i]);
    }
  }
  replayed.commit(std::move(batch_a));
  replayed.commit(std::move(batch_b));
  replayed.finalize_deterministic_order();

  EXPECT_EQ(deduped, 3u * (stream_a.size() + stream_b.size()));
  EXPECT_EQ(ExportBytes(replayed), reference_bytes);
  EXPECT_EQ(replayed.uptime().size(), reference.uptime().size());
  EXPECT_EQ(replayed.capacity().size(), reference.capacity().size());
}

}  // namespace
}  // namespace bismark
