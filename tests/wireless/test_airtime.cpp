#include <gtest/gtest.h>

#include "wireless/airtime.h"

namespace bismark::wireless {
namespace {

TEST(AirtimeTest, NoNeighborsFullShare) {
  ContentionInput input;
  input.overlapping_neighbor_aps = 0;
  EXPECT_DOUBLE_EQ(EffectiveAirtimeShare(input), 1.0);
}

TEST(AirtimeTest, ShareDecreasesWithNeighbors) {
  ContentionInput few;
  few.overlapping_neighbor_aps = 2;
  ContentionInput many;
  many.overlapping_neighbor_aps = 20;
  EXPECT_GT(EffectiveAirtimeShare(few), EffectiveAirtimeShare(many));
  EXPECT_GT(EffectiveAirtimeShare(many), 0.0);
}

TEST(AirtimeTest, ShareBoundedBelow) {
  ContentionInput crowded;
  crowded.overlapping_neighbor_aps = 500;
  crowded.neighbor_duty_cycle = 0.5;
  EXPECT_GE(EffectiveAirtimeShare(crowded), 0.01);
}

TEST(AirtimeTest, DutyCycleMatters) {
  ContentionInput idle;
  idle.overlapping_neighbor_aps = 10;
  idle.neighbor_duty_cycle = 0.02;
  ContentionInput busy = idle;
  busy.neighbor_duty_cycle = 0.4;
  EXPECT_GT(EffectiveAirtimeShare(idle), EffectiveAirtimeShare(busy));
}

TEST(AirtimeTest, PerClientShareSplitsBss) {
  ContentionInput input;
  input.overlapping_neighbor_aps = 0;
  input.own_clients = 4;
  EXPECT_DOUBLE_EQ(PerClientShare(input), 0.25);
  input.own_clients = 0;  // treated as one client
  EXPECT_DOUBLE_EQ(PerClientShare(input), 1.0);
}

TEST(AirtimeTest, CrowdedChannelErodesPerClientThroughput) {
  // The Section 5.3 story: 2.4 GHz crowding becomes a bottleneck as access
  // link speeds grow.
  ContentionInput quiet;
  quiet.overlapping_neighbor_aps = 1;
  quiet.own_clients = 2;
  ContentionInput crowded;
  crowded.overlapping_neighbor_aps = 25;
  crowded.own_clients = 2;
  EXPECT_LT(PerClientShare(crowded), PerClientShare(quiet) * 0.5);
}

}  // namespace
}  // namespace bismark::wireless
