#include <gtest/gtest.h>

#include "wireless/scanner.h"

namespace bismark::wireless {
namespace {

net::MacAddress Mac(std::uint32_t nic) { return net::MacAddress::FromParts(0x38AA3C, nic); }
const TimePoint t0 = MakeTime({2012, 11, 1});

Neighborhood MakeHood() {
  NeighborhoodProfile p;
  p.dense_prob = 1.0;
  p.dense_mean_24 = 15.0;
  p.dense_mean_5 = 3.0;
  p.popular_channel_frac = 1.0;  // all on 1/6/11
  return Neighborhood::Generate(p, Rng(5));
}

TEST(ScannerTest, ScanReportsVisibleApsOnOwnChannel) {
  const Neighborhood hood = MakeHood();
  AssociationTable radio({Band::k2_4GHz, 11, true});
  WifiScanner scanner({}, Rng(9));
  const ScanResult result = scanner.scan(hood, radio, t0);
  EXPECT_EQ(result.band, Band::k2_4GHz);
  EXPECT_EQ(result.channel, 11);
  EXPECT_EQ(result.visible_aps, hood.audible_on(Band::k2_4GHz, 11).size());
}

TEST(ScannerTest, ScanCanDisassociateClients) {
  // Section 3.2.2: "the scanning process can sometimes cause wireless
  // clients to disassociate from the router".
  const Neighborhood hood = MakeHood();
  ScannerConfig cfg;
  cfg.disassociation_prob = 1.0;  // force the failure mode
  AssociationTable radio({Band::k2_4GHz, 11, true});
  radio.associate(Mac(1), t0);
  radio.associate(Mac(2), t0);
  WifiScanner scanner(cfg, Rng(9));
  const ScanResult result = scanner.scan(hood, radio, t0);
  EXPECT_EQ(result.clients_disassociated, 2u);
  EXPECT_EQ(radio.client_count(), 0u);
  EXPECT_EQ(result.associated_clients, 0u);
}

TEST(ScannerTest, ZeroDisassociationProbIsHarmless) {
  const Neighborhood hood = MakeHood();
  ScannerConfig cfg;
  cfg.disassociation_prob = 0.0;
  AssociationTable radio({Band::k2_4GHz, 11, true});
  radio.associate(Mac(1), t0);
  WifiScanner scanner(cfg, Rng(9));
  const ScanResult result = scanner.scan(hood, radio, t0);
  EXPECT_EQ(result.clients_disassociated, 0u);
  EXPECT_EQ(radio.client_count(), 1u);
}

TEST(ScannerTest, BacksOffWhenClientsPresent) {
  // "...so we reduce the scanning frequency if the router has associated
  // clients."
  ScannerConfig cfg;
  cfg.base_interval = Minutes(10);
  cfg.backoff_factor = 3;
  WifiScanner scanner(cfg, Rng(9));
  EXPECT_EQ(scanner.next_interval(0), Minutes(10));
  EXPECT_EQ(scanner.next_interval(1), Minutes(30));
  EXPECT_EQ(scanner.next_interval(5), Minutes(30));
}

TEST(ScannerTest, FiveGhzScanSeesOnlyFiveGhzAps) {
  const Neighborhood hood = MakeHood();
  AssociationTable radio({Band::k5GHz, 36, true});
  WifiScanner scanner({}, Rng(9));
  const ScanResult result = scanner.scan(hood, radio, t0);
  EXPECT_EQ(result.band, Band::k5GHz);
  EXPECT_EQ(result.visible_aps, hood.audible_on(Band::k5GHz, 36).size());
  EXPECT_LE(result.visible_aps, hood.count_on_band(Band::k5GHz));
}

}  // namespace
}  // namespace bismark::wireless
