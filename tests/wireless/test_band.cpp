#include <gtest/gtest.h>

#include "wireless/band.h"

namespace bismark::wireless {
namespace {

TEST(BandTest, Names) {
  EXPECT_EQ(BandName(Band::k2_4GHz), "2.4 GHz");
  EXPECT_EQ(BandName(Band::k5GHz), "5 GHz");
}

TEST(BandTest, ChannelSets) {
  EXPECT_EQ(ChannelsFor(Band::k2_4GHz).size(), 11u);
  EXPECT_EQ(ChannelsFor(Band::k2_4GHz).front(), 1);
  EXPECT_EQ(ChannelsFor(Band::k2_4GHz).back(), 11);
  EXPECT_EQ(ChannelsFor(Band::k5GHz).front(), 36);
}

TEST(BandTest, DefaultChannelsMatchBismark) {
  // Section 3.2.2: 2.4 GHz on channel 11, 5 GHz on channel 36.
  EXPECT_EQ(DefaultChannel(Band::k2_4GHz), 11);
  EXPECT_EQ(DefaultChannel(Band::k5GHz), 36);
}

TEST(BandTest, TwoPointFourOverlapRule) {
  // 20 MHz channels overlap unless >= 5 apart: the 1/6/11 plan.
  EXPECT_TRUE(ChannelsOverlap(Band::k2_4GHz, 1, 4));
  EXPECT_TRUE(ChannelsOverlap(Band::k2_4GHz, 6, 6));
  EXPECT_FALSE(ChannelsOverlap(Band::k2_4GHz, 1, 6));
  EXPECT_FALSE(ChannelsOverlap(Band::k2_4GHz, 6, 11));
  EXPECT_TRUE(ChannelsOverlap(Band::k2_4GHz, 11, 8));
}

TEST(BandTest, FiveGhzChannelsDoNotOverlap) {
  EXPECT_TRUE(ChannelsOverlap(Band::k5GHz, 36, 36));
  EXPECT_FALSE(ChannelsOverlap(Band::k5GHz, 36, 40));
}

}  // namespace
}  // namespace bismark::wireless
