#include <gtest/gtest.h>

#include "wireless/association.h"

namespace bismark::wireless {
namespace {

net::MacAddress Mac(std::uint32_t nic) { return net::MacAddress::FromParts(0x38AA3C, nic); }
const TimePoint t0 = MakeTime({2013, 4, 1});

RadioConfig Radio24() { return {Band::k2_4GHz, 11, true}; }

TEST(AssociationTest, AssociateAndCount) {
  AssociationTable table(Radio24());
  EXPECT_TRUE(table.associate(Mac(1), t0));
  EXPECT_TRUE(table.associate(Mac(2), t0));
  EXPECT_EQ(table.client_count(), 2u);
  EXPECT_TRUE(table.is_associated(Mac(1)));
  EXPECT_FALSE(table.is_associated(Mac(3)));
}

TEST(AssociationTest, ReassociationRefreshesActivity) {
  AssociationTable table(Radio24());
  table.associate(Mac(1), t0);
  table.associate(Mac(1), t0 + Minutes(5));
  EXPECT_EQ(table.client_count(), 1u);
  const auto clients = table.clients();
  ASSERT_EQ(clients.size(), 1u);
  EXPECT_EQ(clients[0].associated_at, t0);            // original join time kept
  EXPECT_EQ(clients[0].last_activity, t0 + Minutes(5));
}

TEST(AssociationTest, TouchUpdatesLastActivity) {
  AssociationTable table(Radio24());
  table.associate(Mac(1), t0);
  table.touch(Mac(1), t0 + Minutes(1));
  EXPECT_EQ(table.clients()[0].last_activity, t0 + Minutes(1));
  table.touch(Mac(9), t0);  // unknown mac: no-op
  EXPECT_EQ(table.client_count(), 1u);
}

TEST(AssociationTest, DisassociateAndClear) {
  AssociationTable table(Radio24());
  table.associate(Mac(1), t0);
  table.associate(Mac(2), t0);
  table.disassociate(Mac(1));
  EXPECT_EQ(table.client_count(), 1u);
  table.clear();
  EXPECT_EQ(table.client_count(), 0u);
}

TEST(AssociationTest, DisabledRadioRejectsClients) {
  AssociationTable table({Band::k5GHz, 36, false});
  EXPECT_FALSE(table.associate(Mac(1), t0));
  EXPECT_EQ(table.client_count(), 0u);
}

TEST(AssociationTest, DisablingRadioDropsEveryone) {
  AssociationTable table(Radio24());
  table.associate(Mac(1), t0);
  table.associate(Mac(2), t0);
  table.set_enabled(false);
  EXPECT_EQ(table.client_count(), 0u);
  EXPECT_FALSE(table.associate(Mac(3), t0));
  table.set_enabled(true);
  EXPECT_TRUE(table.associate(Mac(3), t0));
}

}  // namespace
}  // namespace bismark::wireless
