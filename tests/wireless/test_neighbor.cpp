#include <gtest/gtest.h>

#include "core/stats.h"
#include "wireless/neighbor.h"

namespace bismark::wireless {
namespace {

NeighborhoodProfile DenseProfile() {
  NeighborhoodProfile p;
  p.dense_prob = 1.0;
  p.dense_mean_24 = 20.0;
  p.dense_mean_5 = 4.0;
  return p;
}

TEST(NeighborhoodTest, DeterministicFromRng) {
  const auto a = Neighborhood::Generate(DenseProfile(), Rng(42));
  const auto b = Neighborhood::Generate(DenseProfile(), Rng(42));
  ASSERT_EQ(a.aps().size(), b.aps().size());
  for (std::size_t i = 0; i < a.aps().size(); ++i) {
    EXPECT_EQ(a.aps()[i].bssid, b.aps()[i].bssid);
    EXPECT_EQ(a.aps()[i].channel, b.aps()[i].channel);
  }
}

TEST(NeighborhoodTest, CountsTrackMeans) {
  RunningStats count24, count5;
  for (int seed = 0; seed < 200; ++seed) {
    const auto hood = Neighborhood::Generate(DenseProfile(), Rng(seed));
    count24.add(static_cast<double>(hood.count_on_band(Band::k2_4GHz)));
    count5.add(static_cast<double>(hood.count_on_band(Band::k5GHz)));
  }
  EXPECT_NEAR(count24.mean(), 20.0, 2.0);
  EXPECT_NEAR(count5.mean(), 4.0, 1.0);
}

TEST(NeighborhoodTest, SparseModeSmaller) {
  NeighborhoodProfile sparse;
  sparse.dense_prob = 0.0;
  sparse.sparse_mean_24 = 2.0;
  sparse.sparse_mean_5 = 0.3;
  RunningStats count;
  for (int seed = 0; seed < 200; ++seed) {
    count.add(static_cast<double>(
        Neighborhood::Generate(sparse, Rng(seed)).count_on_band(Band::k2_4GHz)));
  }
  EXPECT_LT(count.mean(), 4.0);
}

TEST(NeighborhoodTest, AudibleFiltersBandChannelAndRssi) {
  const auto hood = Neighborhood::Generate(DenseProfile(), Rng(7));
  const auto audible = hood.audible_on(Band::k2_4GHz, 11, -92.0);
  for (const auto& ap : audible) {
    EXPECT_EQ(ap.band, Band::k2_4GHz);
    EXPECT_TRUE(ChannelsOverlap(Band::k2_4GHz, ap.channel, 11));
    EXPECT_GE(ap.rssi_dbm, -92.0);
  }
  // A stricter sensitivity floor hears no more APs.
  EXPECT_LE(hood.audible_on(Band::k2_4GHz, 11, -70.0).size(), audible.size());
}

TEST(NeighborhoodTest, AudibleOnWrongBandEmptyForBandlessHood) {
  NeighborhoodProfile only24;
  only24.dense_prob = 1.0;
  only24.dense_mean_24 = 10.0;
  only24.dense_mean_5 = 0.0;
  only24.sparse_mean_5 = 0.0;
  const auto hood = Neighborhood::Generate(only24, Rng(3));
  EXPECT_TRUE(hood.audible_on(Band::k5GHz, 36).empty());
}

TEST(NeighborhoodTest, PopularChannelsDominate24) {
  NeighborhoodProfile p = DenseProfile();
  p.popular_channel_frac = 0.8;
  int popular = 0, total = 0;
  for (int seed = 0; seed < 50; ++seed) {
    const Neighborhood hood = Neighborhood::Generate(p, Rng(seed));
    for (const auto& ap : hood.aps()) {
      if (ap.band != Band::k2_4GHz) continue;
      ++total;
      if (ap.channel == 1 || ap.channel == 6 || ap.channel == 11) ++popular;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(popular) / total, 0.7);
}

TEST(NeighborhoodTest, BssidsAreUnicastAndWellFormed) {
  const auto hood = Neighborhood::Generate(DenseProfile(), Rng(11));
  for (const auto& ap : hood.aps()) {
    ASSERT_EQ(ap.bssid.size(), 17u);
    // Low bit of the first octet clear => unicast.
    const int first = std::stoi(ap.bssid.substr(0, 2), nullptr, 16);
    EXPECT_EQ(first & 1, 0);
  }
}

}  // namespace
}  // namespace bismark::wireless
