// Fault injection must not cost determinism: with a fixed fault seed, the
// injected loss/outage/retry history — and therefore the exported bytes and
// the upload ledger — is identical for any worker count and across repeated
// runs. Three scenarios cover the matrix: fault-free, a lossy path, and a
// flapping collector squeezing an undersized spool.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "collect/export.h"
#include "home/deployment.h"

namespace bismark {
namespace {

using home::Deployment;
using home::DeploymentOptions;
using home::UploadStats;

DeploymentOptions BaseStudy(int workers) {
  DeploymentOptions options;
  options.seed = 20130417;
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2013, 3, 1}), 2);
  options.roster_scale = 0.35;
  options.run_traffic = false;  // the upload pipeline covers the passive window
  options.churn_homes = 5;
  options.workers = workers;
  return options;
}

DeploymentOptions LossyStudy(int workers) {
  DeploymentOptions options = BaseStudy(workers);
  options.upload_faults.upload_loss_prob = 0.2;
  options.upload_faults.ack_loss_prob = 0.15;
  options.heartbeat.loss_prob = 0.03;
  options.fault_seed = 0xFA117;
  return options;
}

DeploymentOptions CollectorFlapStudy(int workers) {
  DeploymentOptions options = BaseStudy(workers);
  // Passive services spool only a couple of records per hour per home, so
  // drops need long outages against a tiny spool: half-day outages vs a
  // 16-record queue guarantee drop-oldest overflow somewhere in the fleet.
  options.collector_outages_per_month = 6.0;
  options.collector_outage_mean = Hours(12);
  options.upload.spool_capacity = 16;
  options.fault_seed = 0x5EED;
  return options;
}

std::string ExportAllCsv(const collect::DataRepository& repo) {
  std::ostringstream out;
  collect::ExportHeartbeats(repo, out);
  collect::ExportUptime(repo, out);
  collect::ExportCapacity(repo, out);
  collect::ExportDevices(repo, out);
  collect::ExportWifi(repo, out);
  return out.str();
}

auto Ledger(const UploadStats& up) {
  return std::tuple(up.records_spooled, up.records_delivered, up.records_dropped,
                    up.records_stranded, up.batches_delivered, up.attempts, up.retries,
                    up.duplicate_transmissions);
}

/// Runs one scenario at workers 1, 4 and 8 and requires byte-identical
/// exports and an identical upload ledger; returns the workers-1 stats.
template <typename MakeOptions>
UploadStats RequireWorkerInvariance(MakeOptions make, std::string* bytes_out) {
  const auto serial = Deployment::RunStudy(make(1));
  const std::string serial_bytes = ExportAllCsv(serial->repository());
  const UploadStats serial_up = serial->upload_stats();

  for (int workers : {4, 8}) {
    const auto parallel = Deployment::RunStudy(make(workers));
    EXPECT_EQ(serial_bytes, ExportAllCsv(parallel->repository()))
        << "workers=" << workers;
    EXPECT_EQ(Ledger(serial_up), Ledger(parallel->upload_stats()))
        << "workers=" << workers;
  }
  // Conservation: every spooled record is accounted for exactly once.
  EXPECT_EQ(serial_up.records_spooled,
            serial_up.records_delivered + serial_up.records_dropped +
                serial_up.records_stranded);
  if (bytes_out) *bytes_out = serial_bytes;
  return serial_up;
}

TEST(FaultDeterminism, NoFaultScenarioIsWorkerInvariant) {
  std::string bytes;
  const UploadStats up = RequireWorkerInvariance(BaseStudy, &bytes);
  ASSERT_FALSE(bytes.empty());
  // A reliable path delivers everything: nothing dropped, nothing stranded,
  // no retries, no resends.
  EXPECT_GT(up.records_spooled, 0u);
  EXPECT_EQ(up.records_delivered, up.records_spooled);
  EXPECT_EQ(up.records_dropped, 0u);
  EXPECT_EQ(up.records_stranded, 0u);
  EXPECT_EQ(up.retries, 0u);
  EXPECT_EQ(up.duplicate_transmissions, 0u);
}

TEST(FaultDeterminism, LossyPathScenarioIsWorkerInvariant) {
  const UploadStats up = RequireWorkerInvariance(LossyStudy, nullptr);
  // Heavy request/ack loss exercises retries and the dedup gate, but the
  // ample default spool means store-and-forward still loses nothing.
  EXPECT_GT(up.retries, 0u);
  EXPECT_GT(up.duplicate_transmissions, 0u) << "lost acks forced deduped resends";
  EXPECT_EQ(up.records_delivered, up.records_spooled) << "retries recovered every loss";
  EXPECT_EQ(up.records_dropped, 0u);
  EXPECT_EQ(up.records_stranded, 0u);
}

TEST(FaultDeterminism, CollectorFlapScenarioIsWorkerInvariant) {
  const UploadStats up = RequireWorkerInvariance(CollectorFlapStudy, nullptr);
  // Long outages against a 96-record spool must overflow; the drop ledger
  // (not silent loss) accounts for the shortfall.
  EXPECT_GT(up.retries, 0u);
  EXPECT_GT(up.records_dropped, 0u) << "the undersized spool had to shed load";
  EXPECT_LT(up.records_delivered, up.records_spooled);
}

TEST(FaultDeterminism, RepeatedLossyRunsAgree) {
  const auto first = Deployment::RunStudy(LossyStudy(8));
  const auto second = Deployment::RunStudy(LossyStudy(8));
  EXPECT_EQ(ExportAllCsv(first->repository()), ExportAllCsv(second->repository()));
  EXPECT_EQ(Ledger(first->upload_stats()), Ledger(second->upload_stats()));
}

TEST(FaultDeterminism, FaultSeedIsAnIndependentAxis) {
  // Changing only the fault seed must change the fault history (different
  // retry/duplicate counts) while the same seed reproduces it exactly.
  auto with_fault_seed = [](std::uint64_t fault_seed) {
    DeploymentOptions options = LossyStudy(4);
    options.fault_seed = fault_seed;
    return Deployment::RunStudy(options)->upload_stats();
  };
  const UploadStats a = with_fault_seed(0xFA117);
  const UploadStats a2 = with_fault_seed(0xFA117);
  const UploadStats b = with_fault_seed(0xC0FFEE);
  EXPECT_EQ(Ledger(a), Ledger(a2));
  EXPECT_NE(std::tuple(a.attempts, a.retries, a.duplicate_transmissions),
            std::tuple(b.attempts, b.retries, b.duplicate_transmissions));
}

}  // namespace
}  // namespace bismark
