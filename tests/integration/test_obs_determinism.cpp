// The obs subsystem's headline contract: the rendered metrics and the
// deterministic run report are byte-identical for any --workers value and
// across repeated runs, with fault injection active (fixed fault seed) —
// the same guarantee the CSV exports carry. On a mismatch, the merged
// flight recorders are dumped for the post-mortem.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "home/deployment.h"
#include "obs/metrics.h"

namespace bismark {
namespace {

using home::Deployment;
using home::DeploymentOptions;

DeploymentOptions FaultedStudy(int workers) {
  DeploymentOptions options;
  options.seed = 20130417;
  options.fault_seed = 777;
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2013, 3, 1}), 2);
  options.roster_scale = 0.3;
  options.run_traffic = false;  // upload-path focus; keeps the suite quick
  options.churn_homes = 4;
  options.collector_outages_per_month = 3.0;
  options.upload_faults.upload_loss_prob = 0.05;
  options.upload_faults.ack_loss_prob = 0.02;
  options.upload.spool_capacity = 64;  // small enough to force drops
  options.workers = workers;
  return options;
}

std::string MetricsText(const Deployment& study) {
  std::ostringstream out;
  obs::WritePrometheus(study.metrics(), out);
  return out.str();
}

std::string DeterministicReportJson(const Deployment& study) {
  std::ostringstream out;
  home::MakeRunReport(study, "test_obs_determinism", /*include_volatile=*/false)
      .write_json(out);
  return out.str();
}

std::string FlightDump(const Deployment& study) {
  std::ostringstream out;
  study.dump_flight_recorders(out);
  return out.str();
}

class ObsDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    serial_ = Deployment::RunStudy(FaultedStudy(1)).release();
  }
  static void TearDownTestSuite() {
    delete serial_;
    serial_ = nullptr;
  }
  static const Deployment* serial_;
};

const Deployment* ObsDeterminismTest::serial_ = nullptr;

TEST_F(ObsDeterminismTest, SerialRunExercisesThePipeline) {
  const obs::MetricsSnapshot& m = serial_->metrics();
  EXPECT_FALSE(m.empty());
  EXPECT_GT(m.counter_or("bismark_upload_records_spooled_total"), 0u);
  EXPECT_GT(m.counter_or("bismark_upload_attempts_total"), 0u);
  EXPECT_GT(m.counter_or("bismark_upload_retries_total"), 0u);  // faults bit
  EXPECT_GT(m.counter_or("bismark_engine_events_executed_total"), 0u);
  EXPECT_EQ(m.counter_or("bismark_homes_simulated_total"),
            serial_->households().size());

  // Conservation: spooled == delivered + dropped + stranded, exactly.
  const obs::Conservation c = obs::ConservationFromMetrics(m);
  EXPECT_TRUE(c.holds()) << "spooled=" << c.spooled << " delivered=" << c.delivered
                         << " dropped=" << c.dropped << " stranded=" << c.stranded
                         << "\n"
                         << FlightDump(*serial_);

  // UploadStats is a view of the same registry — they must agree.
  const home::UploadStats& up = serial_->upload_stats();
  EXPECT_EQ(up.records_spooled, c.spooled);
  EXPECT_EQ(up.records_delivered, c.delivered);
  EXPECT_EQ(up.records_dropped, c.dropped);
  EXPECT_EQ(up.records_stranded, c.stranded);
}

TEST_F(ObsDeterminismTest, MetricsBytesIdenticalAcrossWorkerCounts) {
  const std::string serial_text = MetricsText(*serial_);
  ASSERT_FALSE(serial_text.empty());
  for (const int workers : {4, 8}) {
    const auto parallel = Deployment::RunStudy(FaultedStudy(workers));
    EXPECT_EQ(serial_text, MetricsText(*parallel))
        << "metrics diverged at --workers " << workers << "\n"
        << FlightDump(*parallel);
  }
}

TEST_F(ObsDeterminismTest, MetricsBytesIdenticalAcrossRepeatedRuns) {
  const auto rerun = Deployment::RunStudy(FaultedStudy(1));
  EXPECT_EQ(MetricsText(*serial_), MetricsText(*rerun));
}

TEST_F(ObsDeterminismTest, DeterministicReportIdenticalAcrossWorkerCounts) {
  const std::string serial_json = DeterministicReportJson(*serial_);
  for (const int workers : {4, 8}) {
    const auto parallel = Deployment::RunStudy(FaultedStudy(workers));
    EXPECT_EQ(serial_json, DeterministicReportJson(*parallel))
        << "deterministic report diverged at --workers " << workers;
  }
}

TEST_F(ObsDeterminismTest, VolatileReportStillCarriesDeterministicStrata) {
  // The full report differs run-to-run (wall clock), but its study section
  // and conservation identity are fixed.
  const auto report = home::MakeRunReport(*serial_, "test", true);
  EXPECT_EQ(report.seed, 20130417u);
  EXPECT_EQ(report.fault_seed, 777u);
  EXPECT_EQ(report.shards, serial_->shard_count());
  EXPECT_TRUE(report.conservation.holds());
  EXPECT_TRUE(report.include_volatile);
  EXPECT_GE(report.wall_total_s, 0.0);
}

}  // namespace
}  // namespace bismark
