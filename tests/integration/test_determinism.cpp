// The parallel runner's contract: worker count is a pure performance knob.
// Same seed => same repository => same CSV bytes, whether the study ran on
// one thread or eight, and whether it is the first or the tenth run.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "collect/export.h"
#include "home/deployment.h"

namespace bismark {
namespace {

using home::Deployment;
using home::DeploymentOptions;

DeploymentOptions SmallStudy(int workers) {
  DeploymentOptions options;
  options.seed = 20130417;
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2013, 3, 1}), 2);
  options.roster_scale = 0.35;
  options.traffic_homes = 4;
  options.bufferbloat_homes = 1;
  options.churn_homes = 5;
  options.collector_outages_per_month = 2.0;
  options.workers = workers;
  return options;
}

/// Every public data set plus the withheld Traffic flows, concatenated.
std::string ExportAllCsv(const collect::DataRepository& repo) {
  std::ostringstream out;
  collect::ExportHeartbeats(repo, out);
  collect::ExportUptime(repo, out);
  collect::ExportCapacity(repo, out);
  collect::ExportDevices(repo, out);
  collect::ExportWifi(repo, out);
  collect::ExportTrafficFlows(repo, out);
  return out.str();
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    serial_csv_ = new std::string(
        ExportAllCsv(Deployment::RunStudy(SmallStudy(1))->repository()));
  }
  static void TearDownTestSuite() {
    delete serial_csv_;
    serial_csv_ = nullptr;
  }
  static std::string* serial_csv_;
};

std::string* ParallelDeterminismTest::serial_csv_ = nullptr;

TEST_F(ParallelDeterminismTest, EightWorkersMatchSerialByteForByte) {
  const auto parallel = Deployment::RunStudy(SmallStudy(8));
  EXPECT_EQ(*serial_csv_, ExportAllCsv(parallel->repository()));

  const auto counts = parallel->repository().counts();
  EXPECT_GT(counts.heartbeat_runs, 0u);
  EXPECT_GT(counts.capacity, 0u);
  EXPECT_GT(counts.flows, 0u);  // the traffic window really ran sharded
}

TEST_F(ParallelDeterminismTest, RepeatedEightWorkerRunsAgree) {
  const std::string first = ExportAllCsv(Deployment::RunStudy(SmallStudy(8))->repository());
  const std::string second = ExportAllCsv(Deployment::RunStudy(SmallStudy(8))->repository());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, *serial_csv_);
}

TEST_F(ParallelDeterminismTest, OddWorkerCountsAndAutoDetectAgreeToo) {
  // 3 workers (doesn't divide the shard count evenly) and auto-detect.
  EXPECT_EQ(*serial_csv_, ExportAllCsv(Deployment::RunStudy(SmallStudy(3))->repository()));
  EXPECT_EQ(*serial_csv_, ExportAllCsv(Deployment::RunStudy(SmallStudy(0))->repository()));
}

}  // namespace
}  // namespace bismark
