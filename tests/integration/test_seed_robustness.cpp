// The paper's qualitative claims should not hinge on one lucky seed. Run
// the compressed study at several seeds and check that the core regional
// orderings hold in every world.
#include <gtest/gtest.h>

#include "analysis/downtime.h"
#include "analysis/infrastructure.h"
#include "analysis/usage.h"
#include "analysis/utilization.h"
#include "home/deployment.h"

namespace bismark {
namespace {

class SeedRobustnessTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static home::DeploymentOptions Options(std::uint64_t seed) {
    home::DeploymentOptions options;
    options.seed = seed;
    options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 6);
    return options;
  }
};

TEST_P(SeedRobustnessTest, CoreOrderingsHoldInEveryWorld) {
  const auto study = home::Deployment::RunStudy(Options(GetParam()));
  const auto& repo = study->repository();

  // Availability: developing downtimes an order of magnitude more frequent.
  const auto homes = analysis::AnalyzeAvailability(repo, {Minutes(10), 10.0});
  const auto freq = analysis::DowntimeFrequencyCdfs(homes);
  EXPECT_GT(freq.developing.median(), freq.developed.median() * 5.0);

  // Infrastructure: 2.4 GHz busier than 5 GHz; developed denser airspace.
  const auto bands = analysis::UniqueDevicesPerBand(repo);
  EXPECT_GT(bands.band24.median(), bands.band5.median());
  const auto neighbors = analysis::NeighborAps(repo);
  EXPECT_GT(neighbors.developed.median(), neighbors.developing.median());

  // Table 5 ordering: developed homes keep more always-connected hardware.
  const auto table5 = analysis::AlwaysConnected(repo);
  EXPECT_GE(table5.developed.wired_fraction(), table5.developing.wired_fraction());

  // Usage: a dominant device exists and bufferbloat homes surface.
  const auto devices = analysis::DeviceUsageShares(repo);
  ASSERT_GE(devices.share_by_rank.size(), 2u);
  EXPECT_GT(devices.share_by_rank[0], devices.share_by_rank[1] * 1.6);
  const auto saturation = analysis::LinkSaturation(repo);
  const auto over = analysis::OversaturatedUplinks(saturation);
  EXPECT_GE(over.size(), 1u);
  EXPECT_LE(over.size(), 4u);

  // Domains: volume concentrates harder than connections.
  const auto domains = analysis::DomainUsageShares(repo);
  EXPECT_GT(domains.by_rank[0].volume_share, 0.15);
  EXPECT_LT(domains.by_rank[0].conns_by_vol_rank, domains.by_rank[0].volume_share);
  EXPECT_GT(domains.whitelisted_volume_share, 0.45);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest,
                         ::testing::Values(1ULL, 777ULL, 20131023ULL));

}  // namespace
}  // namespace bismark
