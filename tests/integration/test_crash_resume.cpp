// Crash/resume byte-identity: kill -9 a fleet run at injected I/O fault
// points, resume the directory, and require the recovered exports to match
// an uninterrupted reference run byte for byte — at several kill points and
// worker counts, including resuming with a different worker count than the
// run that crashed.
//
// The kill is real: the child process installs a kill fault plan, runs the
// study, and std::_Exit(137)s mid-write with no flushing and no destructors
// — exactly what `kill -9` leaves behind. The parent then recovers the
// directory in-process.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "collect/export.h"
#include "collect/manifest.h"
#include "core/io.h"
#include "home/deployment.h"

namespace bismark {
namespace {

namespace fs = std::filesystem;

using home::Deployment;
using home::DeploymentOptions;

DeploymentOptions FleetStudy(int workers, const std::string& spill_dir) {
  DeploymentOptions options;
  options.seed = 20131023;
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2013, 3, 1}), 2);
  options.roster_scale = 0.35;
  options.traffic_homes = 4;
  options.bufferbloat_homes = 1;
  options.churn_homes = 5;
  options.collector_outages_per_month = 2.0;
  options.workers = workers;
  options.memory_budget_bytes = 1 << 20;  // fleet mode with aggressive spilling
  options.spill_dir = spill_dir;
  options.checkpoint_every = 2;
  return options;
}

std::string ExportAllCsv(const collect::DataRepository& repo) {
  std::ostringstream out;
  collect::ExportHeartbeats(repo, out);
  collect::ExportUptime(repo, out);
  collect::ExportCapacity(repo, out);
  collect::ExportDevices(repo, out);
  collect::ExportWifi(repo, out);
  collect::ExportTrafficFlows(repo, out);
  return out.str();
}

fs::path FreshDir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("bsmk-test-crash-" + tag + "-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

class CrashResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto dir = FreshDir("ref");
    reference_csv_ = new std::string(
        ExportAllCsv(Deployment::RunStudy(FleetStudy(2, dir.string()))->repository()));
    fs::remove_all(dir);
    ASSERT_FALSE(reference_csv_->empty());
  }
  static void TearDownTestSuite() {
    delete reference_csv_;
    reference_csv_ = nullptr;
  }

  /// Run the study in a forked child with a kill fault armed on the Nth
  /// segment write. Returns the child's exit code: 137 when the kill fired,
  /// 0 when the run finished first (kill point past the write count).
  static int RunAndKill(int workers, const std::string& spill_dir,
                        std::uint64_t kill_at_write) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      core::IoFaultPlan plan;
      plan.kind = core::IoFaultPlan::Kind::kKill;
      plan.at_op = kill_at_write;
      plan.path_substr = ".bsmkseg";
      core::InstallIoFaultPlan(plan);
      try {
        Deployment::RunStudy(FleetStudy(workers, spill_dir));
      } catch (...) {
        std::_Exit(120);  // any throw in the child is a test bug, not a crash
      }
      std::_Exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  /// Resume the killed directory in-process and return its export bytes.
  static std::string ResumeAndExport(int workers, const std::string& spill_dir,
                                     const home::Deployment** out_dep = nullptr) {
    DeploymentOptions options = FleetStudy(workers, spill_dir);
    options.resume = true;
    static std::unique_ptr<Deployment> keep;  // outlive the returned pointer
    keep = Deployment::RunStudy(std::move(options));
    if (out_dep != nullptr) *out_dep = keep.get();
    return ExportAllCsv(keep->repository());
  }

  static std::string* reference_csv_;
};

std::string* CrashResumeTest::reference_csv_ = nullptr;

TEST_F(CrashResumeTest, EarlyKillResumesToIdenticalExports) {
  const auto dir = FreshDir("early");
  ASSERT_EQ(RunAndKill(/*workers=*/4, dir.string(), /*kill_at_write=*/1), 137);
  const Deployment* dep = nullptr;
  EXPECT_EQ(ResumeAndExport(/*workers=*/1, dir.string(), &dep), *reference_csv_);
  ASSERT_NE(dep->recovery(), nullptr);
  fs::remove_all(dir);
}

TEST_F(CrashResumeTest, MidRunKillResumesToIdenticalExports) {
  // Sweep kill points until one lands after at least one committed shard:
  // every crash must converge to the reference bytes, and at least one must
  // exercise the recovered path (verified sections adopted, not re-run).
  bool recovered_some = false;
  for (const std::uint64_t kill : {12u, 30u, 80u, 200u}) {
    const auto dir = FreshDir("mid" + std::to_string(kill));
    const int rc = RunAndKill(/*workers=*/1, dir.string(), kill);
    if (rc != 137) {  // kill point past the run's total write count
      fs::remove_all(dir);
      continue;
    }
    const Deployment* dep = nullptr;
    EXPECT_EQ(ResumeAndExport(/*workers=*/4, dir.string(), &dep), *reference_csv_)
        << "kill at write " << kill;
    ASSERT_NE(dep->recovery(), nullptr);
    recovered_some |= dep->recovery()->sections_verified > 0;
    fs::remove_all(dir);
  }
  EXPECT_TRUE(recovered_some);
}

TEST_F(CrashResumeTest, LateKillAndDoubleCrashStillConverge) {
  const auto dir = FreshDir("late");
  ASSERT_EQ(RunAndKill(/*workers=*/4, dir.string(), /*kill_at_write=*/40), 137);
  // Crash the *resume* too: the second generation must recover the first's
  // progress and still converge.
  const int second = RunAndKill(/*workers=*/1, dir.string(), /*kill_at_write=*/20);
  ASSERT_TRUE(second == 137 || second == 0) << second;
  EXPECT_EQ(ResumeAndExport(/*workers=*/4, dir.string()), *reference_csv_);
  fs::remove_all(dir);
}

TEST_F(CrashResumeTest, ResumeOfACompletedRunIsANoOpWithSameBytes) {
  const auto dir = FreshDir("done");
  // Let the run finish normally, then resume the finished directory.
  EXPECT_EQ(ExportAllCsv(Deployment::RunStudy(FleetStudy(2, dir.string()))->repository()),
            *reference_csv_);
  const Deployment* dep = nullptr;
  EXPECT_EQ(ResumeAndExport(/*workers=*/2, dir.string(), &dep), *reference_csv_);
  ASSERT_NE(dep->recovery(), nullptr);
  EXPECT_EQ(dep->recovery()->shards_dropped, 0u);
  EXPECT_EQ(dep->recovery()->sections_quarantined, 0u);
  fs::remove_all(dir);
}

TEST_F(CrashResumeTest, ResumeWithDriftedOptionsIsRefused) {
  const auto dir = FreshDir("drift");
  ASSERT_EQ(RunAndKill(/*workers=*/2, dir.string(), /*kill_at_write=*/4), 137);
  DeploymentOptions drifted = FleetStudy(2, dir.string());
  drifted.resume = true;
  drifted.seed = 999;  // not the run the manifest records
  EXPECT_THROW(Deployment::RunStudy(std::move(drifted)), std::runtime_error);
  fs::remove_all(dir);
}

TEST_F(CrashResumeTest, ResumeWithoutFleetModeIsRefused) {
  DeploymentOptions options;
  options.seed = 1;
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2013, 3, 1}), 1);
  options.roster_scale = 0.2;
  options.resume = true;  // no budget, no spill dir
  EXPECT_THROW(Deployment::RunStudy(std::move(options)), std::runtime_error);
}

}  // namespace
}  // namespace bismark
