// End-to-end study: run the full deployment over compressed windows and
// check that the paper's headline *shapes* (DESIGN.md §4) emerge from the
// measured data sets — not from ground truth.
#include <gtest/gtest.h>

#include "analysis/diurnal.h"
#include "analysis/downtime.h"
#include "analysis/infrastructure.h"
#include "analysis/usage.h"
#include "analysis/utilization.h"
#include "home/deployment.h"

namespace bismark {
namespace {

using home::Deployment;
using home::DeploymentOptions;

/// Shared fixture: one full-roster run over shortened windows (8 weeks of
/// heartbeats, 2 weeks of traffic) so the whole suite stays fast.
class FullStudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DeploymentOptions options;
    options.seed = 20131023;  // IMC'13 opening day
    options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 8);
    deployment_ = Deployment::RunStudy(options).release();
  }
  static void TearDownTestSuite() {
    delete deployment_;
    deployment_ = nullptr;
  }

  static const collect::DataRepository& repo() { return deployment_->repository(); }
  static Deployment* deployment_;
};

Deployment* FullStudyTest::deployment_ = nullptr;

TEST_F(FullStudyTest, RosterMatchesTable1) {
  EXPECT_EQ(repo().homes().size(), 126u);
  int developed = 0, developing = 0;
  for (const auto& h : repo().homes()) (h.developed ? developed : developing)++;
  EXPECT_EQ(developed, 90);
  EXPECT_EQ(developing, 36);
}

TEST_F(FullStudyTest, AllDatasetsPopulated) {
  const auto counts = repo().counts();
  EXPECT_GT(counts.heartbeat_runs, 126u);
  EXPECT_GT(counts.uptime, 1000u);
  EXPECT_GT(counts.capacity, 1000u);
  EXPECT_GT(counts.device_counts, 10000u);
  EXPECT_GT(counts.wifi_scans, 10000u);
  EXPECT_GT(counts.flows, 1000u);
  EXPECT_GT(counts.throughput_minutes, 1000u);
  EXPECT_GT(counts.dns, 100u);
  EXPECT_GT(counts.device_traffic, 25u);
}

// --- Section 4: availability ---

TEST_F(FullStudyTest, Fig3_DevelopingHasFarMoreFrequentDowntime) {
  const auto homes = analysis::AnalyzeAvailability(repo(), {Minutes(10), 10.0});
  const auto cdfs = analysis::DowntimeFrequencyCdfs(homes);
  ASSERT_GT(cdfs.developed.size(), 20u);
  ASSERT_GT(cdfs.developing.size(), 10u);
  const double dev_median = cdfs.developed.median();
  const double dvg_median = cdfs.developing.median();
  // Developed: median gap > a month => < ~0.033 downtimes/day.
  EXPECT_LT(dev_median, 0.05);
  // Developing: the median home fails at least every few days, and the
  // regional gap is an order of magnitude (the paper's headline claim).
  EXPECT_GT(dvg_median, 0.3);
  EXPECT_GT(dvg_median, dev_median * 10.0);
}

TEST_F(FullStudyTest, Fig4_MedianDowntimeDurationIsTensOfMinutes) {
  const auto homes = analysis::AnalyzeAvailability(repo(), {Minutes(10), 10.0});
  const auto cdfs = analysis::DowntimeDurationCdfs(homes);
  // Median downtime ~30 min; developing tails heavier.
  EXPECT_GT(cdfs.developed.median(), 10 * 60.0);
  EXPECT_LT(cdfs.developed.median(), 4 * 3600.0);
  EXPECT_GE(cdfs.developing.quantile(0.9), cdfs.developed.quantile(0.9));
}

TEST_F(FullStudyTest, Fig5_IndiaAndPakistanWorst) {
  const auto homes = analysis::AnalyzeAvailability(repo(), {Minutes(10), 10.0});
  std::vector<std::pair<std::string, double>> gdp;
  for (const auto& c : home::StandardRoster()) gdp.emplace_back(c.code, c.gdp_ppp_per_capita);
  const auto rows = analysis::CountryDowntimeScatter(homes, gdp, 3);
  ASSERT_GE(rows.size(), 4u);
  // Rows are sorted by GDP: the two poorest countries with >= 3 routers
  // should be IN and PK, and both should out-downtime every developed row.
  double worst_developed = 0.0;
  double in_downtimes = 0.0, pk_downtimes = 0.0;
  for (const auto& row : rows) {
    if (row.developed) worst_developed = std::max(worst_developed, row.median_downtimes);
    if (row.country_code == "IN") in_downtimes = row.median_downtimes;
    if (row.country_code == "PK") pk_downtimes = row.median_downtimes;
  }
  EXPECT_GT(in_downtimes, worst_developed);
  EXPECT_GT(pk_downtimes, worst_developed);
}

TEST_F(FullStudyTest, Sec42_RouterOnFractions) {
  const auto homes = analysis::AnalyzeAvailability(repo(), {Minutes(10), 10.0});
  std::vector<std::pair<std::string, double>> gdp;
  for (const auto& c : home::StandardRoster()) gdp.emplace_back(c.code, c.gdp_ppp_per_capita);
  const auto rows = analysis::CountryDowntimeScatter(homes, gdp, 3);
  double us_online = 0.0, in_online = 1.0;
  for (const auto& row : rows) {
    if (row.country_code == "US") us_online = row.median_online_fraction;
    if (row.country_code == "IN") in_online = row.median_online_fraction;
  }
  EXPECT_GT(us_online, 0.95);  // paper: 98.25 %
  // India's median home is clearly less available than the US's (paper:
  // 76 % vs 98 %); the gap size is seed-sensitive at 12 homes, the
  // ordering is not.
  EXPECT_LT(in_online, us_online - 0.03);
  EXPECT_GT(in_online, 0.5);
}

// --- Section 5: infrastructure ---

TEST_F(FullStudyTest, Fig7_MedianHomeHasAtLeastFiveDevices) {
  const auto cdf = analysis::UniqueDevicesCdf(repo());
  ASSERT_GT(cdf.size(), 80u);
  EXPECT_GE(cdf.median(), 4.0);
  EXPECT_LE(cdf.median(), 8.0);
  const double mean = analysis::MeanUniqueDevices(repo());
  EXPECT_GT(mean, 4.5);  // paper: ~7 on average
  EXPECT_LT(mean, 10.0);
}

TEST_F(FullStudyTest, Fig8_MoreWirelessThanWired_DevelopedHasMore) {
  const auto dev = analysis::ConnectedDevices(repo(), true);
  const auto dvg = analysis::ConnectedDevices(repo(), false);
  EXPECT_GT(dev.wireless.mean, dev.wired.mean);
  EXPECT_GT(dvg.wireless.mean, dvg.wired.mean);
  // Developed homes hold roughly one more concurrent device.
  EXPECT_GT(dev.wired.mean + dev.wireless.mean, dvg.wired.mean + dvg.wireless.mean + 0.4);
  // Average wired ports in use < 1 in both regions (Section 5.2).
  EXPECT_LT(dev.wired.mean, 1.5);
  EXPECT_LT(dvg.wired.mean, 1.0);
}

TEST_F(FullStudyTest, Fig9_24GHzCarriesMoreDevices) {
  const auto dev = analysis::ConnectedWireless(repo(), true);
  EXPECT_GT(dev.band24.mean, dev.band5.mean);
}

TEST_F(FullStudyTest, Fig10_UniqueDevicesPerBandMedians) {
  const auto cdfs = analysis::UniqueDevicesPerBand(repo());
  EXPECT_GE(cdfs.band24.median(), 3.0);  // paper: 5
  EXPECT_LE(cdfs.band24.median(), 7.0);
  EXPECT_LE(cdfs.band5.median(), 3.0);   // paper: 2
  EXPECT_GT(cdfs.band24.median(), cdfs.band5.median());
}

TEST_F(FullStudyTest, Fig11_NeighborhoodCrowding) {
  const auto cdfs = analysis::NeighborAps(repo());
  ASSERT_GT(cdfs.developed.size(), 30u);
  ASSERT_GT(cdfs.developing.size(), 5u);
  // Developed median ~20, developing ~2.
  EXPECT_GT(cdfs.developed.median(), 8.0);
  EXPECT_LT(cdfs.developing.median(), 6.0);
  EXPECT_GT(cdfs.developed.median(), cdfs.developing.median() * 3.0);
}

TEST_F(FullStudyTest, Table5_AlwaysConnectedDevices) {
  const auto table = analysis::AlwaysConnected(repo());
  ASSERT_GT(table.developed.total_homes, 50);
  ASSERT_GT(table.developing.total_homes, 20);
  // Developed: ~43 % wired / ~20 % wireless. Developing: ~12 % both.
  EXPECT_GT(table.developed.wired_fraction(), 0.2);
  EXPECT_LT(table.developed.wired_fraction(), 0.65);
  EXPECT_LT(table.developing.wired_fraction(), 0.3);
  EXPECT_GT(table.developed.wired_fraction(), table.developing.wired_fraction());
  EXPECT_GE(table.developed.wireless_fraction(), table.developing.wireless_fraction());
}

// --- Section 6: usage ---

TEST_F(FullStudyTest, Fig13_WeekdayDiurnalStrongerThanWeekend) {
  const auto profile = analysis::WirelessDiurnalProfile(repo());
  EXPECT_GT(profile.weekday_peak(), profile.weekday_trough());
  EXPECT_GT(profile.weekday_swing(), profile.weekend_swing());
  // Evening peak: the max should land between 17:00 and 23:00.
  std::size_t peak_hour = 0;
  for (std::size_t h = 1; h < 24; ++h) {
    if (profile.weekday[h] > profile.weekday[peak_hour]) peak_hour = h;
  }
  EXPECT_GE(peak_hour, 17u);
  EXPECT_LE(peak_hour, 23u);
}

TEST_F(FullStudyTest, Fig15_MostHomesDoNotSaturate) {
  const auto points = analysis::LinkSaturation(repo());
  ASSERT_GE(points.size(), 15u);
  int down_saturated = 0;
  int up_oversaturated = 0;
  int under_half_down = 0;
  for (const auto& p : points) {
    if (p.utilization_down_p95 >= 0.95) ++down_saturated;
    if (p.utilization_up_p95 > 1.05) ++up_oversaturated;
    if (p.utilization_down_p95 < 0.5) ++under_half_down;
  }
  // "At the 95th percentile, only two homes saturate the link and most
  // homes use less than 50% of the available capacity."
  EXPECT_LE(down_saturated, 4);
  EXPECT_GE(under_half_down, static_cast<int>(points.size()) / 2);
  // Fig. 16: a couple of homes exceed their measured uplink capacity.
  EXPECT_GE(up_oversaturated, 1);
  EXPECT_LE(up_oversaturated, 4);
}

TEST_F(FullStudyTest, Fig17_DominantDeviceCarriesMostTraffic) {
  const auto conc = analysis::DeviceUsageShares(repo());
  ASSERT_GT(conc.homes, 15);
  ASSERT_GE(conc.share_by_rank.size(), 2u);
  EXPECT_GT(conc.share_by_rank[0], 0.45);  // paper: ~60-65 %
  EXPECT_LT(conc.share_by_rank[0], 0.85);
  EXPECT_GT(conc.share_by_rank[0], conc.share_by_rank[1] * 2.0);
}

TEST_F(FullStudyTest, Fig18_UsualSuspectsConsistentlyPopular) {
  const auto prevalence = analysis::TopDomainPrevalence(repo());
  ASSERT_GE(prevalence.size(), 10u);
  // Google/YouTube/Facebook-class domains should be top-10 in most homes.
  int found_universal = 0;
  for (const auto& p : prevalence) {
    if (p.homes_top10 >= 10) ++found_universal;
  }
  EXPECT_GE(found_universal, 2);
  // Long tail: many domains popular in only one or two homes.
  int tail = 0;
  for (const auto& p : prevalence) {
    if (p.homes_top10 <= 2) ++tail;
  }
  EXPECT_GE(tail, 10);
}

TEST_F(FullStudyTest, Fig19_TopDomainVolumeVsConnections) {
  const auto conc = analysis::DomainUsageShares(repo());
  ASSERT_GT(conc.homes, 15);
  ASSERT_GE(conc.by_rank.size(), 2u);
  // Top domain ~38 % of volume but far fewer connections.
  EXPECT_GT(conc.by_rank[0].volume_share, 0.22);
  EXPECT_LT(conc.by_rank[0].volume_share, 0.55);
  EXPECT_LT(conc.by_rank[0].conns_by_vol_rank, conc.by_rank[0].volume_share);
  // Whitelist coverage ~65 % of volume.
  EXPECT_GT(conc.whitelisted_volume_share, 0.5);
  EXPECT_LT(conc.whitelisted_volume_share, 0.85);
}

TEST_F(FullStudyTest, Fig12_AppleAndIntelDominateVendors) {
  const auto histogram = analysis::VendorHistogram(repo());
  ASSERT_GE(histogram.size(), 5u);
  // Apple leads the Fig. 12 histogram.
  EXPECT_EQ(histogram.front().vendor, net::VendorClass::kApple);
}

TEST_F(FullStudyTest, Fig20_StreamerConcentratesOnFewDomains) {
  const auto roku = analysis::FindDeviceByVendor(repo(), net::VendorClass::kInternetTv);
  if (roku == net::MacAddress{}) GTEST_SKIP() << "no streaming device in this sample";
  const auto profile = analysis::DeviceDomainProfile(repo(), roku);
  ASSERT_FALSE(profile.empty());
  // A streaming box sends nearly everything to streaming domains.
  double top3 = 0.0;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, profile.size()); ++i) {
    top3 += profile[i].share;
  }
  EXPECT_GT(top3, 0.5);
}

}  // namespace
}  // namespace bismark
