// Packet-plumbing integration: DHCP lease -> wireless association ->
// NAT translation -> reply attribution, across every LAN substrate at
// once — the per-packet path the bulk simulation abstracts into chunks.
#include <gtest/gtest.h>

#include "bismark/gateway.h"
#include "traffic/device_types.h"

namespace bismark {
namespace {

using namespace bismark::net;
using namespace bismark::gateway;

const TimePoint t0 = MakeTime({2013, 4, 1}, 20, 0, 0);

class PacketPathTest : public ::testing::Test {
 protected:
  PacketPathTest()
      : catalog_(traffic::DomainCatalog::BuildStandard()),
        anonymizer_(catalog_, {}),
        link_(AccessLinkConfig{Mbps(20), Mbps(4)}),
        gateway_([this] {
          GatewayConfig cfg;
          cfg.home = collect::HomeId{1};
          return cfg;
        }(), link_, anonymizer_, nullptr) {
    catalog_.install_zones(zones_);
  }

  traffic::DomainCatalog catalog_;
  ZoneCatalog zones_;
  Anonymizer anonymizer_;
  AccessLink link_;
  Gateway gateway_;
};

TEST_F(PacketPathTest, WirelessDeviceFullRoundTrip) {
  // 1. A phone associates on 2.4 GHz and gets a DHCP lease.
  const MacAddress phone = MacAddress::FromParts(0x38AA3C, 0x1234);
  ASSERT_TRUE(gateway_.radio(wireless::Band::k2_4GHz).associate(phone, t0));
  const auto lease = gateway_.dhcp().acquire(phone, t0);
  ASSERT_TRUE(lease.has_value());
  ASSERT_TRUE(lease->address.is_private());

  // 2. It resolves a domain through the home's DNS path.
  DnsResolver resolver(zones_);
  const DnsResponse response = resolver.resolve("facebook.com", t0);
  ASSERT_FALSE(response.nxdomain);
  const Ipv4Address remote = *response.address();

  // 3. The first packet is NATted onto the WAN address.
  Packet syn;
  syn.timestamp = t0;
  syn.tuple = {lease->address, remote, 49152, 443, Protocol::kTcp};
  syn.size = B(64);
  syn.lan_mac = phone;
  ASSERT_TRUE(gateway_.nat().translate_outbound(syn));
  EXPECT_EQ(syn.tuple.src_ip, gateway_.nat().config().wan_address);
  EXPECT_FALSE(syn.tuple.src_ip.is_private());

  // 4. The reply finds its way back to the phone, with attribution.
  Packet reply;
  reply.timestamp = t0 + Millis(80);
  reply.tuple = syn.tuple.reversed();
  reply.direction = Direction::kDownstream;
  ASSERT_TRUE(gateway_.nat().translate_inbound(reply));
  EXPECT_EQ(reply.tuple.dst_ip, lease->address);
  EXPECT_EQ(reply.lan_mac, phone);

  // 5. The gateway can map the WAN port back to the offending device —
  //    the Section 7 security-alert use case.
  const auto owner = gateway_.nat().owner_of_port(syn.tuple.src_port, Protocol::kTcp);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, phone);
}

TEST_F(PacketPathTest, WiredAndWirelessDevicesShareOneWanAddress) {
  // A wired desktop and two wireless clients all surf at once; outside the
  // NAT they are one host.
  struct Dev {
    MacAddress mac;
    bool wired;
  };
  const Dev devs[] = {
      {MacAddress::FromParts(0x0024D7, 1), true},
      {MacAddress::FromParts(0x7CD1C3, 2), false},
      {MacAddress::FromParts(0x000D4B, 3), false},
  };
  const Ipv4Address remote(93, 184, 216, 34);

  std::vector<std::uint16_t> wan_ports;
  for (const auto& dev : devs) {
    if (dev.wired) {
      ASSERT_TRUE(gateway_.ethernet().plug_in(dev.mac, t0).has_value());
    } else {
      ASSERT_TRUE(gateway_.radio(wireless::Band::k2_4GHz).associate(dev.mac, t0));
    }
    const auto lease = gateway_.dhcp().acquire(dev.mac, t0);
    ASSERT_TRUE(lease.has_value());

    Packet pkt;
    pkt.timestamp = t0;
    pkt.tuple = {lease->address, remote, 50000, 80, Protocol::kTcp};
    pkt.lan_mac = dev.mac;
    ASSERT_TRUE(gateway_.nat().translate_outbound(pkt));
    EXPECT_EQ(pkt.tuple.src_ip, gateway_.nat().config().wan_address);
    wan_ports.push_back(pkt.tuple.src_port);
  }
  // Distinct devices, distinct WAN ports, one IP.
  EXPECT_NE(wan_ports[0], wan_ports[1]);
  EXPECT_NE(wan_ports[1], wan_ports[2]);
  EXPECT_EQ(gateway_.ethernet().ports_in_use(), 1);
  EXPECT_EQ(gateway_.radio(wireless::Band::k2_4GHz).client_count(), 2u);

  // Each reply still reaches the right device.
  for (std::size_t i = 0; i < 3; ++i) {
    Packet reply;
    reply.timestamp = t0 + Seconds(1);
    reply.tuple = {remote, gateway_.nat().config().wan_address, 80, wan_ports[i],
                   Protocol::kTcp};
    reply.direction = Direction::kDownstream;
    ASSERT_TRUE(gateway_.nat().translate_inbound(reply));
    EXPECT_EQ(reply.lan_mac, devs[i].mac);
  }
}

TEST_F(PacketPathTest, DeviceChurnRecyclesResources) {
  // Devices come and go; leases and mappings must not leak.
  Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    const MacAddress mac =
        MacAddress::FromParts(0x001EC2, static_cast<std::uint32_t>(round % 7 + 1));
    const TimePoint now = t0 + Minutes(10 * round);
    gateway_.radio(wireless::Band::k2_4GHz).associate(mac, now);
    const auto lease = gateway_.dhcp().acquire(mac, now);
    ASSERT_TRUE(lease.has_value());
    Packet pkt;
    pkt.timestamp = now;
    pkt.tuple = {lease->address, Ipv4Address(1, 2, 3, 4),
                 static_cast<std::uint16_t>(40000 + round), 443, Protocol::kUdp};
    pkt.lan_mac = mac;
    ASSERT_TRUE(gateway_.nat().translate_outbound(pkt));
    if (rng.bernoulli(0.5)) {
      gateway_.radio(wireless::Band::k2_4GHz).disassociate(mac);
    }
    gateway_.nat().expire_idle(now);
  }
  // Only 7 distinct devices: the DHCP pool holds exactly 7 leases, and the
  // NAT's UDP mappings expired down to the recent ones.
  EXPECT_EQ(gateway_.dhcp().active_leases(), 7u);
  EXPECT_LE(gateway_.nat().active_mappings(), 3u);
  EXPECT_EQ(gateway_.nat().stats().mappings_created,
            gateway_.nat().stats().mappings_expired + gateway_.nat().active_mappings());
}

}  // namespace
}  // namespace bismark
