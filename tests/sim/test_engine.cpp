#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "sim/engine.h"

namespace bismark::sim {
namespace {

const TimePoint t0 = MakeTime({2013, 4, 1});

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine engine(t0);
  std::vector<int> order;
  engine.schedule_at(t0 + Seconds(3), [&] { order.push_back(3); });
  engine.schedule_at(t0 + Seconds(1), [&] { order.push_back(1); });
  engine.schedule_at(t0 + Seconds(2), [&] { order.push_back(2); });
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), t0 + Seconds(10));
}

TEST(EngineTest, SimultaneousEventsFifo) {
  Engine engine(t0);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(t0 + Seconds(1), [&order, i] { order.push_back(i); });
  }
  engine.run_until(t0 + Seconds(2));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, NowAdvancesDuringCallbacks) {
  Engine engine(t0);
  TimePoint observed{};
  engine.schedule_after(Minutes(5), [&] { observed = engine.now(); });
  engine.run_until(t0 + Hours(1));
  EXPECT_EQ(observed, t0 + Minutes(5));
}

TEST(EngineTest, EventsCanScheduleEvents) {
  Engine engine(t0);
  int fired = 0;
  engine.schedule_at(t0 + Seconds(1), [&] {
    ++fired;
    engine.schedule_after(Seconds(1), [&] { ++fired; });
  });
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, RunUntilStopsAtBoundary) {
  Engine engine(t0);
  int fired = 0;
  engine.schedule_at(t0 + Seconds(5), [&] { ++fired; });
  engine.schedule_at(t0 + Seconds(15), [&] { ++fired; });
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_until(t0 + Seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, EventAtExactBoundaryFires) {
  Engine engine(t0);
  int fired = 0;
  engine.schedule_at(t0 + Seconds(10), [&] { ++fired; });
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, PastEventsClampToNow) {
  Engine engine(t0);
  int fired = 0;
  engine.run_until(t0 + Seconds(100));
  engine.schedule_at(t0 + Seconds(1), [&] { ++fired; });  // in the past
  engine.run_until(t0 + Seconds(200));
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine engine(t0);
  int fired = 0;
  EventHandle handle = engine.schedule_at(t0 + Seconds(5), [&] { ++fired; });
  EXPECT_TRUE(handle.active());
  handle.cancel();
  EXPECT_FALSE(handle.active());
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired, 0);
}

TEST(EngineTest, RepeatingEventsFireAtPeriod) {
  Engine engine(t0);
  std::vector<TimePoint> fires;
  engine.schedule_every(Minutes(10), [&](TimePoint t) { fires.push_back(t); });
  engine.run_until(t0 + Minutes(35));
  ASSERT_EQ(fires.size(), 4u);  // 0, 10, 20, 30
  EXPECT_EQ(fires[0], t0);
  EXPECT_EQ(fires[3], t0 + Minutes(30));
}

TEST(EngineTest, RepeatingWithPhaseOffset) {
  Engine engine(t0);
  std::vector<TimePoint> fires;
  engine.schedule_every(Minutes(10), [&](TimePoint t) { fires.push_back(t); }, Minutes(3));
  engine.run_until(t0 + Minutes(25));
  ASSERT_EQ(fires.size(), 3u);  // 3, 13, 23
  EXPECT_EQ(fires[0], t0 + Minutes(3));
}

TEST(EngineTest, CancellingRepeatingStopsFutureFires) {
  Engine engine(t0);
  int fired = 0;
  EventHandle handle = engine.schedule_every(Minutes(1), [&](TimePoint) { ++fired; });
  engine.run_until(t0 + Minutes(3) + Seconds(30));
  EXPECT_EQ(fired, 4);
  handle.cancel();
  engine.run_until(t0 + Minutes(30));
  EXPECT_EQ(fired, 4);
}

TEST(EngineTest, CancelFromWithinCallback) {
  Engine engine(t0);
  int fired = 0;
  EventHandle handle;
  handle = engine.schedule_every(Minutes(1), [&](TimePoint) {
    ++fired;
    if (fired == 2) handle.cancel();
  });
  engine.run_until(t0 + Hours(1));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, StepExecutesOneEvent) {
  Engine engine(t0);
  int fired = 0;
  engine.schedule_at(t0 + Seconds(1), [&] { ++fired; });
  engine.schedule_at(t0 + Seconds(2), [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(engine.step());
}

TEST(EngineTest, ExecutedCounter) {
  Engine engine(t0);
  for (int i = 0; i < 7; ++i) engine.schedule_after(Seconds(i), [] {});
  engine.run_until(t0 + Minutes(1));
  EXPECT_EQ(engine.executed(), 7u);
  EXPECT_EQ(engine.pending(), 0u);
}

// Regression: the old engine only checked the *top* event's deadline, then
// step()ed — which skipped cancelled tombstones and ran the next live event
// even when it lay past the horizon. A cancelled early event must never
// open the gate for a later one.
TEST(EngineTest, RunUntilDoesNotExecutePastHorizon) {
  Engine engine(t0);
  int fired = 0;
  EventHandle early = engine.schedule_at(t0 + Seconds(5), [&] { ++fired; });
  engine.schedule_at(t0 + Seconds(15), [&] { ++fired; });
  early.cancel();
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(engine.now(), t0 + Seconds(10));
  EXPECT_EQ(engine.cancelled(), 1u);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_until(t0 + Seconds(20));
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, CancelledEventsLeaveTheQueue) {
  Engine engine(t0);
  EventHandle a = engine.schedule_at(t0 + Seconds(1), [] {});
  EventHandle b = engine.schedule_at(t0 + Seconds(2), [] {});
  EXPECT_EQ(engine.pending(), 2u);
  a.cancel();
  EXPECT_EQ(engine.pending(), 1u);
  b.cancel();
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.cancelled(), 2u);
}

// A handle that already fired is stale: cancelling it must be a no-op even
// when its arena slot has since been handed to a new event.
TEST(EngineTest, CancelAfterFireIsNoOp) {
  Engine engine(t0);
  int fired_a = 0;
  int fired_b = 0;
  EventHandle a = engine.schedule_at(t0 + Seconds(1), [&] { ++fired_a; });
  engine.run_until(t0 + Seconds(2));
  EXPECT_EQ(fired_a, 1);
  EXPECT_FALSE(a.active());
  // The freed slot is at the head of the free list, so b reuses it.
  EventHandle b = engine.schedule_at(t0 + Seconds(5), [&] { ++fired_b; });
  a.cancel();
  EXPECT_TRUE(b.active());
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired_b, 1);
  EXPECT_EQ(engine.cancelled(), 0u);
}

// Regression: the old schedule_every closure held a shared_ptr to its own
// control block, so cancelled repeating events leaked their captures until
// engine teardown. The arena re-arms in place: one closure for the life of
// the event, destroyed the moment it is cancelled.
TEST(EngineTest, CancelledRepeatingClosureStateIsDestroyed) {
  Engine engine(t0);
  auto state = std::make_shared<int>(0);
  EventHandle h = engine.schedule_every(Minutes(1), [state](TimePoint) { ++*state; });
  EXPECT_EQ(state.use_count(), 2);
  engine.run_until(t0 + Minutes(3));
  EXPECT_EQ(*state, 4);  // 0, 1, 2, 3 minutes
  EXPECT_EQ(state.use_count(), 2);  // re-armed in place, no closure copies
  h.cancel();
  EXPECT_EQ(state.use_count(), 1);  // capture released immediately
}

TEST(EngineTest, OneShotClosureStateDestroyedAfterFire) {
  Engine engine(t0);
  auto state = std::make_shared<int>(0);
  engine.schedule_at(t0 + Seconds(1), [state] { ++*state; });
  EXPECT_EQ(state.use_count(), 2);
  engine.run_until(t0 + Seconds(2));
  EXPECT_EQ(*state, 1);
  EXPECT_EQ(state.use_count(), 1);
}

// The sharded runner drives many homes through one engine via reset():
// stale handles from before the reset must be inert, counters must read
// fresh, and the retained arena must serve new events.
TEST(EngineTest, ResetReusesArenaAcrossShards) {
  Engine engine(t0);
  int fired = 0;
  EventHandle h = engine.schedule_every(Minutes(1), [&](TimePoint) { ++fired; });
  engine.schedule_at(t0 + Hours(2), [&] { ++fired; });  // never reached
  engine.run_until(t0 + Minutes(2));
  EXPECT_EQ(fired, 3);

  const TimePoint t1 = MakeTime({2013, 5, 1});
  engine.reset(t1);
  EXPECT_EQ(engine.now(), t1);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.executed(), 0u);
  EXPECT_EQ(engine.scheduled(), 0u);
  EXPECT_EQ(engine.cancelled(), 0u);
  EXPECT_FALSE(h.active());

  int fired2 = 0;
  engine.schedule_at(t1 + Seconds(1), [&] { ++fired2; });
  h.cancel();  // stale generation: must not touch the slot's new tenant
  engine.run_until(t1 + Seconds(10));
  EXPECT_EQ(fired2, 1);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(engine.cancelled(), 0u);
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(EngineTest, LargeCallbacksSpillToHeap) {
  Engine engine(t0);
  std::array<char, 128> big{};
  big[0] = 1;
  int fired = 0;
  engine.schedule_at(t0 + Seconds(1), [&fired, big] { fired += big[0]; });
  EXPECT_GE(engine.callbacks_heap(), 1u);
  engine.schedule_at(t0 + Seconds(2), [&fired] { ++fired; });
  EXPECT_GE(engine.callbacks_inline(), 1u);
  engine.run_until(t0 + Seconds(5));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, HeavyLoadStaysOrdered) {
  Engine engine(t0);
  TimePoint last{};
  bool ordered = true;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    engine.schedule_at(t0 + Seconds(rng.uniform(0, 10000)), [&] {
      if (engine.now() < last) ordered = false;
      last = engine.now();
    });
  }
  engine.run_until(t0 + Hours(3));
  EXPECT_TRUE(ordered);
  EXPECT_EQ(engine.executed(), 20000u);
}

}  // namespace
}  // namespace bismark::sim
