#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"
#include "sim/engine.h"

namespace bismark::sim {
namespace {

const TimePoint t0 = MakeTime({2013, 4, 1});

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine engine(t0);
  std::vector<int> order;
  engine.schedule_at(t0 + Seconds(3), [&] { order.push_back(3); });
  engine.schedule_at(t0 + Seconds(1), [&] { order.push_back(1); });
  engine.schedule_at(t0 + Seconds(2), [&] { order.push_back(2); });
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), t0 + Seconds(10));
}

TEST(EngineTest, SimultaneousEventsFifo) {
  Engine engine(t0);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(t0 + Seconds(1), [&order, i] { order.push_back(i); });
  }
  engine.run_until(t0 + Seconds(2));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, NowAdvancesDuringCallbacks) {
  Engine engine(t0);
  TimePoint observed{};
  engine.schedule_after(Minutes(5), [&] { observed = engine.now(); });
  engine.run_until(t0 + Hours(1));
  EXPECT_EQ(observed, t0 + Minutes(5));
}

TEST(EngineTest, EventsCanScheduleEvents) {
  Engine engine(t0);
  int fired = 0;
  engine.schedule_at(t0 + Seconds(1), [&] {
    ++fired;
    engine.schedule_after(Seconds(1), [&] { ++fired; });
  });
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, RunUntilStopsAtBoundary) {
  Engine engine(t0);
  int fired = 0;
  engine.schedule_at(t0 + Seconds(5), [&] { ++fired; });
  engine.schedule_at(t0 + Seconds(15), [&] { ++fired; });
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_until(t0 + Seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, EventAtExactBoundaryFires) {
  Engine engine(t0);
  int fired = 0;
  engine.schedule_at(t0 + Seconds(10), [&] { ++fired; });
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, PastEventsClampToNow) {
  Engine engine(t0);
  int fired = 0;
  engine.run_until(t0 + Seconds(100));
  engine.schedule_at(t0 + Seconds(1), [&] { ++fired; });  // in the past
  engine.run_until(t0 + Seconds(200));
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine engine(t0);
  int fired = 0;
  EventHandle handle = engine.schedule_at(t0 + Seconds(5), [&] { ++fired; });
  EXPECT_TRUE(handle.active());
  handle.cancel();
  EXPECT_FALSE(handle.active());
  engine.run_until(t0 + Seconds(10));
  EXPECT_EQ(fired, 0);
}

TEST(EngineTest, RepeatingEventsFireAtPeriod) {
  Engine engine(t0);
  std::vector<TimePoint> fires;
  engine.schedule_every(Minutes(10), [&](TimePoint t) { fires.push_back(t); });
  engine.run_until(t0 + Minutes(35));
  ASSERT_EQ(fires.size(), 4u);  // 0, 10, 20, 30
  EXPECT_EQ(fires[0], t0);
  EXPECT_EQ(fires[3], t0 + Minutes(30));
}

TEST(EngineTest, RepeatingWithPhaseOffset) {
  Engine engine(t0);
  std::vector<TimePoint> fires;
  engine.schedule_every(Minutes(10), [&](TimePoint t) { fires.push_back(t); }, Minutes(3));
  engine.run_until(t0 + Minutes(25));
  ASSERT_EQ(fires.size(), 3u);  // 3, 13, 23
  EXPECT_EQ(fires[0], t0 + Minutes(3));
}

TEST(EngineTest, CancellingRepeatingStopsFutureFires) {
  Engine engine(t0);
  int fired = 0;
  EventHandle handle = engine.schedule_every(Minutes(1), [&](TimePoint) { ++fired; });
  engine.run_until(t0 + Minutes(3) + Seconds(30));
  EXPECT_EQ(fired, 4);
  handle.cancel();
  engine.run_until(t0 + Minutes(30));
  EXPECT_EQ(fired, 4);
}

TEST(EngineTest, CancelFromWithinCallback) {
  Engine engine(t0);
  int fired = 0;
  EventHandle handle;
  handle = engine.schedule_every(Minutes(1), [&](TimePoint) {
    ++fired;
    if (fired == 2) handle.cancel();
  });
  engine.run_until(t0 + Hours(1));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, StepExecutesOneEvent) {
  Engine engine(t0);
  int fired = 0;
  engine.schedule_at(t0 + Seconds(1), [&] { ++fired; });
  engine.schedule_at(t0 + Seconds(2), [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(engine.step());
}

TEST(EngineTest, ExecutedCounter) {
  Engine engine(t0);
  for (int i = 0; i < 7; ++i) engine.schedule_after(Seconds(i), [] {});
  engine.run_until(t0 + Minutes(1));
  EXPECT_EQ(engine.executed(), 7u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(EngineTest, HeavyLoadStaysOrdered) {
  Engine engine(t0);
  TimePoint last{};
  bool ordered = true;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    engine.schedule_at(t0 + Seconds(rng.uniform(0, 10000)), [&] {
      if (engine.now() < last) ordered = false;
      last = engine.now();
    });
  }
  engine.run_until(t0 + Hours(3));
  EXPECT_TRUE(ordered);
  EXPECT_EQ(engine.executed(), 20000u);
}

}  // namespace
}  // namespace bismark::sim
