// Property sweep: availability-timeline invariants must hold for every
// country in the roster, every power mode, across seeds.
#include <gtest/gtest.h>

#include "home/availability.h"

namespace bismark::home {
namespace {

const TimePoint kBegin = MakeTime({2012, 10, 1});
const TimePoint kEnd = kBegin + Days(42);

class AvailabilityPerCountryTest : public ::testing::TestWithParam<std::string> {
 protected:
  const CountryProfile& country() const { return CountryByCode(GetParam()); }
};

TEST_P(AvailabilityPerCountryTest, TimelineInvariantsAcrossModesAndSeeds) {
  const auto& c = country();
  const TimeZone tz{c.utc_offset};
  for (auto mode : {RouterPowerMode::kAlwaysOn, RouterPowerMode::kNightOff,
                    RouterPowerMode::kAppliance}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto tl = AvailabilityModel::Generate(c, mode, tz, kBegin, kEnd, Rng(seed));
      // Window containment.
      for (const auto& iv : tl.router_on.intervals()) {
        ASSERT_GE(iv.start, kBegin);
        ASSERT_LE(iv.end, kEnd);
        ASSERT_LT(iv.start, iv.end);
      }
      // The home is never *online* with the router off.
      const IntervalSet online = tl.online();
      ASSERT_LE(online.total().ms, tl.router_on.total().ms);
      ASSERT_LE(online.total().ms, tl.isp_up.total().ms);
      // Some availability exists in every mode (no degenerate all-off home).
      ASSERT_GT(online.total().hours(), 1.0)
          << c.code << " mode " << static_cast<int>(mode) << " seed " << seed;
      // Fractions are sane.
      const double frac = tl.router_on_fraction();
      ASSERT_GE(frac, 0.0);
      ASSERT_LE(frac, 1.0);
    }
  }
}

TEST_P(AvailabilityPerCountryTest, PowerModeOrderingHolds) {
  const auto& c = country();
  const TimeZone tz{c.utc_offset};
  double always = 0.0, night = 0.0, appliance = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    always += AvailabilityModel::Generate(c, RouterPowerMode::kAlwaysOn, tz, kBegin, kEnd,
                                          Rng(seed))
                  .router_on_fraction();
    night += AvailabilityModel::Generate(c, RouterPowerMode::kNightOff, tz, kBegin, kEnd,
                                         Rng(seed))
                 .router_on_fraction();
    appliance += AvailabilityModel::Generate(c, RouterPowerMode::kAppliance, tz, kBegin,
                                             kEnd, Rng(seed))
                     .router_on_fraction();
  }
  // Always-on > night-off > appliance, for every country.
  EXPECT_GT(always, night);
  EXPECT_GT(night, appliance);
}

TEST_P(AvailabilityPerCountryTest, ModeMixtureMatchesProfile) {
  const auto& c = country();
  Rng rng(17);
  int counts[3] = {0, 0, 0};
  const int n = 6000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<int>(AvailabilityModel::DrawMode(c, rng))];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, c.frac_always_on, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, c.frac_appliance, 0.03);
}

INSTANTIATE_TEST_SUITE_P(AllCountries, AvailabilityPerCountryTest,
                         ::testing::Values("CA", "DE", "FR", "GB", "IE", "IT", "JP", "NL",
                                           "SG", "US", "IN", "PK", "MY", "ZA", "MX", "CN",
                                           "BR", "ID", "TH"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace bismark::home
