#include <gtest/gtest.h>

#include <set>

#include "home/country.h"

namespace bismark::home {
namespace {

TEST(CountryTest, RosterMatchesTable1) {
  const auto& roster = StandardRoster();
  EXPECT_EQ(roster.size(), 19u);  // 19 countries
  EXPECT_EQ(TotalRouters(), 126);

  int developed = 0, developing = 0;
  int developed_routers = 0, developing_routers = 0;
  for (const auto& c : roster) {
    (c.developed ? developed : developing)++;
    (c.developed ? developed_routers : developing_routers) += c.router_count;
  }
  EXPECT_EQ(developed, 10);
  EXPECT_EQ(developing, 9);
  EXPECT_EQ(developed_routers, 90);
  EXPECT_EQ(developing_routers, 36);
}

TEST(CountryTest, Table1RouterCounts) {
  EXPECT_EQ(CountryByCode("US").router_count, 63);
  EXPECT_EQ(CountryByCode("GB").router_count, 12);
  EXPECT_EQ(CountryByCode("IN").router_count, 12);
  EXPECT_EQ(CountryByCode("ZA").router_count, 10);
  EXPECT_EQ(CountryByCode("PK").router_count, 5);
  EXPECT_EQ(CountryByCode("NL").router_count, 3);
  EXPECT_EQ(CountryByCode("MY").router_count, 1);
}

TEST(CountryTest, GdpSplitMatchesDevelopedFlag) {
  // The paper splits on GDP-per-capita rank; in our roster every developed
  // country out-earns every developing one.
  double min_developed = 1e12, max_developing = 0;
  for (const auto& c : StandardRoster()) {
    if (c.developed) {
      min_developed = std::min(min_developed, c.gdp_ppp_per_capita);
    } else {
      max_developing = std::max(max_developing, c.gdp_ppp_per_capita);
    }
  }
  EXPECT_GT(min_developed, max_developing);
}

TEST(CountryTest, IndiaAndPakistanPoorest) {
  double min_gdp = 1e12;
  std::string poorest;
  for (const auto& c : StandardRoster()) {
    if (c.gdp_ppp_per_capita < min_gdp) {
      min_gdp = c.gdp_ppp_per_capita;
      poorest = c.code;
    }
  }
  EXPECT_EQ(poorest, "PK");
  EXPECT_LT(CountryByCode("IN").gdp_ppp_per_capita, 6000);
}

TEST(CountryTest, AvailabilityParamsOrdered) {
  // Developing countries must be configured for worse availability.
  const auto& us = CountryByCode("US");
  const auto& in = CountryByCode("IN");
  const auto& pk = CountryByCode("PK");
  EXPECT_GT(us.frac_always_on, in.frac_always_on);
  EXPECT_GT(in.isp_outages_per_day, us.isp_outages_per_day * 5);
  EXPECT_GT(pk.isp_outages_per_day, in.isp_outages_per_day);
}

TEST(CountryTest, MixtureProbabilitiesValid) {
  for (const auto& c : StandardRoster()) {
    EXPECT_GE(c.frac_always_on, 0.0) << c.code;
    EXPECT_GE(c.frac_appliance, 0.0) << c.code;
    EXPECT_LE(c.frac_always_on + c.frac_appliance, 1.0) << c.code;
    EXPECT_GT(c.isp_outages_per_day, 0.0) << c.code;
    EXPECT_GT(c.mean_devices, 1.0) << c.code;
    EXPECT_GT(c.down_mbps_hi, c.down_mbps_lo) << c.code;
    EXPECT_GT(c.up_fraction_hi, c.up_fraction_lo) << c.code;
  }
}

TEST(CountryTest, TimezonesRoughlyRight) {
  EXPECT_EQ(CountryByCode("US").utc_offset, Hours(-5));
  EXPECT_EQ(CountryByCode("IN").utc_offset, Hours(5.5));
  EXPECT_EQ(CountryByCode("CN").utc_offset, Hours(8));
  EXPECT_EQ(CountryByCode("GB").utc_offset, Hours(0));
}

TEST(CountryTest, UnknownCodeThrows) {
  EXPECT_THROW((void)CountryByCode("XX"), std::out_of_range);
}

TEST(CountryTest, CodesUnique) {
  std::set<std::string> codes;
  for (const auto& c : StandardRoster()) codes.insert(c.code);
  EXPECT_EQ(codes.size(), StandardRoster().size());
}

TEST(CountryTest, DevelopedNeighborhoodsDenser) {
  const auto& us = CountryByCode("US");
  const auto& in = CountryByCode("IN");
  EXPECT_GT(us.neighborhood.dense_mean_24, in.neighborhood.dense_mean_24);
  EXPECT_GT(us.neighborhood.dense_prob, in.neighborhood.dense_prob);
}

}  // namespace
}  // namespace bismark::home
