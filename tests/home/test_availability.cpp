#include <gtest/gtest.h>

#include "core/stats.h"
#include "home/availability.h"

namespace bismark::home {
namespace {

const TimePoint kBegin = MakeTime({2012, 10, 1});
const TimePoint kEnd = kBegin + Days(56);

AvailabilityTimeline Gen(const std::string& code, RouterPowerMode mode, std::uint64_t seed,
                         AvailabilityOptions options = {}) {
  const auto& country = CountryByCode(code);
  return AvailabilityModel::Generate(country, mode, TimeZone{country.utc_offset}, kBegin, kEnd,
                                     Rng(seed), options);
}

TEST(AvailabilityTest, AlwaysOnNearFullCoverage) {
  AvailabilityOptions no_vacation;
  no_vacation.vacation_prob = 0.0;
  RunningStats fractions;
  for (int seed = 0; seed < 50; ++seed) {
    fractions.add(Gen("US", RouterPowerMode::kAlwaysOn, seed, no_vacation)
                      .router_on_fraction());
  }
  EXPECT_GT(fractions.min(), 0.995);  // only minute-scale reboots
}

TEST(AvailabilityTest, AlwaysOnWithVacationStillHigh) {
  AvailabilityOptions always_vacation;
  always_vacation.vacation_prob = 1.0;
  const auto tl = Gen("US", RouterPowerMode::kAlwaysOn, 3, always_vacation);
  EXPECT_LT(tl.router_on_fraction(), 0.99);
  EXPECT_GT(tl.router_on_fraction(), 0.8);  // at most ~7 of 56 days gone
}

TEST(AvailabilityTest, NightOffFractionRange) {
  RunningStats fractions;
  for (int seed = 0; seed < 50; ++seed) {
    fractions.add(Gen("IN", RouterPowerMode::kNightOff, seed).router_on_fraction());
  }
  // Nightly 3-10h power-downs most nights: ~60-90 % uptime (paper's India
  // median is 76 %).
  EXPECT_GT(fractions.mean(), 0.6);
  EXPECT_LT(fractions.mean(), 0.9);
}

TEST(AvailabilityTest, ApplianceFractionLow) {
  RunningStats fractions;
  for (int seed = 0; seed < 50; ++seed) {
    fractions.add(Gen("CN", RouterPowerMode::kAppliance, seed).router_on_fraction());
  }
  EXPECT_LT(fractions.mean(), 0.4);
  EXPECT_GT(fractions.mean(), 0.05);
}

TEST(AvailabilityTest, ApplianceEveningConcentrated) {
  // Fig. 6b: the router is available briefly in the evenings.
  const auto& cn = CountryByCode("CN");
  const TimeZone tz{cn.utc_offset};
  const auto tl = Gen("CN", RouterPowerMode::kAppliance, 7);
  Duration evening_on{0}, morning_on{0};
  for (const auto& iv : tl.router_on.intervals()) {
    const int hour = tz.local_hour(iv.start);
    if (hour >= 16 && hour <= 21) evening_on += iv.length();
    if (hour >= 0 && hour <= 5) morning_on += iv.length();
  }
  EXPECT_GT(evening_on.hours(), morning_on.hours() * 3);
}

TEST(AvailabilityTest, ApplianceWeekendsLonger) {
  const auto& cn = CountryByCode("CN");
  const TimeZone tz{cn.utc_offset};
  RunningStats weekday_h, weekend_h;
  for (int seed = 0; seed < 30; ++seed) {
    const auto tl = Gen("CN", RouterPowerMode::kAppliance, 100 + seed);
    TimePoint day = tz.local_midnight(kBegin);
    while (day + Days(1) <= kEnd) {
      const double on_h = tl.router_on.covered_within(day, day + Days(1)).hours();
      (IsWeekend(tz.local_weekday(day + Hours(12))) ? weekend_h : weekday_h).add(on_h);
      day += Days(1);
    }
  }
  EXPECT_GT(weekend_h.mean(), weekday_h.mean() * 1.3);
}

TEST(AvailabilityTest, IspOutageRateTracksCountry) {
  RunningStats us_outages, pk_outages;
  for (int seed = 0; seed < 40; ++seed) {
    us_outages.add(static_cast<double>(
        Gen("US", RouterPowerMode::kAlwaysOn, seed).isp_up.size()));
    pk_outages.add(static_cast<double>(
        Gen("PK", RouterPowerMode::kAlwaysOn, seed).isp_up.size()));
  }
  // Segments = outages + 1; Pakistan is configured ~30x worse than the US.
  EXPECT_GT(pk_outages.mean(), us_outages.mean() * 8);
}

TEST(AvailabilityTest, OnlineIsIntersection) {
  const auto tl = Gen("IN", RouterPowerMode::kNightOff, 11);
  const IntervalSet online = tl.online();
  // Online fraction can never exceed either component.
  const double on_frac = tl.router_on.coverage_fraction(kBegin, kEnd);
  const double isp_frac = tl.isp_up.coverage_fraction(kBegin, kEnd);
  const double online_frac = online.coverage_fraction(kBegin, kEnd);
  EXPECT_LE(online_frac, on_frac + 1e-12);
  EXPECT_LE(online_frac, isp_frac + 1e-12);
  // Spot-check pointwise consistency.
  for (int h = 0; h < 56 * 24; h += 7) {
    const TimePoint t = kBegin + Hours(h);
    EXPECT_EQ(tl.available_at(t), tl.router_on.contains(t) && tl.isp_up.contains(t));
  }
}

TEST(AvailabilityTest, FlakyEpisodeAddsClusteredOutages) {
  AvailabilityOptions flaky;
  flaky.flaky_episode_prob = 1.0;
  AvailabilityOptions calm;
  calm.flaky_episode_prob = 0.0;
  RunningStats flaky_outages, calm_outages;
  for (int seed = 0; seed < 30; ++seed) {
    flaky_outages.add(static_cast<double>(
        Gen("US", RouterPowerMode::kAlwaysOn, seed, flaky).isp_up.size()));
    calm_outages.add(static_cast<double>(
        Gen("US", RouterPowerMode::kAlwaysOn, seed, calm).isp_up.size()));
  }
  // Fig. 6c: several days of sporadic outages on an otherwise-healthy link.
  EXPECT_GT(flaky_outages.mean(), calm_outages.mean() + 5.0);
}

TEST(AvailabilityTest, DrawModeFollowsMixture) {
  const auto& us = CountryByCode("US");
  Rng rng(13);
  int always = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (AvailabilityModel::DrawMode(us, rng) == RouterPowerMode::kAlwaysOn) ++always;
  }
  EXPECT_NEAR(static_cast<double>(always) / n, us.frac_always_on, 0.02);
}

TEST(AvailabilityTest, DeterministicForSeed) {
  const auto a = Gen("IN", RouterPowerMode::kNightOff, 21);
  const auto b = Gen("IN", RouterPowerMode::kNightOff, 21);
  ASSERT_EQ(a.router_on.size(), b.router_on.size());
  for (std::size_t i = 0; i < a.router_on.size(); ++i) {
    EXPECT_EQ(a.router_on.intervals()[i].start, b.router_on.intervals()[i].start);
  }
}

TEST(AvailabilityTest, TimelinesStayInWindow) {
  for (auto mode : {RouterPowerMode::kAlwaysOn, RouterPowerMode::kNightOff,
                    RouterPowerMode::kAppliance}) {
    const auto tl = Gen("IN", mode, 31);
    for (const auto& iv : tl.router_on.intervals()) {
      EXPECT_GE(iv.start, kBegin);
      EXPECT_LE(iv.end, kEnd);
    }
    for (const auto& iv : tl.isp_up.intervals()) {
      EXPECT_GE(iv.start, kBegin);
      EXPECT_LE(iv.end, kEnd);
    }
  }
}

}  // namespace
}  // namespace bismark::home
