// Fleet-mode deployment invariants: the --homes roster apportionment, the
// bounded-memory spill path's byte-identity with the in-RAM path, and
// worker-count independence of the spilled exports.
#include <unistd.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "collect/export.h"
#include "home/deployment.h"

namespace bismark::home {
namespace {

DeploymentOptions BaseOptions() {
  DeploymentOptions options;
  options.seed = 4242;
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 1);
  return options;
}

std::string ExportAllToString(const collect::DataRepository& repo) {
  std::ostringstream out;
  collect::ExportHeartbeats(repo, out);
  collect::ExportUptime(repo, out);
  collect::ExportCapacity(repo, out);
  collect::ExportDevices(repo, out);
  collect::ExportWifi(repo, out);
  collect::ExportTrafficFlows(repo, out);
  return out.str();
}

std::filesystem::path FreshSpillDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("bsmk-test-fleet-") + tag + "-" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(FleetRoster, Homes126ReproducesDefaultRoster) {
  auto by_scale = BaseOptions();
  const auto a = Deployment::RunStudy(by_scale);

  auto by_homes = BaseOptions();
  by_homes.homes = 126;
  const auto b = Deployment::RunStudy(by_homes);

  // The largest-remainder apportionment at N=126 must reproduce the
  // default Table 1 roster bit-for-bit: same homes, same records.
  EXPECT_EQ(b->roster_size(), 126u);
  EXPECT_EQ(a->repository().homes().size(), b->repository().homes().size());
  EXPECT_EQ(ExportAllToString(a->repository()), ExportAllToString(b->repository()));
}

TEST(FleetRoster, ApportionmentTracksCountryMix) {
  auto options = BaseOptions();
  options.homes = 1260;  // 10x: every country's share scales exactly
  options.run_traffic = false;
  const auto study = Deployment::RunStudy(options);
  EXPECT_EQ(study->roster_size(), 1260u);

  auto reference = BaseOptions();
  reference.run_traffic = false;
  const auto base = Deployment::RunStudy(reference);

  // Count homes per country in both rosters.
  std::map<std::string, int> big, small;
  for (const auto& h : study->repository().homes()) big[h.country_code]++;
  for (const auto& h : base->repository().homes()) small[h.country_code]++;
  ASSERT_EQ(big.size(), small.size());
  for (const auto& [cc, n] : small) {
    EXPECT_EQ(big[cc], 10 * n) << "country " << cc;
  }
}

TEST(FleetMode, SpilledExportsMatchInRam) {
  auto in_ram = BaseOptions();
  in_ram.homes = 48;
  const auto a = Deployment::RunStudy(in_ram);
  const std::string golden = ExportAllToString(a->repository());
  ASSERT_FALSE(golden.empty());

  for (const int workers : {1, 3}) {
    auto fleet = BaseOptions();
    fleet.homes = 48;
    fleet.memory_budget_bytes = 1 << 20;  // tiny: forces mid-shard flushes
    fleet.workers = workers;
    const auto dir = FreshSpillDir(workers == 1 ? "w1" : "w3");
    fleet.spill_dir = dir.string();
    const auto b = Deployment::RunStudy(fleet);

    EXPECT_TRUE(b->repository().spilling());
    EXPECT_EQ(ExportAllToString(b->repository()), golden) << "workers=" << workers;
    // Fleet homes register from worker threads; the canonical order and
    // metadata must match the in-RAM registration exactly.
    ASSERT_EQ(b->repository().homes().size(), a->repository().homes().size());
    for (std::size_t i = 0; i < a->repository().homes().size(); ++i) {
      EXPECT_EQ(b->repository().homes()[i], a->repository().homes()[i]) << "home " << i;
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(FleetMode, ChurnAndConsentSurviveTheSpillPath) {
  auto options = BaseOptions();
  options.homes = 48;
  options.memory_budget_bytes = 1 << 20;
  const auto dir = FreshSpillDir("consent");
  options.spill_dir = dir.string();
  const auto study = Deployment::RunStudy(options);

  int consented = 0;
  for (const auto& h : study->repository().homes()) consented += h.consented_traffic;
  // Traffic consent is pinned to the first 25 US homes regardless of N.
  EXPECT_GT(consented, 0);
  EXPECT_LE(consented, 25);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bismark::home
