#include <gtest/gtest.h>

#include "core/stats.h"
#include "home/device.h"

namespace bismark::home {
namespace {

const TimePoint kBegin = MakeTime({2013, 3, 6});
const TimePoint kEnd = kBegin + Days(14);
const TimeZone kTz{Hours(-5)};

DeviceSpec WirelessSpec(bool always_on = false, bool dual_band = false) {
  DeviceSpec spec;
  spec.type = traffic::DeviceType::kLaptop;
  spec.mac = net::MacAddress::FromParts(0x001EC2, 1);
  spec.wired = false;
  spec.dual_band = dual_band;
  spec.always_on = always_on;
  return spec;
}

TEST(DeviceFactoryTest, AlwaysOnPresenceCoversWindow) {
  Rng rng(1);
  const auto presence =
      DeviceFactory::GeneratePresence(WirelessSpec(true), kTz, kBegin, kEnd, rng);
  ASSERT_EQ(presence.size(), 1u);
  EXPECT_EQ(presence[0].when.start, kBegin);
  EXPECT_EQ(presence[0].when.end, kEnd);
}

TEST(DeviceFactoryTest, IntermittentPresenceWithinWindow) {
  Rng rng(2);
  const auto presence =
      DeviceFactory::GeneratePresence(WirelessSpec(), kTz, kBegin, kEnd, rng);
  EXPECT_GT(presence.size(), 5u);
  for (const auto& p : presence) {
    EXPECT_GE(p.when.start, kBegin);
    EXPECT_LE(p.when.end, kEnd);
    EXPECT_FALSE(p.when.empty());
  }
}

TEST(DeviceFactoryTest, PresenceSortedByStart) {
  Rng rng(3);
  const auto presence =
      DeviceFactory::GeneratePresence(WirelessSpec(), kTz, kBegin, kEnd, rng);
  for (std::size_t i = 1; i < presence.size(); ++i) {
    EXPECT_GE(presence[i].when.start, presence[i - 1].when.start);
  }
}

TEST(DeviceFactoryTest, SingleBandDevicesStayOn24) {
  Rng rng(4);
  DeviceSpec spec = WirelessSpec(false, false);
  const auto presence = DeviceFactory::GeneratePresence(spec, kTz, kBegin, kEnd, rng);
  for (const auto& p : presence) EXPECT_EQ(p.band, wireless::Band::k2_4GHz);
}

TEST(DeviceFactoryTest, DualBandDevicesPrefer5GHz) {
  int on5 = 0, total = 0;
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    const auto presence =
        DeviceFactory::GeneratePresence(WirelessSpec(false, true), kTz, kBegin, kEnd, rng);
    for (const auto& p : presence) {
      ++total;
      if (p.band == wireless::Band::k5GHz) ++on5;
    }
  }
  ASSERT_GT(total, 100);
  const double frac5 = static_cast<double>(on5) / total;
  EXPECT_GT(frac5, 0.5);
  EXPECT_LT(frac5, 0.9);  // still falls back to 2.4 sometimes
}

TEST(DeviceFactoryTest, EveningPresenceDominates) {
  RunningStats evening, predawn;
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    Device device(WirelessSpec(),
                  DeviceFactory::GeneratePresence(WirelessSpec(), kTz, kBegin, kEnd, rng));
    int ev = 0, pd = 0;
    for (int day = 0; day < 14; ++day) {
      const TimePoint midnight = kTz.local_midnight(kBegin + Days(day) + Hours(12));
      if (device.wants_online(midnight + Hours(20))) ++ev;
      if (device.wants_online(midnight + Hours(4.5))) ++pd;
    }
    evening.add(ev);
    predawn.add(pd);
  }
  EXPECT_GT(evening.mean(), predawn.mean() * 2);
}

TEST(DeviceFactoryTest, PhonesOftenPresentOvernight) {
  DeviceSpec phone = WirelessSpec();
  phone.type = traffic::DeviceType::kSmartPhone;
  DeviceSpec printer = WirelessSpec();
  printer.type = traffic::DeviceType::kPrinter;
  RunningStats phone_night, printer_night;
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng1(seed), rng2(seed + 1000);
    Device p(phone, DeviceFactory::GeneratePresence(phone, kTz, kBegin, kEnd, rng1));
    Device q(printer, DeviceFactory::GeneratePresence(printer, kTz, kBegin, kEnd, rng2));
    int pn = 0, qn = 0;
    for (int day = 1; day < 14; ++day) {
      const TimePoint night = kTz.local_midnight(kBegin + Days(day) + Hours(12)) + Hours(3);
      if (p.wants_online(night)) ++pn;
      if (q.wants_online(night)) ++qn;
    }
    phone_night.add(pn);
    printer_night.add(qn);
  }
  // Fig. 13: the shallow night dip comes from phones charging overnight.
  EXPECT_GT(phone_night.mean(), printer_night.mean() * 1.5);
}

TEST(DeviceTest, BandQueries) {
  std::vector<PresenceInterval> presence = {
      {{kBegin + Hours(1), kBegin + Hours(2)}, wireless::Band::k2_4GHz},
      {{kBegin + Hours(3), kBegin + Hours(4)}, wireless::Band::k5GHz},
  };
  Device device(WirelessSpec(false, true), presence);
  EXPECT_EQ(device.band_at(kBegin + Hours(1.5)), wireless::Band::k2_4GHz);
  EXPECT_EQ(device.band_at(kBegin + Hours(3.5)), wireless::Band::k5GHz);
  EXPECT_EQ(device.band_at(kBegin + Hours(2.5)), std::nullopt);
  EXPECT_TRUE(device.ever_on_band(wireless::Band::k2_4GHz));
  EXPECT_TRUE(device.ever_on_band(wireless::Band::k5GHz));
}

TEST(DeviceTest, WiredDevicesHaveNoBand) {
  DeviceSpec spec = WirelessSpec();
  spec.wired = true;
  std::vector<PresenceInterval> presence = {
      {{kBegin, kEnd}, wireless::Band::k2_4GHz},
  };
  Device device(spec, presence);
  EXPECT_EQ(device.band_at(kBegin + Hours(1)), std::nullopt);
  EXPECT_FALSE(device.ever_on_band(wireless::Band::k2_4GHz));
  EXPECT_TRUE(device.wants_online(kBegin + Hours(1)));
}

TEST(DeviceTest, PresenceFraction) {
  std::vector<PresenceInterval> presence = {
      {{kBegin, kBegin + Days(7)}, wireless::Band::k2_4GHz},
  };
  Device device(WirelessSpec(), presence);
  EXPECT_NEAR(device.presence_fraction(kBegin, kEnd), 0.5, 1e-9);
  EXPECT_NEAR(device.presence_fraction(kBegin, kBegin + Days(7)), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(device.presence_fraction(kEnd, kBegin), 0.0);
}

TEST(DeviceFactoryTest, DrawSpecAlwaysOnScaling) {
  int always_full = 0, always_scaled = 0;
  const int n = 4000;
  Rng rng1(5), rng2(6);
  for (int i = 0; i < n; ++i) {
    if (DeviceFactory::DrawSpec(true, 1.0, rng1).always_on) ++always_full;
    if (DeviceFactory::DrawSpec(true, 0.3, rng2).always_on) ++always_scaled;
  }
  // Developing-country scaling (Table 5's asymmetry) cuts always-on odds.
  EXPECT_GT(always_full, always_scaled * 2);
}

TEST(DeviceFactoryTest, DrawSpecMintsClassifiableMacs) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const auto spec = DeviceFactory::DrawSpec(true, 1.0, rng);
    EXPECT_EQ(net::OuiRegistry::Instance().classify(spec.mac), spec.vendor);
  }
}

}  // namespace
}  // namespace bismark::home
