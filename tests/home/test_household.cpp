#include <gtest/gtest.h>

#include "home/household.h"
#include "traffic/domains.h"

namespace bismark::home {
namespace {

class HouseholdTest : public ::testing::Test {
 protected:
  HouseholdTest()
      : catalog_(traffic::DomainCatalog::BuildStandard()),
        anonymizer_(catalog_, {}) {}

  std::unique_ptr<Household> MakeHome(const std::string& country, std::uint64_t seed,
                                      HouseholdOptions options = {}) {
    return std::make_unique<Household>(collect::HomeId{1}, CountryByCode(country), study_,
                                       presence_windows_, anonymizer_, nullptr, Rng(seed),
                                       options);
  }

  Interval study_{MakeTime({2012, 10, 1}), MakeTime({2012, 10, 1}) + Days(56)};
  std::vector<Interval> presence_windows_{
      {MakeTime({2012, 10, 1}), MakeTime({2012, 10, 1}) + Days(56)}};
  traffic::DomainCatalog catalog_;
  gateway::Anonymizer anonymizer_;
};

TEST_F(HouseholdTest, BuildsDevicesAndInfrastructure) {
  const auto home = MakeHome("US", 1);
  EXPECT_GE(home->devices().size(), 1u);
  EXPECT_GT(home->link().config().down_capacity.mbps(), 0.0);
  EXPECT_GT(home->link().config().up_capacity.mbps(), 0.0);
  EXPECT_LT(home->link().config().up_capacity.bps, home->link().config().down_capacity.bps);
}

TEST_F(HouseholdTest, DeterministicForSeed) {
  const auto a = MakeHome("US", 7);
  const auto b = MakeHome("US", 7);
  ASSERT_EQ(a->devices().size(), b->devices().size());
  for (std::size_t i = 0; i < a->devices().size(); ++i) {
    EXPECT_EQ(a->devices()[i].spec().mac, b->devices()[i].spec().mac);
    EXPECT_EQ(a->devices()[i].spec().type, b->devices()[i].spec().type);
  }
  EXPECT_EQ(a->power_mode(), b->power_mode());
}

TEST_F(HouseholdTest, MinDevicesEnforced) {
  HouseholdOptions options;
  options.min_devices = 3;
  for (int seed = 0; seed < 20; ++seed) {
    const auto home = std::make_unique<Household>(
        collect::HomeId{seed}, CountryByCode("US"), study_, presence_windows_, anonymizer_,
        nullptr, Rng(seed), options);
    EXPECT_GE(home->devices().size(), 3u);
  }
}

TEST_F(HouseholdTest, ForcedDeviceCount) {
  HouseholdOptions options;
  options.forced_device_count = 6;
  const auto home = MakeHome("US", 3, options);
  EXPECT_EQ(home->devices().size(), 6u);
}

TEST_F(HouseholdTest, CensusCountsRespectRouterPower) {
  HouseholdOptions options;
  options.forced_device_count = 8;
  const auto home = MakeHome("CN", 5, options);
  // Find a time the router is off; all counts must be zero there.
  bool found_off = false;
  for (int h = 0; h < 56 * 24 && !found_off; ++h) {
    const TimePoint t = study_.start + Hours(h);
    if (!home->timeline().router_on_at(t)) {
      found_off = true;
      EXPECT_EQ(home->wired_connected(t), 0);
      EXPECT_EQ(home->wireless_connected(wireless::Band::k2_4GHz, t), 0);
      EXPECT_EQ(home->wireless_connected(wireless::Band::k5GHz, t), 0);
    }
  }
  EXPECT_TRUE(found_off);
}

TEST_F(HouseholdTest, WiredCountCappedAtFourPorts) {
  HouseholdOptions options;
  options.forced_device_count = 30;  // force many wired devices
  const auto home = MakeHome("US", 11, options);
  for (int h = 0; h < 56 * 24; h += 3) {
    EXPECT_LE(home->wired_connected(study_.start + Hours(h)), 4);
  }
}

TEST_F(HouseholdTest, UniqueSeenGrowsMonotonically) {
  const auto home = MakeHome("US", 13);
  int prev = 0;
  for (int d = 1; d <= 56; d += 7) {
    const int seen = home->unique_seen_total(study_.start, study_.start + Days(d));
    EXPECT_GE(seen, prev);
    prev = seen;
  }
  EXPECT_LE(prev, static_cast<int>(home->devices().size()));
}

TEST_F(HouseholdTest, UniqueSeenBandsPartitionWireless) {
  const auto home = MakeHome("US", 17);
  const int on24 =
      home->unique_seen_band(wireless::Band::k2_4GHz, study_.start, study_.end);
  const int on5 = home->unique_seen_band(wireless::Band::k5GHz, study_.start, study_.end);
  int wireless_devices = 0;
  for (const auto& d : home->devices()) {
    if (!d.spec().wired) ++wireless_devices;
  }
  // A dual-band device can appear on both bands, so the sum may exceed the
  // device count but each side is bounded by it.
  EXPECT_LE(on24, wireless_devices);
  EXPECT_LE(on5, wireless_devices);
}

TEST_F(HouseholdTest, BufferbloatCaseConfiguration) {
  HouseholdOptions options;
  options.bufferbloat_case = true;
  options.consent = gateway::ConsentLevel::kFullTraffic;
  const auto home = MakeHome("US", 19, options);
  EXPECT_TRUE(home->bufferbloat_case());
  EXPECT_TRUE(home->link().config().allow_uplink_overdrive);
  EXPECT_EQ(home->power_mode(), RouterPowerMode::kAlwaysOn);
  // The dedicated uploader NAS exists and is always on.
  bool has_nas = false;
  for (const auto& d : home->devices()) {
    if (d.spec().type == traffic::DeviceType::kNas && d.spec().always_on) has_nas = true;
  }
  EXPECT_TRUE(has_nas);
}

TEST_F(HouseholdTest, AlwaysConnectedRequiresAlwaysOnRouter) {
  // An appliance-mode home cannot have always-connected devices no matter
  // what hardware it owns — the Table 5 mechanism.
  HouseholdOptions options;
  options.forced_device_count = 10;
  for (int seed = 0; seed < 10; ++seed) {
    auto home = std::make_unique<Household>(collect::HomeId{seed}, CountryByCode("CN"), study_,
                                            presence_windows_, anonymizer_, nullptr, Rng(seed),
                                            options);
    if (home->power_mode() == RouterPowerMode::kAppliance) {
      EXPECT_FALSE(home->has_always_connected(true, Interval{study_.start, study_.end}));
      EXPECT_FALSE(home->has_always_connected(false, Interval{study_.start, study_.end}));
    }
  }
}

TEST_F(HouseholdTest, MakeInfoReflectsGroundTruth) {
  const auto home = MakeHome("GB", 23);
  const auto info = home->make_info();
  EXPECT_EQ(info.country_code, "GB");
  EXPECT_TRUE(info.developed);
  EXPECT_EQ(info.utc_offset, Hours(0));
  EXPECT_FALSE(info.consented_traffic);
  EXPECT_NEAR(info.true_down_mbps, home->link().config().down_capacity.mbps(), 1e-9);
}

TEST_F(HouseholdTest, PrimaryDeviceIsHungryAndPresent) {
  HouseholdOptions options;
  options.forced_device_count = 8;
  const auto home = MakeHome("US", 29, options);
  const auto& primary = home->devices()[home->primary_device()];
  // The primary must be at least as attractive as any other device under
  // the same scoring.
  const double primary_score =
      primary.spec().hunger_scale *
      (0.25 + primary.presence_fraction(study_.start, study_.end));
  for (const auto& d : home->devices()) {
    const double score =
        d.spec().hunger_scale * (0.25 + d.presence_fraction(study_.start, study_.end));
    EXPECT_LE(score, primary_score + 1e-9);
  }
}

TEST_F(HouseholdTest, DistinctWanAddressesPerHome) {
  Household a(collect::HomeId{1}, CountryByCode("US"), study_, presence_windows_, anonymizer_,
              nullptr, Rng(1));
  Household b(collect::HomeId{2}, CountryByCode("US"), study_, presence_windows_, anonymizer_,
              nullptr, Rng(1));
  EXPECT_NE(a.router().nat().config().wan_address, b.router().nat().config().wan_address);
}

}  // namespace
}  // namespace bismark::home
