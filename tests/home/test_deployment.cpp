#include <gtest/gtest.h>

#include <set>

#include "analysis/downtime.h"

#include "home/deployment.h"

namespace bismark::home {
namespace {

DeploymentOptions FastOptions(std::uint64_t seed = 7, bool traffic = false) {
  DeploymentOptions options;
  options.seed = seed;
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2013, 3, 1}), 3);
  options.run_traffic = traffic;
  return options;
}

TEST(DeploymentTest, BuildsFullRoster) {
  Deployment deployment(FastOptions());
  deployment.build();
  EXPECT_EQ(deployment.households().size(), 126u);
  EXPECT_EQ(deployment.repository().homes().size(), 126u);
  // Every household registered with a matching id.
  for (const auto& home : deployment.households()) {
    EXPECT_NE(deployment.repository().find_home(home->id()), nullptr);
  }
}

TEST(DeploymentTest, Table2SubPopulationFlags) {
  Deployment deployment(FastOptions());
  deployment.build();
  int uptime = 0, wifi = 0, traffic_homes = 0;
  for (const auto& info : deployment.repository().homes()) {
    uptime += info.reports_uptime;
    wifi += info.reports_wifi;
    traffic_homes += info.consented_traffic;
  }
  EXPECT_EQ(uptime, 113);         // Table 2: Uptime/Devices routers
  EXPECT_EQ(wifi, 93);            // Table 2: WiFi routers
  EXPECT_EQ(traffic_homes, 25);   // Table 2: Traffic homes (US, consented)
}

TEST(DeploymentTest, TrafficConsentIsUsOnly) {
  Deployment deployment(FastOptions());
  deployment.build();
  for (const auto& info : deployment.repository().homes()) {
    if (info.consented_traffic) {
      EXPECT_EQ(info.country_code, "US");
    }
  }
}

TEST(DeploymentTest, BufferbloatHomesAreTrafficHomes) {
  Deployment deployment(FastOptions());
  deployment.build();
  int bufferbloat = 0;
  std::set<int> flavors;
  for (const auto& home : deployment.households()) {
    if (home->bufferbloat_case()) {
      ++bufferbloat;
      flavors.insert(home->bufferbloat_flavor());
      EXPECT_EQ(home->consent(), gateway::ConsentLevel::kFullTraffic);
      EXPECT_TRUE(home->link().config().allow_uplink_overdrive);
    }
  }
  EXPECT_EQ(bufferbloat, 2);
  EXPECT_EQ(flavors.size(), 2u);  // one constant (16a), one diurnal (16b)
}

TEST(DeploymentTest, RosterScaleShrinksDeployment) {
  DeploymentOptions options = FastOptions();
  options.roster_scale = 0.25;
  Deployment deployment(options);
  deployment.build();
  // Every country keeps at least one router; totals shrink accordingly.
  EXPECT_LT(deployment.households().size(), 60u);
  EXPECT_GE(deployment.households().size(), 19u);
  std::set<std::string> countries;
  for (const auto& info : deployment.repository().homes()) {
    countries.insert(info.country_code);
  }
  EXPECT_EQ(countries.size(), 19u);
}

TEST(DeploymentTest, DeterministicAcrossRuns) {
  Deployment a(FastOptions(42));
  a.build();
  Deployment b(FastOptions(42));
  b.build();
  ASSERT_EQ(a.households().size(), b.households().size());
  for (std::size_t i = 0; i < a.households().size(); ++i) {
    const auto& ha = *a.households()[i];
    const auto& hb = *b.households()[i];
    EXPECT_EQ(ha.devices().size(), hb.devices().size());
    EXPECT_EQ(ha.power_mode(), hb.power_mode());
    EXPECT_EQ(ha.timeline().router_on.size(), hb.timeline().router_on.size());
  }
}

TEST(DeploymentTest, DifferentSeedsDifferentWorlds) {
  Deployment a(FastOptions(1));
  a.build();
  Deployment b(FastOptions(2));
  b.build();
  int differing = 0;
  for (std::size_t i = 0; i < a.households().size(); ++i) {
    if (a.households()[i]->devices().size() != b.households()[i]->devices().size()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 20);
}

TEST(DeploymentTest, RunWithoutTrafficSkipsTrafficDatasets) {
  auto deployment = Deployment::RunStudy(FastOptions(7, false));
  const auto counts = deployment->repository().counts();
  EXPECT_GT(counts.heartbeat_runs, 0u);
  EXPECT_GT(counts.device_counts, 0u);
  EXPECT_EQ(counts.flows, 0u);
  EXPECT_EQ(counts.throughput_minutes, 0u);
}

TEST(DeploymentTest, AlwaysConnectedFlagsComputedAtBuild) {
  Deployment deployment(FastOptions());
  deployment.build();
  int with_wired = 0;
  for (const auto& info : deployment.repository().homes()) {
    if (info.has_always_wired) ++with_wired;
  }
  // Some developed homes qualify; never all homes.
  EXPECT_GT(with_wired, 10);
  EXPECT_LT(with_wired, 126);
}


TEST(DeploymentTest, ChurnHomesExistButFailTheLongevityFilter) {
  // The paper's Fig. 2: 295 routers ever contributed, 126 consistently.
  DeploymentOptions options = FastOptions(5);
  options.windows = collect::DatasetWindows::Compressed(MakeTime({2012, 10, 1}), 8);
  options.churn_homes = 30;
  auto deployment = Deployment::RunStudy(options);
  const auto& repo = deployment->repository();
  EXPECT_EQ(repo.homes().size(), 156u);  // 126 core + 30 churn

  // Churn homes do send heartbeats...
  std::set<int> reporting;
  for (const auto& run : repo.heartbeat_runs()) reporting.insert(run.home.value);
  EXPECT_GT(reporting.size(), 140u);

  // ...but the >= 25-days-online filter drops them from the analysis.
  const auto homes = analysis::AnalyzeAvailability(repo, {Minutes(10), 25.0});
  int churn_qualifying = 0;
  for (const auto& h : homes) {
    if (h.home.value >= 126) ++churn_qualifying;
  }
  EXPECT_EQ(churn_qualifying, 0);

  // Churn homes contribute no passive data sets.
  for (const auto& rec : repo.device_counts()) EXPECT_LT(rec.home.value, 126);
  for (const auto& rec : repo.capacity()) EXPECT_LT(rec.home.value, 126);
}

}  // namespace
}  // namespace bismark::home
