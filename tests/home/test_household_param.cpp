// Property sweep: household-assembly invariants for every roster country.
#include <gtest/gtest.h>

#include "home/household.h"
#include "traffic/domains.h"

namespace bismark::home {
namespace {

class HouseholdPerCountryTest : public ::testing::TestWithParam<std::string> {
 protected:
  HouseholdPerCountryTest()
      : catalog_(traffic::DomainCatalog::BuildStandard()), anonymizer_(catalog_, {}) {}

  std::unique_ptr<Household> MakeHome(std::uint64_t seed) {
    return std::make_unique<Household>(collect::HomeId{static_cast<int>(seed)},
                                       CountryByCode(GetParam()), study_, windows_,
                                       anonymizer_, nullptr, Rng(seed), HouseholdOptions{});
  }

  Interval study_{MakeTime({2012, 10, 1}), MakeTime({2012, 10, 1}) + Days(42)};
  std::vector<Interval> windows_{{MakeTime({2012, 10, 1}), MakeTime({2012, 10, 1}) + Days(42)}};
  traffic::DomainCatalog catalog_;
  gateway::Anonymizer anonymizer_;
};

TEST_P(HouseholdPerCountryTest, LinkCapacitiesWithinCountryBand) {
  const auto& country = CountryByCode(GetParam());
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto home = MakeHome(seed);
    const double down = home->link().config().down_capacity.mbps();
    const double up = home->link().config().up_capacity.mbps();
    ASSERT_GE(down, country.down_mbps_lo * 0.99);
    ASSERT_LE(down, country.down_mbps_hi * 1.01);
    ASSERT_GT(up, 0.0);
    ASSERT_LT(up, down);
  }
}

TEST_P(HouseholdPerCountryTest, DevicesHaveValidSpecs) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto home = MakeHome(seed);
    ASSERT_GE(home->devices().size(), 1u);
    ASSERT_LT(home->primary_device(), home->devices().size());
    for (const auto& device : home->devices()) {
      // MACs come from real OUIs of the drawn vendor class.
      ASSERT_EQ(net::OuiRegistry::Instance().classify(device.spec().mac),
                device.spec().vendor);
      // Wired devices are never dual-band.
      if (device.spec().wired) ASSERT_FALSE(device.spec().dual_band);
      // Presence intervals live inside the window.
      for (const auto& p : device.presence()) {
        ASSERT_GE(p.when.start, study_.start);
        ASSERT_LE(p.when.end, study_.end);
      }
    }
  }
}

TEST_P(HouseholdPerCountryTest, CensusNeverExceedsDeviceCount) {
  const auto home = MakeHome(3);
  const int devices = static_cast<int>(home->devices().size());
  for (int h = 0; h < 42 * 24; h += 11) {
    const TimePoint t = study_.start + Hours(h);
    const int total = home->wired_connected(t) +
                      home->wireless_connected(wireless::Band::k2_4GHz, t) +
                      home->wireless_connected(wireless::Band::k5GHz, t);
    ASSERT_LE(total, devices);
    ASSERT_GE(total, 0);
  }
  ASSERT_LE(home->unique_seen_total(study_.start, study_.end), devices);
}

TEST_P(HouseholdPerCountryTest, Channel24IsLegal) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto home = MakeHome(seed);
    const int ch = home->channel_24();
    ASSERT_TRUE(ch == 1 || ch == 6 || ch == 11) << ch;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCountries, HouseholdPerCountryTest,
                         ::testing::Values("US", "GB", "NL", "JP", "SG", "IN", "PK", "ZA",
                                           "CN", "BR"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace bismark::home
