#include <gtest/gtest.h>

#include "net/oui.h"

namespace bismark::net {
namespace {

TEST(OuiRegistryTest, KnownVendorsResolve) {
  const auto& reg = OuiRegistry::Instance();
  const MacAddress apple = MacAddress::FromParts(0x001EC2, 0x000001);
  ASSERT_TRUE(reg.manufacturer(apple).has_value());
  EXPECT_EQ(*reg.manufacturer(apple), "Apple");
  EXPECT_EQ(reg.classify(apple), VendorClass::kApple);

  const MacAddress roku = MacAddress::FromParts(0x000D4B, 0x123456);
  EXPECT_EQ(reg.classify(roku), VendorClass::kInternetTv);

  const MacAddress pi = MacAddress::FromParts(0xB827EB, 0x000042);
  EXPECT_EQ(reg.classify(pi), VendorClass::kRaspberryPi);
}

TEST(OuiRegistryTest, UnknownOuiIsUnknown) {
  const auto& reg = OuiRegistry::Instance();
  const MacAddress unknown = MacAddress::FromParts(0xFFFFFF, 0x000001);
  EXPECT_FALSE(reg.manufacturer(unknown).has_value());
  EXPECT_EQ(reg.classify(unknown), VendorClass::kUnknown);
}

TEST(OuiRegistryTest, ClassificationSurvivesAnonymization) {
  // The whole point of hashing only the low 24 bits (Section 3.2.2):
  // vendors stay identifiable on anonymised MACs.
  const auto& reg = OuiRegistry::Instance();
  const MacAddress samsung = MacAddress::FromParts(0x002399, 0xABCDEF);
  const MacAddress anon = samsung.anonymized(1234);
  EXPECT_EQ(reg.classify(anon), VendorClass::kSamsung);
}

TEST(OuiRegistryTest, OuisForClassNonEmptyForPaperClasses) {
  const auto& reg = OuiRegistry::Instance();
  // Every Fig. 12 class must have at least one registered OUI so the
  // simulator can mint realistic devices.
  for (int c = 0; c < static_cast<int>(VendorClass::kUnknown); ++c) {
    const auto ouis = reg.ouis_for(static_cast<VendorClass>(c));
    EXPECT_FALSE(ouis.empty()) << "no OUI for class " << VendorClassName(static_cast<VendorClass>(c));
  }
  EXPECT_TRUE(reg.ouis_for(VendorClass::kUnknown).empty());
}

TEST(OuiRegistryTest, MultipleOuisPerVendorAllClassify) {
  const auto& reg = OuiRegistry::Instance();
  for (const std::uint32_t oui : reg.ouis_for(VendorClass::kApple)) {
    EXPECT_EQ(reg.classify(MacAddress::FromParts(oui, 1)), VendorClass::kApple);
  }
  EXPECT_GE(reg.ouis_for(VendorClass::kApple).size(), 5u);
}

TEST(OuiRegistryTest, ClassNamesMatchPaperFigure12) {
  EXPECT_EQ(VendorClassName(VendorClass::kApple), "Apple");
  EXPECT_EQ(VendorClassName(VendorClass::kOdm), "ODM");
  EXPECT_EQ(VendorClassName(VendorClass::kSmartPhone), "Smart Phone");
  EXPECT_EQ(VendorClassName(VendorClass::kInternetTv), "Internet TV");
  EXPECT_EQ(VendorClassName(VendorClass::kHewlettPackard), "Hewlett-Packard");
  EXPECT_EQ(VendorClassName(VendorClass::kRaspberryPi), "Raspberry-Pi");
  EXPECT_EQ(VendorClassCount(), 19u);
}

TEST(OuiRegistryTest, NetgearClassifiedAsGateway) {
  // BISmark routers themselves are Netgear; Fig. 12 filters them out via
  // the gateway class.
  const auto& reg = OuiRegistry::Instance();
  EXPECT_EQ(reg.classify(MacAddress::FromParts(0x204E7F, 1)), VendorClass::kGateway);
}

}  // namespace
}  // namespace bismark::net
