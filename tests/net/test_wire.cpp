#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <random>
#include <vector>

#include "net/wire.h"

namespace bismark::net::wire {
namespace {

constexpr Ipv4Address kLan(192, 168, 1, 10);
constexpr Ipv4Address kWan(203, 0, 113, 1);
constexpr Ipv4Address kRemote(93, 184, 216, 34);

Packet MakePacket(Protocol proto, std::int64_t size_bytes, Direction dir = Direction::kUpstream) {
  Packet p;
  p.timestamp = MakeTime({2013, 4, 1}) + Seconds(1.5);
  // ICMP has no ports on the wire — only the echo id, which the codec maps
  // to the querying side's port; the other side stays 0.
  p.tuple = {kLan, kRemote, 30000, static_cast<std::uint16_t>(proto == Protocol::kIcmp ? 0 : 443),
             proto};
  p.size = Bytes{size_bytes};
  p.direction = dir;
  p.lan_mac = MacAddress::FromParts(0x001EC2, 7);
  return p;
}

/// Recompute the L4 checksum verification sum of an encoded frame: zero
/// means the stored checksum is consistent (RFC 1071 §4.1). TCP/UDP sums
/// include the pseudo-header; ICMP does not.
std::uint16_t L4VerifySum(std::span<const std::byte> frame) {
  const std::uint16_t total_length = GetU16(frame, kIpTotalLenOffset);
  const auto l4_length = static_cast<std::uint16_t>(total_length - kIpv4HeaderBytes);
  const auto proto = static_cast<std::uint8_t>(frame[kIpProtoOffset]);
  std::uint32_t seed = 0;
  if (proto == 6 || proto == 17) {
    const std::uint32_t s = GetU32(frame, kIpSrcOffset);
    const std::uint32_t d = GetU32(frame, kIpDstOffset);
    seed = (s >> 16) + (s & 0xffff) + (d >> 16) + (d & 0xffff) + proto + l4_length;
  }
  return InternetChecksum(frame.subspan(kL4Offset, l4_length), seed);
}

// --- RFC 1071 vectors --------------------------------------------------------

TEST(WireChecksum, Rfc1071KnownVector) {
  // The worked example from RFC 1071 §3: words 0001 f203 f4f5 f6f7 sum to
  // 0xddf2 before inversion.
  const std::array<std::byte, 8> data{std::byte{0x00}, std::byte{0x01}, std::byte{0xf2},
                                      std::byte{0x03}, std::byte{0xf4}, std::byte{0xf5},
                                      std::byte{0xf6}, std::byte{0xf7}};
  EXPECT_EQ(ChecksumFinish(ChecksumAccumulate(data)), 0x220d);
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(WireChecksum, OddLengthPadsWithZero) {
  // RFC 1071 §4.1: a trailing odd byte acts as the high byte of a final
  // zero-padded word.
  const std::array<std::byte, 3> odd{std::byte{0x12}, std::byte{0x34}, std::byte{0x56}};
  const std::array<std::byte, 4> padded{std::byte{0x12}, std::byte{0x34}, std::byte{0x56},
                                        std::byte{0x00}};
  EXPECT_EQ(InternetChecksum(odd), InternetChecksum(padded));
}

TEST(WireChecksum, VerificationSumOfChecksummedDataIsZero) {
  std::array<std::byte, 20> data{};
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(17 * i + 3);
  PutU16(data, 10, 0);
  const std::uint16_t csum = InternetChecksum(data);
  PutU16(data, 10, csum);
  EXPECT_EQ(InternetChecksum(data), 0);
}

TEST(WireChecksum, IncrementalUpdateMatchesFullRecompute) {
  // RFC 1624: for random header contents and random field edits, applying
  // the word deltas must land on exactly the freshly-computed checksum.
  std::mt19937 rng(20131023);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<std::byte, 20> data{};
    for (auto& b : data) b = static_cast<std::byte>(rng() & 0xff);
    PutU16(data, 10, 0);
    const std::uint16_t before = InternetChecksum(data);
    PutU16(data, 10, before);

    const std::uint32_t old_addr = GetU32(data, 12);
    const std::uint16_t old_word = GetU16(data, 4);
    const auto new_addr = static_cast<std::uint32_t>(rng());
    const auto new_word = static_cast<std::uint16_t>(rng() & 0xffff);
    PutU32(data, 12, new_addr);
    PutU16(data, 4, new_word);

    const std::uint32_t delta =
        ChecksumDelta32(old_addr, new_addr) + ChecksumDelta(old_word, new_word);
    const std::uint16_t incremental = ChecksumApply(before, delta);

    PutU16(data, 10, 0);
    EXPECT_EQ(incremental, InternetChecksum(data)) << "trial " << trial;
    PutU16(data, 10, incremental);
    EXPECT_EQ(InternetChecksum(data), 0);
  }
}

// --- Header round-trips ------------------------------------------------------

TEST(WireHeaders, EthernetRoundTrip) {
  EthernetHeader h;
  h.dst = MacAddress::FromParts(0x02b15a, 42);
  h.src = MacAddress::FromParts(0x001EC2, 7);
  std::array<std::byte, kEthernetHeaderBytes> buf{};
  ASSERT_EQ(EncodeEthernet(h, buf), kEthernetHeaderBytes);
  const auto parsed = ParseEthernet(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(WireHeaders, Ipv4RoundTripAndChecksum) {
  Ipv4Header h;
  h.total_length = 40;
  h.identification = 0xbeef;
  h.protocol = Protocol::kTcp;
  h.src = kLan;
  h.dst = kRemote;
  std::array<std::byte, kIpv4HeaderBytes> buf{};
  ASSERT_EQ(EncodeIpv4(h, buf), kIpv4HeaderBytes);
  EXPECT_EQ(InternetChecksum(buf), 0);  // self-verifying header
  const auto parsed = ParseIpv4(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->total_length, h.total_length);
  EXPECT_EQ(parsed->identification, h.identification);
  EXPECT_EQ(parsed->protocol, h.protocol);
}

TEST(WireHeaders, Ipv4CorruptChecksumRejected) {
  Ipv4Header h;
  h.src = kLan;
  h.dst = kRemote;
  std::array<std::byte, kIpv4HeaderBytes> buf{};
  EncodeIpv4(h, buf);
  buf[15] ^= std::byte{0x01};  // flip a ttl bit without fixing the checksum
  EXPECT_FALSE(ParseIpv4(std::span<const std::byte>(buf).first(kIpv4HeaderBytes)).has_value());
}

TEST(WireHeaders, TcpUdpIcmpRoundTrip) {
  TcpHeader tcp;
  tcp.src_port = 30000;
  tcp.dst_port = 443;
  tcp.seq = 0x01020304;
  tcp.flags = 0x18;
  tcp.checksum = 0xabcd;
  std::array<std::byte, kTcpHeaderBytes> tbuf{};
  EncodeTcp(tcp, tbuf);
  const auto tparsed = ParseTcp(tbuf);
  ASSERT_TRUE(tparsed.has_value());
  EXPECT_EQ(*tparsed, tcp);

  UdpHeader udp;
  udp.src_port = 5353;
  udp.dst_port = 53;
  udp.length = 32;
  udp.checksum = 0x1234;
  std::array<std::byte, kUdpHeaderBytes> ubuf{};
  EncodeUdp(udp, ubuf);
  const auto uparsed = ParseUdp(ubuf);
  ASSERT_TRUE(uparsed.has_value());
  EXPECT_EQ(*uparsed, udp);

  IcmpHeader icmp;
  icmp.type = 8;
  icmp.id = 777;
  icmp.seq = 3;
  icmp.checksum = 0x9999;
  std::array<std::byte, kIcmpHeaderBytes> ibuf{};
  EncodeIcmp(icmp, ibuf);
  const auto iparsed = ParseIcmp(ibuf);
  ASSERT_TRUE(iparsed.has_value());
  EXPECT_EQ(*iparsed, icmp);
}

// --- Frame codec -------------------------------------------------------------

class WireFrameTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(WireFrameTest, EncodeParseRoundTrip) {
  const Packet packet = MakePacket(GetParam(), 512);
  std::array<std::byte, kMaxFrameBytes> buf{};
  const std::size_t len = EncodeFrame(packet, MacAddress::FromParts(0x02b15a, 1),
                                      MacAddress::FromParts(0x02157e, 0), buf);
  EXPECT_EQ(len, 512u);  // simulated size within [headers, MTU]

  const auto frame = std::span<const std::byte>(buf).first(len);
  const auto decoded = ParseFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->frame_bytes, len);
  EXPECT_EQ(decoded->ip.src, packet.tuple.src_ip);
  EXPECT_EQ(decoded->ip.dst, packet.tuple.dst_ip);
  EXPECT_EQ(decoded->tuple(), packet.tuple);

  // Every checksum on the frame must verify exactly (the tshark contract).
  EXPECT_EQ(InternetChecksum(frame.subspan(kIpOffset, kIpv4HeaderBytes)), 0);
  EXPECT_EQ(L4VerifySum(frame), 0);

  // The fast-path extractor agrees with the full parser.
  const auto fast = ExtractTuple(frame);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, packet.tuple);

  // And the abstract packet survives the round trip.
  const Packet back = PacketFromFrame(*decoded, packet.timestamp, packet.direction);
  EXPECT_EQ(back.tuple, packet.tuple);
  EXPECT_EQ(back.size.count, static_cast<std::int64_t>(len));
}

TEST_P(WireFrameTest, SizeClampsToHeadersAndMtu) {
  std::array<std::byte, kMaxFrameBytes> buf{};
  // A 1-byte "packet" still yields a full, valid header stack...
  const std::size_t tiny = EncodeFrame(MakePacket(GetParam(), 1), MacAddress{}, MacAddress{}, buf);
  EXPECT_GE(tiny, kEthernetHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes);
  EXPECT_TRUE(ParseFrame(std::span<const std::byte>(buf).first(tiny)).has_value());
  // ...and a jumbo simulated chunk clamps to one MTU frame.
  const std::size_t jumbo =
      EncodeFrame(MakePacket(GetParam(), 1 << 20), MacAddress{}, MacAddress{}, buf);
  EXPECT_EQ(jumbo, kMaxFrameBytes);
  const auto frame = std::span<const std::byte>(buf).first(jumbo);
  ASSERT_TRUE(ParseFrame(frame).has_value());
  EXPECT_EQ(L4VerifySum(frame), 0);
}

TEST_P(WireFrameTest, TruncatedFramesRejectedAtEveryLength) {
  const Packet packet = MakePacket(GetParam(), 128);
  std::array<std::byte, kMaxFrameBytes> buf{};
  const std::size_t len = EncodeFrame(packet, MacAddress{}, MacAddress{}, buf);
  for (std::size_t cut = 0; cut < len; ++cut) {
    EXPECT_FALSE(ParseFrame(std::span<const std::byte>(buf).first(cut)).has_value())
        << "prefix of " << cut << " bytes parsed";
  }
  EXPECT_TRUE(ParseFrame(std::span<const std::byte>(buf).first(len)).has_value());
}

INSTANTIATE_TEST_SUITE_P(Protocols, WireFrameTest,
                         ::testing::Values(Protocol::kTcp, Protocol::kUdp, Protocol::kIcmp));

TEST(WireFrame, IcmpDirectionSelectsTypeAndIdSide) {
  std::array<std::byte, kMaxFrameBytes> buf{};
  Packet req = MakePacket(Protocol::kIcmp, 64, Direction::kUpstream);
  const std::size_t rlen = EncodeFrame(req, MacAddress{}, MacAddress{}, buf);
  auto decoded = ParseFrame(std::span<const std::byte>(buf).first(rlen));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->icmp.type, 8);                   // echo request
  EXPECT_EQ(decoded->tuple().src_port, req.tuple.src_port);

  Packet rep = MakePacket(Protocol::kIcmp, 64, Direction::kDownstream);
  rep.tuple = req.tuple.reversed();
  const std::size_t plen = EncodeFrame(rep, MacAddress{}, MacAddress{}, buf);
  decoded = ParseFrame(std::span<const std::byte>(buf).first(plen));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->icmp.type, 0);                   // echo reply
  EXPECT_EQ(decoded->tuple().dst_port, rep.tuple.dst_port);
}

TEST(WireFrame, GarbageNeverParsesAsValid) {
  // Pure noise must be rejected (the IP checksum alone makes a false
  // accept astronomically unlikely) — and must never read out of bounds,
  // which the sanitizer CI job enforces.
  std::mt19937 rng(424242);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::byte> noise(rng() % 200);
    for (auto& b : noise) b = static_cast<std::byte>(rng() & 0xff);
    const auto decoded = ParseFrame(noise);
    EXPECT_FALSE(decoded.has_value());
    (void)ExtractTuple(noise);  // must not crash either
  }
}

TEST(WireFrame, SingleBitFlipsNeverCrashTheParser) {
  const Packet packet = MakePacket(Protocol::kTcp, 90);
  std::array<std::byte, kMaxFrameBytes> buf{};
  const std::size_t len = EncodeFrame(packet, MacAddress{}, MacAddress{}, buf);
  for (std::size_t i = 0; i < len; ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::array<std::byte, kMaxFrameBytes> mutant = buf;
      mutant[i] ^= static_cast<std::byte>(1 << bit);
      // Flips in the Ethernet/IP region are caught structurally or by the
      // IP checksum; payload/L4 flips may still parse (their checksums are
      // carried, not verified here). Either way: no UB, no OOB.
      (void)ParseFrame(std::span<const std::byte>(mutant).first(len));
      (void)ExtractTuple(std::span<const std::byte>(mutant).first(len));
    }
  }
}

// --- NAT rewrites ------------------------------------------------------------

TEST(WireRewrite, SourceRewriteKeepsEveryChecksumExact) {
  for (const Protocol proto : {Protocol::kTcp, Protocol::kUdp, Protocol::kIcmp}) {
    const Packet packet = MakePacket(proto, 256);
    std::array<std::byte, kMaxFrameBytes> buf{};
    const std::size_t len = EncodeFrame(packet, MacAddress{}, MacAddress{}, buf);
    const std::span<std::byte> frame(buf.data(), len);

    const auto rw = SourceRewrite::Make(kLan, 30000, kWan, 4096);
    ApplySourceRewrite(frame, rw);

    const auto decoded = ParseFrame(frame);  // re-verifies the IP checksum
    ASSERT_TRUE(decoded.has_value()) << "proto " << static_cast<int>(proto);
    EXPECT_EQ(decoded->ip.src, kWan);
    EXPECT_EQ(decoded->tuple().src_port, 4096);
    EXPECT_EQ(decoded->tuple().dst_ip, kRemote);
    EXPECT_EQ(L4VerifySum(frame), 0) << "proto " << static_cast<int>(proto);
  }
}

TEST(WireRewrite, DestRewriteInvertsSourceRewrite) {
  const Packet packet = MakePacket(Protocol::kTcp, 200);
  std::array<std::byte, kMaxFrameBytes> buf{};
  const std::size_t len = EncodeFrame(packet, MacAddress{}, MacAddress{}, buf);
  const std::span<std::byte> frame(buf.data(), len);
  std::vector<std::byte> original(frame.begin(), frame.end());

  ApplySourceRewrite(frame, SourceRewrite::Make(kLan, 30000, kWan, 4096));
  // An inbound reply to (kWan, 4096) would be dest-rewritten back; applying
  // the inverse rewrite to the same outbound frame must restore it exactly.
  ApplySourceRewrite(frame, SourceRewrite::Make(kWan, 4096, kLan, 30000));
  EXPECT_EQ(std::memcmp(frame.data(), original.data(), len), 0);
}

TEST(WireRewrite, DestRewriteEditsDestinationSide) {
  const Packet packet = MakePacket(Protocol::kUdp, 100);
  std::array<std::byte, kMaxFrameBytes> buf{};
  const std::size_t len = EncodeFrame(packet, MacAddress{}, MacAddress{}, buf);
  const std::span<std::byte> frame(buf.data(), len);

  ApplyDestRewrite(frame, SourceRewrite::Make(kRemote, 443, kLan, 8080));
  const auto decoded = ParseFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ip.dst, kLan);
  EXPECT_EQ(decoded->tuple().dst_port, 8080);
  EXPECT_EQ(decoded->ip.src, kLan);  // source untouched
  EXPECT_EQ(L4VerifySum(frame), 0);
}

TEST(WireRewrite, ChainedRewritesComposeLikeNat444) {
  // Home NAT then CGN, exactly the two-tier path the gateway runs.
  const Packet packet = MakePacket(Protocol::kTcp, 300);
  std::array<std::byte, kMaxFrameBytes> buf{};
  const std::size_t len = EncodeFrame(packet, MacAddress{}, MacAddress{}, buf);
  const std::span<std::byte> frame(buf.data(), len);

  constexpr Ipv4Address kCgnExternal(198, 51, 100, 1);
  ApplySourceRewrite(frame, SourceRewrite::Make(kLan, 30000, kWan, 2000));
  ApplySourceRewrite(frame, SourceRewrite::Make(kWan, 2000, kCgnExternal, 9000));

  const auto decoded = ParseFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ip.src, kCgnExternal);
  EXPECT_EQ(decoded->tuple().src_port, 9000);
  EXPECT_EQ(L4VerifySum(frame), 0);
}

TEST(WireRewrite, UdpZeroChecksumStaysZero) {
  // RFC 3022 §4.1: a UDP datagram with checksum 0 ("none") must keep 0
  // after translation, not an incrementally-updated garbage value.
  const Packet packet = MakePacket(Protocol::kUdp, 64);
  std::array<std::byte, kMaxFrameBytes> buf{};
  const std::size_t len = EncodeFrame(packet, MacAddress{}, MacAddress{}, buf);
  const std::span<std::byte> frame(buf.data(), len);
  PutU16(frame, kUdpChecksumOffset, 0);

  ApplySourceRewrite(frame, SourceRewrite::Make(kLan, 30000, kWan, 4096));
  EXPECT_EQ(GetU16(frame, kUdpChecksumOffset), 0);
  const auto t = ExtractTuple(frame);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->src_ip, kWan);
}

}  // namespace
}  // namespace bismark::net::wire
