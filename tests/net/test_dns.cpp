#include <gtest/gtest.h>

#include "net/dns.h"

namespace bismark::net {
namespace {

class DnsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    zones_.add_domain("example.com", {Ipv4Address(93, 184, 216, 34)});
    zones_.add_domain("multi.com",
                      {Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2)});
    zones_.add_cname("www.example.com", "example.com");
    zones_.add_cname("video.com", "edge.cdn.net");
    zones_.add_domain("edge.cdn.net", {Ipv4Address(151, 101, 1, 1)}, Minutes(1));
    // A CNAME loop for the chain-limit test.
    zones_.add_cname("loop-a.com", "loop-b.com");
    zones_.add_cname("loop-b.com", "loop-a.com");
  }
  ZoneCatalog zones_;
  TimePoint t0_ = MakeTime({2013, 4, 1});
};

TEST_F(DnsTest, ResolveARecord) {
  const DnsResponse r = zones_.resolve("example.com");
  EXPECT_FALSE(r.nxdomain);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].type, DnsRecordType::kA);
  EXPECT_EQ(*r.address(), Ipv4Address(93, 184, 216, 34));
  EXPECT_EQ(r.canonical_name(), "example.com");
}

TEST_F(DnsTest, ResolveMultipleARecords) {
  const DnsResponse r = zones_.resolve("multi.com");
  EXPECT_EQ(r.records.size(), 2u);
  EXPECT_EQ(*r.address(), Ipv4Address(1, 1, 1, 1));  // first A record
}

TEST_F(DnsTest, CnameChainFollowed) {
  const DnsResponse r = zones_.resolve("www.example.com");
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].type, DnsRecordType::kCname);
  EXPECT_EQ(r.records[0].name, "www.example.com");
  EXPECT_EQ(r.records[0].target, "example.com");
  EXPECT_EQ(r.records[1].type, DnsRecordType::kA);
  EXPECT_EQ(r.canonical_name(), "example.com");
  EXPECT_TRUE(r.address().has_value());
}

TEST_F(DnsTest, NxDomain) {
  const DnsResponse r = zones_.resolve("no-such-domain.net");
  EXPECT_TRUE(r.nxdomain);
  EXPECT_FALSE(r.address().has_value());
}

TEST_F(DnsTest, CnameLoopTerminates) {
  const DnsResponse r = zones_.resolve("loop-a.com");
  EXPECT_TRUE(r.nxdomain);
}

TEST_F(DnsTest, DanglingCnameIsNxDomain) {
  zones_.add_cname("dangling.com", "missing.example");
  EXPECT_TRUE(zones_.resolve("dangling.com").nxdomain);
}

TEST_F(DnsTest, ResolverCachesByTtl) {
  DnsResolver resolver(zones_);
  bool hit = true;
  resolver.resolve("example.com", t0_, &hit);
  EXPECT_FALSE(hit);
  resolver.resolve("example.com", t0_ + Minutes(1), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(resolver.hits(), 1u);
  EXPECT_EQ(resolver.misses(), 1u);
  // After the 5-minute TTL the entry must be refetched.
  resolver.resolve("example.com", t0_ + Minutes(6), &hit);
  EXPECT_FALSE(hit);
}

TEST_F(DnsTest, ResolverUsesMinTtlOfChain) {
  DnsResolver resolver(zones_);
  bool hit = false;
  resolver.resolve("video.com", t0_, &hit);  // edge has 1-minute TTL
  resolver.resolve("video.com", t0_ + Seconds(50), &hit);
  EXPECT_TRUE(hit);
  resolver.resolve("video.com", t0_ + Seconds(70), &hit);
  EXPECT_FALSE(hit);
}

TEST_F(DnsTest, ResolverDoesNotCacheNxDomain) {
  DnsResolver resolver(zones_);
  bool hit = true;
  resolver.resolve("missing.net", t0_, &hit);
  EXPECT_FALSE(hit);
  resolver.resolve("missing.net", t0_ + Seconds(1), &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(resolver.cache_size(), 0u);
}

TEST_F(DnsTest, ResolverFlush) {
  DnsResolver resolver(zones_);
  resolver.resolve("example.com", t0_);
  EXPECT_EQ(resolver.cache_size(), 1u);
  resolver.flush();
  EXPECT_EQ(resolver.cache_size(), 0u);
  bool hit = true;
  resolver.resolve("example.com", t0_ + Seconds(1), &hit);
  EXPECT_FALSE(hit);
}

TEST_F(DnsTest, CatalogContainsAndSize) {
  EXPECT_TRUE(zones_.contains("example.com"));
  EXPECT_FALSE(zones_.contains("nope.com"));
  EXPECT_EQ(zones_.size(), 7u);
}

}  // namespace
}  // namespace bismark::net
