#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/stats.h"
#include "net/access_link.h"

namespace bismark::net {
namespace {

const TimePoint t0 = MakeTime({2013, 4, 1});

AccessLinkConfig BasicConfig() {
  AccessLinkConfig cfg;
  cfg.down_capacity = Mbps(20);
  cfg.up_capacity = Mbps(4);
  return cfg;
}

TEST(AccessLinkTest, AdmitGrantsFullDemandWhenIdle) {
  AccessLink link(BasicConfig());
  EXPECT_DOUBLE_EQ(link.admit(Direction::kDownstream, 5e6), 5e6);
  EXPECT_DOUBLE_EQ(link.admit(Direction::kUpstream, 1e6), 1e6);
}

TEST(AccessLinkTest, AdmitSharesUnderLoad) {
  AccessLink link(BasicConfig());
  link.add_rate(Direction::kDownstream, 18e6, t0);
  // Only 2 Mbps headroom left; a 10 Mbps demand gets the larger of the
  // headroom and the 15 % processor-sharing floor (3 Mbps).
  const double grant = link.admit(Direction::kDownstream, 10e6);
  EXPECT_NEAR(grant, 3e6, 1e3);
}

TEST(AccessLinkTest, AdmitNeverExceedsDemand) {
  AccessLink link(BasicConfig());
  EXPECT_DOUBLE_EQ(link.admit(Direction::kDownstream, 1e3), 1e3);
}

TEST(AccessLinkTest, RatesAccumulateAndRelease) {
  AccessLink link(BasicConfig());
  link.add_rate(Direction::kDownstream, 4e6, t0);
  link.add_rate(Direction::kDownstream, 6e6, t0 + Seconds(1));
  EXPECT_DOUBLE_EQ(link.active_rate(Direction::kDownstream), 10e6);
  EXPECT_DOUBLE_EQ(link.utilization(Direction::kDownstream), 0.5);
  link.remove_rate(Direction::kDownstream, 4e6, t0 + Seconds(2));
  EXPECT_DOUBLE_EQ(link.active_rate(Direction::kDownstream), 6e6);
  // Removing more than present clamps at zero.
  link.remove_rate(Direction::kDownstream, 100e6, t0 + Seconds(3));
  EXPECT_DOUBLE_EQ(link.active_rate(Direction::kDownstream), 0.0);
}

TEST(AccessLinkTest, UplinkQueueGrowsWhenOverdriven) {
  AccessLinkConfig cfg = BasicConfig();
  cfg.allow_uplink_overdrive = true;
  cfg.uplink_buffer = KB(512);
  AccessLink link(cfg);
  // Pump 6 Mbps into a 4 Mbps uplink for 1 second: 2 Mbit = 250 KB queued.
  link.add_rate(Direction::kUpstream, 6e6, t0);
  link.remove_rate(Direction::kUpstream, 0.0, t0 + Seconds(1));
  EXPECT_NEAR(link.uplink_queue_depth().kb(), 250.0, 5.0);
  EXPECT_NEAR(link.uplink_queueing_delay().seconds(), 0.5, 0.05);
  EXPECT_EQ(link.uplink_drops(), 0u);
}

TEST(AccessLinkTest, UplinkQueueDrainsWhenIdle) {
  AccessLinkConfig cfg = BasicConfig();
  cfg.allow_uplink_overdrive = true;
  AccessLink link(cfg);
  link.add_rate(Direction::kUpstream, 6e6, t0);
  link.remove_rate(Direction::kUpstream, 6e6, t0 + Seconds(1));
  // One more second with no arrivals drains 4 Mbit > queued 2 Mbit.
  link.add_rate(Direction::kUpstream, 0.0, t0 + Seconds(2));
  EXPECT_EQ(link.uplink_queue_depth().count, 0);
}

TEST(AccessLinkTest, BufferOverflowCountsDrops) {
  AccessLinkConfig cfg = BasicConfig();
  cfg.allow_uplink_overdrive = true;
  cfg.uplink_buffer = KB(100);
  AccessLink link(cfg);
  link.add_rate(Direction::kUpstream, 8e6, t0);
  link.remove_rate(Direction::kUpstream, 0.0, t0 + Seconds(2));  // 1 Mbit/s excess x 2s
  EXPECT_EQ(link.uplink_queue_depth().kb(), 100.0);
  EXPECT_GT(link.uplink_drops(), 0u);
}

TEST(AccessLinkTest, OverdriveAdmitExceedsCapacity) {
  AccessLinkConfig cfg = BasicConfig();
  cfg.allow_uplink_overdrive = true;
  cfg.overdrive_headroom = 0.35;
  AccessLink link(cfg);
  const double grant = link.admit(Direction::kUpstream, 10e6);
  EXPECT_NEAR(grant, 4e6 * 1.35, 1e3);
  // Without overdrive the grant caps at capacity.
  AccessLink plain(BasicConfig());
  EXPECT_NEAR(plain.admit(Direction::kUpstream, 10e6), 4e6, 1e3);
}

TEST(AccessLinkTest, ProbeAccurateOnIdleLink) {
  AccessLink link(BasicConfig());
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 200; ++i) {
    stats.add(link.probe_capacity(Direction::kDownstream, rng).mbps());
  }
  EXPECT_NEAR(stats.mean(), 20.0, 0.5);
  EXPECT_LT(stats.stddev(), 1.0);
}

TEST(AccessLinkTest, ProbeBiasedLowUnderCrossTraffic) {
  AccessLink link(BasicConfig());
  link.add_rate(Direction::kDownstream, 16e6, t0);  // 80 % busy
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 200; ++i) {
    stats.add(link.probe_capacity(Direction::kDownstream, rng).mbps());
  }
  // Expected bias factor 1 - 0.5*0.8 = 0.6.
  EXPECT_NEAR(stats.mean(), 12.0, 1.0);
}

}  // namespace
}  // namespace bismark::net
