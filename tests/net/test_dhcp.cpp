#include <gtest/gtest.h>

#include "net/dhcp.h"

namespace bismark::net {
namespace {

const Ipv4Cidr kLan{Ipv4Address(192, 168, 1, 0), 24};
const Ipv4Address kGw(192, 168, 1, 1);

MacAddress Mac(std::uint32_t nic) { return MacAddress::FromParts(0x001EC2, nic); }

TEST(DhcpTest, AcquireAssignsInPrefix) {
  DhcpPool pool(kLan, kGw);
  const auto lease = pool.acquire(Mac(1), MakeTime({2013, 4, 1}));
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(kLan.contains(lease->address));
  EXPECT_NE(lease->address, kGw);
  EXPECT_EQ(pool.active_leases(), 1u);
}

TEST(DhcpTest, StickyLeasePerMac) {
  DhcpPool pool(kLan, kGw);
  const TimePoint t0 = MakeTime({2013, 4, 1});
  const auto first = pool.acquire(Mac(1), t0);
  const auto second = pool.acquire(Mac(1), t0 + Hours(1));
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->address, second->address);
  EXPECT_EQ(pool.active_leases(), 1u);
  EXPECT_GT(second->expires, first->expires);  // refreshed
}

TEST(DhcpTest, DistinctMacsDistinctAddresses) {
  DhcpPool pool(kLan, kGw);
  const TimePoint t0 = MakeTime({2013, 4, 1});
  const auto a = pool.acquire(Mac(1), t0);
  const auto b = pool.acquire(Mac(2), t0);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->address, b->address);
}

TEST(DhcpTest, GatewayAddressNeverLeased) {
  DhcpPool pool(Ipv4Cidr{Ipv4Address(10, 0, 0, 0), 29}, Ipv4Address(10, 0, 0, 1));
  const TimePoint t0 = MakeTime({2013, 4, 1});
  for (int i = 0; i < 5; ++i) {
    const auto lease = pool.acquire(Mac(static_cast<std::uint32_t>(i + 1)), t0);
    if (lease) {
      EXPECT_NE(lease->address, Ipv4Address(10, 0, 0, 1));
    }
  }
}

TEST(DhcpTest, PoolExhaustion) {
  // /29 = 6 hosts, one is the gateway -> 5 leases.
  DhcpPool pool(Ipv4Cidr{Ipv4Address(10, 0, 0, 0), 29}, Ipv4Address(10, 0, 0, 1));
  const TimePoint t0 = MakeTime({2013, 4, 1});
  int granted = 0;
  for (std::uint32_t i = 1; i <= 10; ++i) {
    if (pool.acquire(Mac(i), t0)) ++granted;
  }
  EXPECT_EQ(granted, 5);
}

TEST(DhcpTest, ReleaseFreesAddress) {
  DhcpPool pool(Ipv4Cidr{Ipv4Address(10, 0, 0, 0), 29}, Ipv4Address(10, 0, 0, 1));
  const TimePoint t0 = MakeTime({2013, 4, 1});
  for (std::uint32_t i = 1; i <= 5; ++i) ASSERT_TRUE(pool.acquire(Mac(i), t0));
  EXPECT_FALSE(pool.acquire(Mac(99), t0));
  pool.release(Mac(3));
  EXPECT_TRUE(pool.acquire(Mac(99), t0));
}

TEST(DhcpTest, ExpiryReclaimsStale) {
  DhcpPool pool(kLan, kGw, Hours(24));
  const TimePoint t0 = MakeTime({2013, 4, 1});
  pool.acquire(Mac(1), t0);
  pool.acquire(Mac(2), t0 + Hours(20));
  EXPECT_EQ(pool.expire(t0 + Hours(25)), 1u);  // only Mac(1) stale
  EXPECT_EQ(pool.active_leases(), 1u);
  EXPECT_FALSE(pool.address_of(Mac(1)).has_value());
  EXPECT_TRUE(pool.address_of(Mac(2)).has_value());
}

TEST(DhcpTest, RenewExtendsLease) {
  DhcpPool pool(kLan, kGw, Hours(24));
  const TimePoint t0 = MakeTime({2013, 4, 1});
  pool.acquire(Mac(1), t0);
  EXPECT_TRUE(pool.renew(Mac(1), t0 + Hours(20)));
  EXPECT_EQ(pool.expire(t0 + Hours(30)), 0u);
  EXPECT_FALSE(pool.renew(Mac(42), t0));
}

TEST(DhcpTest, ReverseLookup) {
  DhcpPool pool(kLan, kGw);
  const TimePoint t0 = MakeTime({2013, 4, 1});
  const auto lease = pool.acquire(Mac(7), t0);
  ASSERT_TRUE(lease);
  const auto owner = pool.owner_of(lease->address);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, Mac(7));
  EXPECT_FALSE(pool.owner_of(Ipv4Address(192, 168, 1, 250)).has_value());
}

TEST(DhcpTest, LeasesSnapshot) {
  DhcpPool pool(kLan, kGw);
  const TimePoint t0 = MakeTime({2013, 4, 1});
  pool.acquire(Mac(1), t0);
  pool.acquire(Mac(2), t0);
  EXPECT_EQ(pool.leases().size(), 2u);
  EXPECT_EQ(pool.gateway(), kGw);
}

}  // namespace
}  // namespace bismark::net
