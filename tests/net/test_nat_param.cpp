// Property sweep: NAT invariants across protocols and port-range sizes.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/rng.h"
#include "net/nat.h"

namespace bismark::net {
namespace {

const TimePoint t0 = MakeTime({2013, 4, 1});

using NatParam = std::tuple<Protocol, int /*port range size*/>;

class NatPropertyTest : public ::testing::TestWithParam<NatParam> {
 protected:
  Protocol proto() const { return std::get<0>(GetParam()); }
  int range() const { return std::get<1>(GetParam()); }

  NatTable MakeNat() {
    NatConfig cfg;
    cfg.wan_address = Ipv4Address(203, 0, 113, 1);
    cfg.port_range_lo = 40000;
    cfg.port_range_hi = static_cast<std::uint16_t>(40000 + range() - 1);
    return NatTable(cfg);
  }

  Packet Outbound(std::uint32_t device, std::uint16_t sport) {
    Packet p;
    p.timestamp = t0;
    p.tuple = {Ipv4Address(192, 168, 1, static_cast<std::uint8_t>(2 + device % 250)),
               Ipv4Address(93, 184, 216, 34), sport, 443, proto()};
    p.size = B(1400);
    p.lan_mac = MacAddress::FromParts(0x001EC2, device);
    return p;
  }
};

TEST_P(NatPropertyTest, AllocatedPortsUniqueAndInRange) {
  NatTable nat = MakeNat();
  std::set<std::uint16_t> ports;
  const int flows = std::min(range(), 64);
  for (int i = 0; i < flows; ++i) {
    Packet p = Outbound(static_cast<std::uint32_t>(i), static_cast<std::uint16_t>(20000 + i));
    ASSERT_TRUE(nat.translate_outbound(p));
    ASSERT_GE(p.tuple.src_port, 40000);
    ASSERT_LT(p.tuple.src_port, 40000 + range());
    ASSERT_TRUE(ports.insert(p.tuple.src_port).second) << "duplicate WAN port";
  }
  EXPECT_EQ(nat.active_mappings(), static_cast<std::size_t>(flows));
}

TEST_P(NatPropertyTest, RoundTripRestoresEndpointAndOwner) {
  NatTable nat = MakeNat();
  const int flows = std::min(range(), 32);
  std::vector<Packet> outs;
  for (int i = 0; i < flows; ++i) {
    Packet p = Outbound(static_cast<std::uint32_t>(i), static_cast<std::uint16_t>(20000 + i));
    const FiveTuple original = p.tuple;
    ASSERT_TRUE(nat.translate_outbound(p));
    outs.push_back(p);

    Packet reply;
    reply.timestamp = t0 + Seconds(1);
    reply.tuple = p.tuple.reversed();
    reply.direction = Direction::kDownstream;
    ASSERT_TRUE(nat.translate_inbound(reply));
    ASSERT_EQ(reply.tuple.dst_ip, original.src_ip);
    ASSERT_EQ(reply.tuple.dst_port, original.src_port);
    ASSERT_EQ(reply.lan_mac, MacAddress::FromParts(0x001EC2, static_cast<std::uint32_t>(i)));
  }
}

TEST_P(NatPropertyTest, ExhaustionIsExactlyAtRangeSize) {
  NatTable nat = MakeNat();
  if (range() > 128) GTEST_SKIP() << "only meaningful for small ranges";
  for (int i = 0; i < range(); ++i) {
    Packet p = Outbound(1, static_cast<std::uint16_t>(20000 + i));
    ASSERT_TRUE(nat.translate_outbound(p)) << "flow " << i << " of " << range();
  }
  Packet extra = Outbound(1, 33333);
  EXPECT_FALSE(nat.translate_outbound(extra));
  EXPECT_EQ(nat.stats().port_exhaustion_drops, 1u);
}

TEST_P(NatPropertyTest, ChurnConservesMappingAccounting) {
  NatConfig cfg;
  cfg.port_range_lo = 40000;
  cfg.port_range_hi = static_cast<std::uint16_t>(40000 + range() - 1);
  cfg.tcp_idle_timeout = Minutes(5);
  cfg.udp_idle_timeout = Minutes(5);
  cfg.icmp_idle_timeout = Minutes(5);
  NatTable nat(cfg);
  Rng rng(11);
  TimePoint now = t0;
  for (int round = 0; round < 60; ++round) {
    const int burst = static_cast<int>(rng.uniform_int(1, std::min(range(), 16)));
    for (int i = 0; i < burst; ++i) {
      Packet p = Outbound(static_cast<std::uint32_t>(rng.uniform_int(0, 6)),
                          static_cast<std::uint16_t>(rng.uniform_int(20000, 29999)));
      p.timestamp = now;
      nat.translate_outbound(p);
    }
    now += Minutes(2);
    nat.expire_idle(now);
    // Accounting invariant: created == expired + active.
    ASSERT_EQ(nat.stats().mappings_created,
              nat.stats().mappings_expired + nat.active_mappings());
    ASSERT_LE(nat.active_mappings(), static_cast<std::size_t>(range()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsAndRanges, NatPropertyTest,
    ::testing::Combine(::testing::Values(Protocol::kTcp, Protocol::kUdp, Protocol::kIcmp),
                       ::testing::Values(4, 64, 4096)),
    [](const ::testing::TestParamInfo<NatParam>& info) {
      std::string name = ProtocolName(std::get<0>(info.param));
      name += "_range";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

}  // namespace
}  // namespace bismark::net
