#include <gtest/gtest.h>

#include "net/addr.h"

namespace bismark::net {
namespace {

TEST(MacAddressTest, PartsRoundTrip) {
  const MacAddress mac = MacAddress::FromParts(0x001EC2, 0xABCDEF);
  EXPECT_EQ(mac.oui(), 0x001EC2u);
  EXPECT_EQ(mac.nic(), 0xABCDEFu);
  EXPECT_EQ(mac.to_string(), "00:1e:c2:ab:cd:ef");
}

TEST(MacAddressTest, ParseValid) {
  const auto mac = MacAddress::Parse("00:1e:c2:ab:cd:ef");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->oui(), 0x001EC2u);
  const auto upper = MacAddress::Parse("AA:BB:CC:DD:EE:FF");
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(upper->oui(), 0xAABBCCu);
}

TEST(MacAddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::Parse("").has_value());
  EXPECT_FALSE(MacAddress::Parse("00:1e:c2:ab:cd").has_value());
  EXPECT_FALSE(MacAddress::Parse("00:1e:c2:ab:cd:e").has_value());
  EXPECT_FALSE(MacAddress::Parse("00-1e-c2-ab-cd-ef").has_value());
  EXPECT_FALSE(MacAddress::Parse("zz:1e:c2:ab:cd:ef").has_value());
  EXPECT_FALSE(MacAddress::Parse("00:1e:c2:ab:cd:eff").has_value());
}

TEST(MacAddressTest, AnonymizationPreservesOui) {
  const MacAddress mac = MacAddress::FromParts(0x001EC2, 0x123456);
  const MacAddress anon = mac.anonymized(0x5EC42ULL);
  EXPECT_EQ(anon.oui(), mac.oui());
  EXPECT_NE(anon.nic(), mac.nic());
}

TEST(MacAddressTest, AnonymizationDeterministicPerKey) {
  const MacAddress mac = MacAddress::FromParts(0x001EC2, 0x123456);
  EXPECT_EQ(mac.anonymized(7), mac.anonymized(7));
  EXPECT_NE(mac.anonymized(7), mac.anonymized(8));
}

TEST(MacAddressTest, AsU64Ordering) {
  const MacAddress a = MacAddress::FromParts(0x000001, 0x000001);
  const MacAddress b = MacAddress::FromParts(0x000001, 0x000002);
  EXPECT_LT(a.as_u64(), b.as_u64());
  EXPECT_LT(a, b);
}

TEST(Ipv4AddressTest, OctetsAndString) {
  const Ipv4Address addr(192, 168, 1, 42);
  EXPECT_EQ(addr.to_string(), "192.168.1.42");
  EXPECT_EQ(addr.value(), 0xC0A8012Au);
}

TEST(Ipv4AddressTest, ParseValid) {
  const auto addr = Ipv4Address::Parse("10.0.0.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1..3.4").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4 ").has_value());
}

TEST(Ipv4AddressTest, PrivateRanges) {
  EXPECT_TRUE(Ipv4Address(10, 1, 2, 3).is_private());
  EXPECT_TRUE(Ipv4Address(192, 168, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4Address(172, 32, 0, 1).is_private());
  EXPECT_FALSE(Ipv4Address(8, 8, 8, 8).is_private());
  EXPECT_FALSE(Ipv4Address(203, 0, 113, 1).is_private());
}

TEST(Ipv4CidrTest, ContainsAndMask) {
  const Ipv4Cidr lan{Ipv4Address(192, 168, 1, 0), 24};
  EXPECT_EQ(lan.mask(), 0xFFFFFF00u);
  EXPECT_TRUE(lan.contains(Ipv4Address(192, 168, 1, 200)));
  EXPECT_FALSE(lan.contains(Ipv4Address(192, 168, 2, 1)));
  EXPECT_EQ(lan.host_count(), 254u);
  EXPECT_EQ(lan.host(1), Ipv4Address(192, 168, 1, 1));
  EXPECT_EQ(lan.host(254), Ipv4Address(192, 168, 1, 254));
}

TEST(Ipv4CidrTest, EdgePrefixes) {
  const Ipv4Cidr all{Ipv4Address(0, 0, 0, 0), 0};
  EXPECT_EQ(all.mask(), 0u);
  EXPECT_TRUE(all.contains(Ipv4Address(1, 2, 3, 4)));
  const Ipv4Cidr host{Ipv4Address(10, 0, 0, 1), 32};
  EXPECT_TRUE(host.contains(Ipv4Address(10, 0, 0, 1)));
  EXPECT_FALSE(host.contains(Ipv4Address(10, 0, 0, 2)));
  EXPECT_EQ(host.host_count(), 1u);
}

}  // namespace
}  // namespace bismark::net
