#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "net/pcap.h"
#include "net/wire.h"

namespace bismark::net {
namespace {

std::uint16_t ReadLe16(const std::vector<std::byte>& b, std::size_t off) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(b[off]) |
                                    static_cast<std::uint16_t>(b[off + 1]) << 8);
}

std::uint32_t ReadLe32(const std::vector<std::byte>& b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) | static_cast<std::uint32_t>(b[off + 1]) << 8 |
         static_cast<std::uint32_t>(b[off + 2]) << 16 |
         static_cast<std::uint32_t>(b[off + 3]) << 24;
}

std::vector<std::byte> MakeFrame(std::uint8_t fill, std::size_t length) {
  std::vector<std::byte> frame(length);
  for (std::size_t i = 0; i < length; ++i) {
    frame[i] = static_cast<std::byte>(fill + i);
  }
  return frame;
}

std::vector<std::byte> ReadAll(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) bytes[i] = static_cast<std::byte>(raw[i]);
  return bytes;
}

std::filesystem::path TempPath(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(Pcap, FileHeaderIsClassicLittleEndianPcap) {
  std::vector<std::byte> hdr(kPcapFileHeaderBytes);
  EncodePcapFileHeader(hdr);
  // Little-endian magic: the file literally starts d4 c3 b2 a1.
  EXPECT_EQ(static_cast<std::uint8_t>(hdr[0]), 0xd4);
  EXPECT_EQ(static_cast<std::uint8_t>(hdr[1]), 0xc3);
  EXPECT_EQ(static_cast<std::uint8_t>(hdr[2]), 0xb2);
  EXPECT_EQ(static_cast<std::uint8_t>(hdr[3]), 0xa1);
  EXPECT_EQ(ReadLe32(hdr, 0), kPcapMagic);
  EXPECT_EQ(ReadLe16(hdr, 4), kPcapVersionMajor);
  EXPECT_EQ(ReadLe16(hdr, 6), kPcapVersionMinor);
  EXPECT_EQ(ReadLe32(hdr, 8), 0u);   // thiszone
  EXPECT_EQ(ReadLe32(hdr, 12), 0u);  // sigfigs
  EXPECT_EQ(ReadLe32(hdr, 16), kPcapSnapLen);
  EXPECT_EQ(ReadLe32(hdr, 20), kPcapLinkTypeEthernet);
}

TEST(Pcap, RecordHeaderSplitsMillisecondsIntoSecUsec) {
  std::vector<std::byte> hdr(kPcapRecordHeaderBytes);
  const TimePoint ts = MakeTime({2013, 4, 1}, 12, 30, 15) + Millis(250);
  EncodePcapRecordHeader(hdr, ts, 96);
  EXPECT_EQ(ReadLe32(hdr, 0), static_cast<std::uint32_t>(ts.ms / 1000));
  EXPECT_EQ(ReadLe32(hdr, 4), 250000u);  // 250 ms -> 250,000 us, < 1e6
  EXPECT_EQ(ReadLe32(hdr, 8), 96u);      // incl_len
  EXPECT_EQ(ReadLe32(hdr, 12), 96u);     // orig_len (whole frame captured)
}

TEST(Pcap, BufferStoresFramesInCaptureOrder) {
  PcapBuffer buf;
  const TimePoint t0 = MakeTime({2013, 4, 1});
  const auto f1 = MakeFrame(0x10, 60);
  const auto f2 = MakeFrame(0x80, 90);
  buf.capture(t0, 3, f1);
  buf.capture(t0 + Millis(5), 3, f2);

  ASSERT_EQ(buf.frame_count(), 2u);
  EXPECT_EQ(buf.byte_count(), 150u);
  const auto& recs = buf.records();
  EXPECT_EQ(recs[0].seq, 0u);
  EXPECT_EQ(recs[1].seq, 1u);  // tie-break key increments per capture
  EXPECT_EQ(recs[0].length, 60u);
  EXPECT_EQ(recs[1].length, 90u);
  const auto stored = buf.frame_bytes(recs[1]);
  ASSERT_EQ(stored.size(), f2.size());
  EXPECT_TRUE(std::equal(stored.begin(), stored.end(), f2.begin()));
}

TEST(Pcap, WriteMergesShardsIntoTimestampOrder) {
  const TimePoint t0 = MakeTime({2013, 4, 1});
  // Shard 0 captures homes 0 and 2; shard 1 captures home 1. Frames arrive
  // interleaved in time across shards.
  PcapBuffer shard0;
  PcapBuffer shard1;
  shard0.capture(t0 + Millis(10), 0, MakeFrame(0x01, 64));
  shard1.capture(t0 + Millis(5), 1, MakeFrame(0x02, 72));
  shard0.capture(t0 + Millis(20), 2, MakeFrame(0x03, 80));
  shard1.capture(t0 + Millis(20), 1, MakeFrame(0x04, 66));

  const auto path = TempPath("bismark_pcap_merge_test.pcap");
  const std::array<const PcapBuffer*, 2> shards{&shard0, &shard1};
  const std::size_t written = WritePcapFile(path.string(), shards);

  const std::size_t expected =
      kPcapFileHeaderBytes + 4 * kPcapRecordHeaderBytes + (64 + 72 + 80 + 66);
  EXPECT_EQ(written, expected);

  const auto bytes = ReadAll(path);
  ASSERT_EQ(bytes.size(), expected);
  // Walk the records: lengths must come out in (timestamp, home, shard)
  // order: 5ms/home1, 10ms/home0, 20ms/home1(shard1 > home2? no — home
  // sorts before shard) ...
  std::vector<std::uint32_t> lengths;
  std::vector<std::uint32_t> ts_sec;
  std::uint32_t prev_sec = 0;
  std::uint32_t prev_usec = 0;
  std::size_t off = kPcapFileHeaderBytes;
  while (off < bytes.size()) {
    const std::uint32_t sec = ReadLe32(bytes, off);
    const std::uint32_t usec = ReadLe32(bytes, off + 4);
    const std::uint32_t incl = ReadLe32(bytes, off + 8);
    EXPECT_EQ(incl, ReadLe32(bytes, off + 12));
    EXPECT_LT(usec, 1000000u);
    EXPECT_TRUE(sec > prev_sec || (sec == prev_sec && usec >= prev_usec))
        << "timestamps must be monotone after the merge";
    prev_sec = sec;
    prev_usec = usec;
    lengths.push_back(incl);
    ts_sec.push_back(sec);
    off += kPcapRecordHeaderBytes + incl;
  }
  EXPECT_EQ(off, bytes.size());
  // 5ms frame first, then 10ms, then the two 20ms frames with home 1
  // before home 2.
  EXPECT_EQ(lengths, (std::vector<std::uint32_t>{72, 64, 66, 80}));
  std::filesystem::remove(path);
}

TEST(Pcap, OutputIsIdenticalRegardlessOfShardAssignment) {
  // The same logical captures, staged under two different worker layouts,
  // must serialise to byte-identical files — the determinism contract that
  // lets CI compare --workers 1 against --workers 4.
  const TimePoint t0 = MakeTime({2013, 4, 1});
  struct Cap {
    Duration at;
    int home;
    std::uint8_t fill;
    std::size_t len;
  };
  const std::vector<Cap> caps{
      {Millis(3), 0, 0x11, 60},  {Millis(3), 1, 0x22, 61},  {Millis(7), 2, 0x33, 62},
      {Millis(9), 0, 0x44, 63},  {Millis(9), 3, 0x55, 64},  {Millis(12), 1, 0x66, 65},
  };

  // Layout A: one shard holds everything.
  PcapBuffer all;
  for (const Cap& c : caps) all.capture(t0 + c.at, c.home, MakeFrame(c.fill, c.len));

  // Layout B: homes striped across three shards (home % 3).
  std::array<PcapBuffer, 3> striped;
  for (const Cap& c : caps) {
    striped[static_cast<std::size_t>(c.home % 3)].capture(t0 + c.at, c.home,
                                                          MakeFrame(c.fill, c.len));
  }

  const auto path_a = TempPath("bismark_pcap_det_a.pcap");
  const auto path_b = TempPath("bismark_pcap_det_b.pcap");
  const std::array<const PcapBuffer*, 1> shards_a{&all};
  const std::array<const PcapBuffer*, 3> shards_b{&striped[0], &striped[1], &striped[2]};
  WritePcapFile(path_a.string(), shards_a);
  WritePcapFile(path_b.string(), shards_b);

  EXPECT_EQ(ReadAll(path_a), ReadAll(path_b));
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
}

TEST(Pcap, EmptyCaptureWritesHeaderOnlyFile) {
  const auto path = TempPath("bismark_pcap_empty.pcap");
  const std::array<const PcapBuffer*, 0> shards{};
  EXPECT_EQ(WritePcapFile(path.string(), shards), kPcapFileHeaderBytes);
  const auto bytes = ReadAll(path);
  ASSERT_EQ(bytes.size(), kPcapFileHeaderBytes);
  EXPECT_EQ(ReadLe32(bytes, 0), kPcapMagic);
  std::filesystem::remove(path);
}

TEST(Pcap, WriteFailureThrows) {
  PcapBuffer buf;
  buf.capture(MakeTime({2013, 4, 1}), 0, MakeFrame(0x01, 60));
  const std::array<const PcapBuffer*, 1> shards{&buf};
  EXPECT_THROW(WritePcapFile("/nonexistent-dir/out.pcap", shards), std::runtime_error);
}

}  // namespace
}  // namespace bismark::net
