#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "net/nat.h"
#include "net/wire.h"

namespace bismark::net {
namespace {

constexpr Ipv4Address kWan(203, 0, 113, 1);
constexpr Ipv4Address kLanA(192, 168, 1, 10);
constexpr Ipv4Address kLanB(192, 168, 1, 11);
constexpr Ipv4Address kRemote(93, 184, 216, 34);

Packet MakeOutbound(Ipv4Address src, std::uint16_t sport, Ipv4Address dst,
                    std::uint16_t dport, MacAddress mac, TimePoint t,
                    Protocol proto = Protocol::kTcp) {
  Packet p;
  p.timestamp = t;
  p.tuple = {src, dst, sport, dport, proto};
  p.size = B(1400);
  p.direction = Direction::kUpstream;
  p.lan_mac = mac;
  return p;
}

class NatTest : public ::testing::Test {
 protected:
  NatConfig MakeConfig() {
    NatConfig cfg;
    cfg.wan_address = kWan;
    return cfg;
  }
  MacAddress mac_a_ = MacAddress::FromParts(0x001EC2, 1);
  MacAddress mac_b_ = MacAddress::FromParts(0x002399, 2);
  TimePoint t0_ = MakeTime({2013, 4, 1});
};

TEST_F(NatTest, OutboundRewritesSource) {
  NatTable nat(MakeConfig());
  Packet p = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  ASSERT_TRUE(nat.translate_outbound(p));
  EXPECT_EQ(p.tuple.src_ip, kWan);
  EXPECT_NE(p.tuple.src_port, 30000);  // port range starts at 1024, rewritten
  EXPECT_EQ(p.tuple.dst_ip, kRemote);
  EXPECT_EQ(p.tuple.dst_port, 443);
  EXPECT_EQ(nat.active_mappings(), 1u);
}

TEST_F(NatTest, SameFlowReusesMapping) {
  NatTable nat(MakeConfig());
  Packet p1 = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  Packet p2 = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_ + Seconds(1));
  nat.translate_outbound(p1);
  nat.translate_outbound(p2);
  EXPECT_EQ(p1.tuple.src_port, p2.tuple.src_port);
  EXPECT_EQ(nat.active_mappings(), 1u);
  EXPECT_EQ(nat.stats().mappings_created, 1u);
  EXPECT_EQ(nat.stats().translations_out, 2u);
}

TEST_F(NatTest, DistinctFlowsGetDistinctPorts) {
  NatTable nat(MakeConfig());
  Packet p1 = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  Packet p2 = MakeOutbound(kLanB, 30000, kRemote, 443, mac_b_, t0_);
  nat.translate_outbound(p1);
  nat.translate_outbound(p2);
  EXPECT_NE(p1.tuple.src_port, p2.tuple.src_port);
  EXPECT_EQ(nat.active_mappings(), 2u);
}

TEST_F(NatTest, InboundReturnsToOwningDevice) {
  NatTable nat(MakeConfig());
  Packet out = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  nat.translate_outbound(out);

  Packet in;
  in.timestamp = t0_ + Seconds(1);
  in.tuple = out.tuple.reversed();
  in.direction = Direction::kDownstream;
  ASSERT_TRUE(nat.translate_inbound(in));
  EXPECT_EQ(in.tuple.dst_ip, kLanA);
  EXPECT_EQ(in.tuple.dst_port, 30000);
  EXPECT_EQ(in.lan_mac, mac_a_);  // attribution restored behind the NAT
}

TEST_F(NatTest, UnsolicitedInboundDropped) {
  NatTable nat(MakeConfig());
  Packet in;
  in.timestamp = t0_;
  in.tuple = {kRemote, kWan, 443, 5555, Protocol::kTcp};
  EXPECT_FALSE(nat.translate_inbound(in));
  EXPECT_EQ(nat.stats().unknown_inbound_drops, 1u);
}

TEST_F(NatTest, InboundToWrongWanAddressDropped) {
  NatTable nat(MakeConfig());
  Packet in;
  in.timestamp = t0_;
  in.tuple = {kRemote, Ipv4Address(203, 0, 113, 99), 443, 1024, Protocol::kTcp};
  EXPECT_FALSE(nat.translate_inbound(in));
}

TEST_F(NatTest, PortRestrictedConeRejectsOtherRemotes) {
  NatTable nat(MakeConfig());
  Packet out = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  nat.translate_outbound(out);

  // A different remote host hitting the same WAN port must be dropped.
  Packet stranger;
  stranger.timestamp = t0_ + Seconds(1);
  stranger.tuple = {Ipv4Address(1, 2, 3, 4), kWan, 443, out.tuple.src_port, Protocol::kTcp};
  EXPECT_FALSE(nat.translate_inbound(stranger));

  // Same host, different source port: also dropped (port-restricted).
  Packet wrong_port;
  wrong_port.timestamp = t0_ + Seconds(1);
  wrong_port.tuple = {kRemote, kWan, 8443, out.tuple.src_port, Protocol::kTcp};
  EXPECT_FALSE(nat.translate_inbound(wrong_port));
}

TEST_F(NatTest, IdleMappingsExpireByProtocol) {
  NatConfig cfg = MakeConfig();
  cfg.tcp_idle_timeout = Minutes(10);
  cfg.udp_idle_timeout = Minutes(1);
  NatTable nat(cfg);

  Packet tcp = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_, Protocol::kTcp);
  Packet udp = MakeOutbound(kLanA, 30001, kRemote, 53, mac_a_, t0_, Protocol::kUdp);
  nat.translate_outbound(tcp);
  nat.translate_outbound(udp);
  EXPECT_EQ(nat.active_mappings(), 2u);

  EXPECT_EQ(nat.expire_idle(t0_ + Minutes(5)), 1u);  // UDP gone
  EXPECT_EQ(nat.active_mappings(), 1u);
  EXPECT_EQ(nat.expire_idle(t0_ + Minutes(11)), 1u);  // TCP gone
  EXPECT_EQ(nat.active_mappings(), 0u);
  EXPECT_EQ(nat.stats().mappings_expired, 2u);
}

TEST_F(NatTest, ActivityRefreshesIdleTimer) {
  NatConfig cfg = MakeConfig();
  cfg.udp_idle_timeout = Minutes(1);
  NatTable nat(cfg);
  Packet p = MakeOutbound(kLanA, 30000, kRemote, 53, mac_a_, t0_, Protocol::kUdp);
  nat.translate_outbound(p);
  // Keep refreshing just under the timeout.
  for (int i = 1; i <= 5; ++i) {
    Packet again = MakeOutbound(kLanA, 30000, kRemote, 53, mac_a_, t0_ + Seconds(50.0 * i),
                                Protocol::kUdp);
    nat.translate_outbound(again);
  }
  EXPECT_EQ(nat.expire_idle(t0_ + Seconds(250 + 55)), 0u);
  EXPECT_EQ(nat.active_mappings(), 1u);
}

TEST_F(NatTest, ExpiredInboundIsDropped) {
  NatConfig cfg = MakeConfig();
  cfg.tcp_idle_timeout = Minutes(1);
  NatTable nat(cfg);
  Packet out = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  nat.translate_outbound(out);
  nat.expire_idle(t0_ + Minutes(2));

  Packet in;
  in.timestamp = t0_ + Minutes(3);
  in.tuple = out.tuple.reversed();
  EXPECT_FALSE(nat.translate_inbound(in));
}

TEST_F(NatTest, PortExhaustionDropsNewFlows) {
  NatConfig cfg = MakeConfig();
  cfg.port_range_lo = 1024;
  cfg.port_range_hi = 1027;  // only 4 ports
  NatTable nat(cfg);
  for (int i = 0; i < 4; ++i) {
    Packet p = MakeOutbound(kLanA, static_cast<std::uint16_t>(30000 + i), kRemote, 443, mac_a_,
                            t0_);
    EXPECT_TRUE(nat.translate_outbound(p));
  }
  Packet fifth = MakeOutbound(kLanA, 30010, kRemote, 443, mac_a_, t0_);
  EXPECT_FALSE(nat.translate_outbound(fifth));
  EXPECT_EQ(nat.stats().port_exhaustion_drops, 1u);
}

TEST_F(NatTest, PortsReusableAfterExpiry) {
  NatConfig cfg = MakeConfig();
  cfg.port_range_lo = 1024;
  cfg.port_range_hi = 1025;
  cfg.tcp_idle_timeout = Minutes(1);
  NatTable nat(cfg);
  Packet p1 = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  Packet p2 = MakeOutbound(kLanA, 30001, kRemote, 443, mac_a_, t0_);
  nat.translate_outbound(p1);
  nat.translate_outbound(p2);
  nat.expire_idle(t0_ + Minutes(2));
  Packet p3 = MakeOutbound(kLanA, 30002, kRemote, 443, mac_a_, t0_ + Minutes(2));
  EXPECT_TRUE(nat.translate_outbound(p3));
}

TEST_F(NatTest, SamePortDifferentProtocolCoexist) {
  NatTable nat(MakeConfig());
  Packet tcp = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_, Protocol::kTcp);
  Packet udp = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_, Protocol::kUdp);
  nat.translate_outbound(tcp);
  nat.translate_outbound(udp);
  EXPECT_EQ(nat.active_mappings(), 2u);
}

TEST_F(NatTest, OwnerOfPortLookup) {
  NatTable nat(MakeConfig());
  Packet p = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  nat.translate_outbound(p);
  const auto owner = nat.owner_of_port(p.tuple.src_port, Protocol::kTcp);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, mac_a_);
  EXPECT_FALSE(nat.owner_of_port(1, Protocol::kTcp).has_value());
}

TEST_F(NatTest, SnapshotReflectsMappings) {
  NatTable nat(MakeConfig());
  Packet p1 = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  Packet p2 = MakeOutbound(kLanB, 31000, kRemote, 80, mac_b_, t0_);
  nat.translate_outbound(p1);
  nat.translate_outbound(p2);
  const auto snapshot = nat.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
}

TEST_F(NatTest, FullRangeExhaustionWithSixteenPorts) {
  // Regression for the allocate_port scan bug: with the whole range in use
  // the probe used to wrap forever instead of failing. 16 ports make the
  // full wrap cheap to exercise.
  NatConfig cfg = MakeConfig();
  cfg.port_range_lo = 1024;
  cfg.port_range_hi = 1039;  // exactly 16 ports
  NatTable nat(cfg);
  for (int i = 0; i < 16; ++i) {
    Packet p = MakeOutbound(kLanA, static_cast<std::uint16_t>(30000 + i), kRemote, 443, mac_a_,
                            t0_);
    ASSERT_TRUE(nat.translate_outbound(p)) << "flow " << i;
    EXPECT_GE(p.tuple.src_port, 1024);
    EXPECT_LE(p.tuple.src_port, 1039);
  }
  EXPECT_EQ(nat.active_mappings(), 16u);

  // Every further attempt terminates, drops, and counts exactly one drop.
  for (int attempt = 1; attempt <= 4; ++attempt) {
    Packet p = MakeOutbound(kLanA, static_cast<std::uint16_t>(31000 + attempt), kRemote, 443,
                            mac_a_, t0_);
    EXPECT_FALSE(nat.translate_outbound(p));
    EXPECT_EQ(nat.stats().port_exhaustion_drops, static_cast<std::uint64_t>(attempt));
  }
  // Existing flows keep translating through an exhausted table.
  Packet existing = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_ + Seconds(1));
  EXPECT_TRUE(nat.translate_outbound(existing));
}

TEST_F(NatTest, ExhaustionIsPerProtocol) {
  // The in-use counter is per protocol: filling the range with TCP flows
  // must not starve UDP of the same numeric ports.
  NatConfig cfg = MakeConfig();
  cfg.port_range_lo = 1024;
  cfg.port_range_hi = 1027;
  NatTable nat(cfg);
  for (int i = 0; i < 4; ++i) {
    Packet p = MakeOutbound(kLanA, static_cast<std::uint16_t>(30000 + i), kRemote, 443, mac_a_,
                            t0_, Protocol::kTcp);
    ASSERT_TRUE(nat.translate_outbound(p));
  }
  Packet tcp_more = MakeOutbound(kLanA, 30100, kRemote, 443, mac_a_, t0_, Protocol::kTcp);
  EXPECT_FALSE(nat.translate_outbound(tcp_more));
  Packet udp = MakeOutbound(kLanA, 30100, kRemote, 53, mac_a_, t0_, Protocol::kUdp);
  EXPECT_TRUE(nat.translate_outbound(udp));
}

TEST_F(NatTest, ExhaustedPortsRecoverAfterExpiry) {
  NatConfig cfg = MakeConfig();
  cfg.port_range_lo = 1024;
  cfg.port_range_hi = 1039;
  cfg.tcp_idle_timeout = Minutes(1);
  NatTable nat(cfg);
  for (int i = 0; i < 16; ++i) {
    Packet p = MakeOutbound(kLanA, static_cast<std::uint16_t>(30000 + i), kRemote, 443, mac_a_,
                            t0_);
    ASSERT_TRUE(nat.translate_outbound(p));
  }
  EXPECT_EQ(nat.expire_idle(t0_ + Minutes(2)), 16u);
  // The counter went back down: a fresh flow allocates again.
  Packet fresh = MakeOutbound(kLanA, 32000, kRemote, 443, mac_a_, t0_ + Minutes(2));
  EXPECT_TRUE(nat.translate_outbound(fresh));
}

TEST_F(NatTest, SnapshotIsSortedByLanTuple) {
  // The backing tables are hash maps; snapshot() owes its callers (state
  // export, debugging) a deterministic order.
  NatTable nat(MakeConfig());
  for (int d = 9; d >= 0; --d) {  // insert in descending address order
    Packet p = MakeOutbound(Ipv4Address(192, 168, 1, static_cast<std::uint8_t>(10 + d)),
                            static_cast<std::uint16_t>(30000 + d), kRemote, 443,
                            MacAddress::FromParts(0x001EC2, 100u + d), t0_);
    ASSERT_TRUE(nat.translate_outbound(p));
  }
  const auto snapshot = nat.snapshot();
  ASSERT_EQ(snapshot.size(), 10u);
  EXPECT_TRUE(std::is_sorted(
      snapshot.begin(), snapshot.end(),
      [](const NatMapping& a, const NatMapping& b) { return a.lan_tuple < b.lan_tuple; }));
}

TEST_F(NatTest, WirePathSharesStateWithStructPath) {
  // One table, both entry points: a flow opened on the wire path must be
  // visible to the struct path (and vice versa) with identical mappings.
  NatTable nat(MakeConfig());
  Packet p = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_);
  std::array<std::byte, wire::kMaxFrameBytes> buf{};
  const std::size_t len =
      wire::EncodeFrame(p, mac_a_, MacAddress::FromParts(0x02157e, 0), buf);
  const std::span<std::byte> frame(buf.data(), len);
  ASSERT_TRUE(nat.translate_outbound_wire(frame, t0_, mac_a_));

  const auto on_wire = wire::ExtractTuple(frame);
  ASSERT_TRUE(on_wire.has_value());
  EXPECT_EQ(on_wire->src_ip, kWan);

  Packet same_flow = MakeOutbound(kLanA, 30000, kRemote, 443, mac_a_, t0_ + Seconds(1));
  ASSERT_TRUE(nat.translate_outbound(same_flow));
  EXPECT_EQ(same_flow.tuple.src_port, on_wire->src_port);  // one shared mapping
  EXPECT_EQ(nat.active_mappings(), 1u);
  EXPECT_EQ(nat.stats().translations_out, 2u);

  // Inbound reply on the wire path lands on the owning LAN endpoint with
  // checksums still exact.
  Packet reply;
  reply.timestamp = t0_ + Seconds(2);
  reply.tuple = on_wire->reversed();
  reply.size = B(1400);
  reply.direction = Direction::kDownstream;
  reply.lan_mac = mac_a_;
  std::array<std::byte, wire::kMaxFrameBytes> rbuf{};
  const std::size_t rlen =
      wire::EncodeFrame(reply, MacAddress::FromParts(0x02157e, 0), mac_a_, rbuf);
  const std::span<std::byte> rframe(rbuf.data(), rlen);
  ASSERT_TRUE(nat.translate_inbound_wire(rframe, reply.timestamp));
  const auto decoded = wire::ParseFrame(rframe);  // re-verifies the IP checksum
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ip.dst, kLanA);
  EXPECT_EQ(decoded->tuple().dst_port, 30000);
}

TEST_F(NatTest, ManyDevicesCollapseOntoOneAddress) {
  // The paper's premise: from outside, a whole home is one IP.
  NatTable nat(MakeConfig());
  for (int d = 0; d < 20; ++d) {
    Packet p = MakeOutbound(Ipv4Address(192, 168, 1, static_cast<std::uint8_t>(10 + d)), 30000,
                            kRemote, 443, MacAddress::FromParts(0x001EC2, 100u + d), t0_);
    ASSERT_TRUE(nat.translate_outbound(p));
    EXPECT_EQ(p.tuple.src_ip, kWan);
  }
  EXPECT_EQ(nat.active_mappings(), 20u);
}

}  // namespace
}  // namespace bismark::net
