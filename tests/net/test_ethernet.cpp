#include <gtest/gtest.h>

#include "net/ethernet.h"

namespace bismark::net {
namespace {

MacAddress Mac(std::uint32_t nic) { return MacAddress::FromParts(0x0024D7, nic); }
const TimePoint t0 = MakeTime({2013, 4, 1});

TEST(EthernetSwitchTest, PlugInAssignsPorts) {
  EthernetSwitch sw(4);
  EXPECT_EQ(sw.port_count(), 4);
  const auto p1 = sw.plug_in(Mac(1), t0);
  const auto p2 = sw.plug_in(Mac(2), t0);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(*p1, *p2);
  EXPECT_EQ(sw.ports_in_use(), 2);
}

TEST(EthernetSwitchTest, FourPortLimitLikeWndr3800) {
  EthernetSwitch sw(4);
  for (std::uint32_t i = 1; i <= 4; ++i) EXPECT_TRUE(sw.plug_in(Mac(i), t0).has_value());
  EXPECT_FALSE(sw.plug_in(Mac(5), t0).has_value());
  EXPECT_EQ(sw.ports_in_use(), 4);
}

TEST(EthernetSwitchTest, ReplugSamePortIdempotent) {
  EthernetSwitch sw(4);
  const auto p1 = sw.plug_in(Mac(1), t0);
  const auto p2 = sw.plug_in(Mac(1), t0 + Hours(1));
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(*p1, *p2);
  EXPECT_EQ(sw.ports_in_use(), 1);
}

TEST(EthernetSwitchTest, UnplugFreesPort) {
  EthernetSwitch sw(4);
  for (std::uint32_t i = 1; i <= 4; ++i) sw.plug_in(Mac(i), t0);
  sw.unplug(Mac(2));
  EXPECT_EQ(sw.ports_in_use(), 3);
  EXPECT_FALSE(sw.is_connected(Mac(2)));
  EXPECT_TRUE(sw.plug_in(Mac(9), t0).has_value());
  sw.unplug(Mac(42));  // no-op for unknown mac
}

TEST(EthernetSwitchTest, LearningTableTracksLastSeen) {
  EthernetSwitch sw(4);
  sw.plug_in(Mac(1), t0);
  sw.observe_frame(Mac(1), t0 + Minutes(5));
  const auto seen = sw.last_seen(Mac(1));
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, t0 + Minutes(5));
  sw.observe_frame(Mac(99), t0);  // unknown: ignored
  EXPECT_FALSE(sw.last_seen(Mac(99)).has_value());
}

TEST(EthernetSwitchTest, ConnectedListing) {
  EthernetSwitch sw(4);
  sw.plug_in(Mac(1), t0);
  sw.plug_in(Mac(2), t0);
  const auto macs = sw.connected();
  EXPECT_EQ(macs.size(), 2u);
  const auto port = sw.port_of(Mac(1));
  ASSERT_TRUE(port.has_value());
  EXPECT_FALSE(sw.port_of(Mac(9)).has_value());
}

TEST(EthernetSwitchTest, MinimumOnePort) {
  EthernetSwitch sw(0);
  EXPECT_EQ(sw.port_count(), 1);
}

}  // namespace
}  // namespace bismark::net
