#include <gtest/gtest.h>

#include "net/flow.h"

namespace bismark::net {
namespace {

const TimePoint t0 = MakeTime({2013, 4, 1});

Packet MakePacket(TimePoint at, Direction dir, Bytes size) {
  Packet p;
  p.timestamp = at;
  p.tuple = {Ipv4Address(192, 168, 1, 10), Ipv4Address(1, 2, 3, 4), 30000, 443,
             Protocol::kTcp};
  p.size = size;
  p.direction = dir;
  return p;
}

TEST(FlowRecordTest, AccumulatesDirectionalCounters) {
  FlowRecord record;
  record.add_packet(MakePacket(t0, Direction::kUpstream, B(100)));
  record.add_packet(MakePacket(t0 + Seconds(1), Direction::kDownstream, B(1400)));
  record.add_packet(MakePacket(t0 + Seconds(2), Direction::kDownstream, B(1400)));
  EXPECT_EQ(record.bytes_up, B(100));
  EXPECT_EQ(record.bytes_down, B(2800));
  EXPECT_EQ(record.packets_up, 1u);
  EXPECT_EQ(record.packets_down, 2u);
  EXPECT_EQ(record.total_bytes(), B(2900));
  EXPECT_EQ(record.total_packets(), 3u);
}

TEST(FlowRecordTest, TracksFirstAndLastPacketTimes) {
  FlowRecord record;
  record.add_packet(MakePacket(t0 + Seconds(5), Direction::kUpstream, B(100)));
  record.add_packet(MakePacket(t0 + Seconds(1), Direction::kUpstream, B(100)));  // reordered
  record.add_packet(MakePacket(t0 + Seconds(9), Direction::kDownstream, B(100)));
  EXPECT_EQ(record.first_packet, t0 + Seconds(1));
  EXPECT_EQ(record.last_packet, t0 + Seconds(9));
  EXPECT_EQ(record.duration(), Seconds(8));
}

TEST(FiveTupleTest, ReversedSwapsEndpoints) {
  const FiveTuple tuple{Ipv4Address(10, 0, 0, 1), Ipv4Address(1, 1, 1, 1), 1234, 443,
                        Protocol::kUdp};
  const FiveTuple reply = tuple.reversed();
  EXPECT_EQ(reply.src_ip, tuple.dst_ip);
  EXPECT_EQ(reply.dst_ip, tuple.src_ip);
  EXPECT_EQ(reply.src_port, tuple.dst_port);
  EXPECT_EQ(reply.dst_port, tuple.src_port);
  EXPECT_EQ(reply.protocol, tuple.protocol);
  EXPECT_EQ(reply.reversed(), tuple);
}

TEST(FiveTupleTest, OrderingIsTotal) {
  const FiveTuple a{Ipv4Address(1, 0, 0, 1), Ipv4Address(2, 0, 0, 1), 1, 2, Protocol::kTcp};
  FiveTuple b = a;
  b.src_port = 3;
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a);
}

TEST(ProtocolTest, Names) {
  EXPECT_STREQ(ProtocolName(Protocol::kTcp), "tcp");
  EXPECT_STREQ(ProtocolName(Protocol::kUdp), "udp");
  EXPECT_STREQ(ProtocolName(Protocol::kIcmp), "icmp");
}

}  // namespace
}  // namespace bismark::net
