#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "net/cgn.h"
#include "net/packet.h"
#include "net/wire.h"

namespace bismark::net {
namespace {

// Home WAN addresses as the home NAT hands them to the CGN tier: RFC 6598
// shared address space.
constexpr Ipv4Address kHomeWan(100, 64, 0, 1);
constexpr Ipv4Address kOtherHomeWan(100, 64, 0, 2);
constexpr Ipv4Address kRemote(93, 184, 216, 34);

class CgnTest : public ::testing::Test {
 protected:
  /// Small, hand-checkable shape: 1024 external ports, 8-port blocks,
  /// 4 subscribers -> 32 blocks (256 ports) per disjoint slice.
  static CgnConfig MakeConfig() {
    CgnConfig config;
    config.port_range_lo = 1024;
    config.port_range_hi = 2047;
    config.port_block_size = 8;
    config.subscriber_count = 4;
    return config;
  }

  static Packet MakeOutbound(Ipv4Address src, std::uint16_t sport, std::uint16_t dport,
                             TimePoint t, Protocol proto = Protocol::kUdp) {
    Packet p;
    p.timestamp = t;
    p.tuple = {src, kRemote, sport, dport, proto};
    p.size = Bytes{128};
    p.direction = Direction::kUpstream;
    p.lan_mac = MacAddress::FromParts(0x001EC2, 1);
    return p;
  }

  TimePoint t0_ = MakeTime({2013, 4, 1});
};

TEST_F(CgnTest, PortSliceIsDeterministicAndDisjoint) {
  const CgnTable cgn(MakeConfig());
  EXPECT_EQ(cgn.total_blocks(), 128u);
  EXPECT_EQ(cgn.blocks_per_subscriber(), 32u);
  // Each subscriber's slice starts exactly where the previous one ends:
  // statically computable from the subscriber index alone (RFC 7422).
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cgn.slice_base_port(s), 1024 + s * 256);
    EXPECT_EQ(cgn.subscriber_port_capacity(s), 256u);
  }
}

TEST_F(CgnTest, CapacityIsCappedByPerSubscriberLimit) {
  CgnConfig config = MakeConfig();
  config.max_ports_per_subscriber = 10;
  const CgnTable cgn(config);
  EXPECT_EQ(cgn.subscriber_port_capacity(0), 10u);  // min(slice=256, cap=10)
}

TEST_F(CgnTest, OutboundAllocatesFromSubscriberSlice) {
  CgnTable cgn(MakeConfig());
  Packet a = MakeOutbound(kHomeWan, 30000, 443, t0_);
  Packet b = MakeOutbound(kOtherHomeWan, 30000, 443, t0_);
  ASSERT_TRUE(cgn.translate_outbound(0, a));
  ASSERT_TRUE(cgn.translate_outbound(1, b));

  EXPECT_EQ(a.tuple.src_ip, cgn.config().external_address);
  EXPECT_EQ(b.tuple.src_ip, cgn.config().external_address);
  // First port of each subscriber's own slice — never a shared pool.
  EXPECT_EQ(a.tuple.src_port, cgn.slice_base_port(0));
  EXPECT_EQ(b.tuple.src_port, cgn.slice_base_port(1));
  EXPECT_EQ(cgn.stats().translations_out, 2u);
  EXPECT_EQ(cgn.active_mappings(), 2u);

  // Same flow again: mapping reused, no new port.
  Packet again = MakeOutbound(kHomeWan, 30000, 443, t0_ + Seconds(1));
  ASSERT_TRUE(cgn.translate_outbound(0, again));
  EXPECT_EQ(again.tuple.src_port, cgn.slice_base_port(0));
  EXPECT_EQ(cgn.active_mappings(), 2u);
  EXPECT_EQ(cgn.subscriber_stats(0).ports_in_use, 1u);
}

TEST_F(CgnTest, BlocksActivateLazilyAsTheCursorCrossesThem) {
  CgnTable cgn(MakeConfig());  // 8-port blocks
  for (std::uint16_t i = 0; i < 8; ++i) {
    Packet p = MakeOutbound(kHomeWan, static_cast<std::uint16_t>(20000 + i), 443, t0_);
    ASSERT_TRUE(cgn.translate_outbound(0, p));
  }
  EXPECT_EQ(cgn.subscriber_stats(0).blocks_allocated, 1u);  // first block covers 8 ports
  Packet ninth = MakeOutbound(kHomeWan, 20008, 443, t0_);
  ASSERT_TRUE(cgn.translate_outbound(0, ninth));
  EXPECT_EQ(cgn.subscriber_stats(0).blocks_allocated, 2u);  // 9th port opens block 2
  EXPECT_EQ(cgn.subscriber_stats(0).ports_in_use, 9u);
  EXPECT_EQ(cgn.subscriber_stats(0).ports_peak, 9u);
}

TEST_F(CgnTest, SliceExhaustionDropsAndCounts) {
  // Shrink the range so a subscriber's whole slice is 16 ports: 64 ports,
  // 16-port blocks, 4 subscribers -> 1 block each.
  CgnConfig config = MakeConfig();
  config.port_range_lo = 1024;
  config.port_range_hi = 1087;
  config.port_block_size = 16;
  CgnTable cgn(config);
  ASSERT_EQ(cgn.subscriber_port_capacity(0), 16u);

  std::set<std::uint16_t> ports;
  for (std::uint16_t i = 0; i < 16; ++i) {
    Packet p = MakeOutbound(kHomeWan, static_cast<std::uint16_t>(20000 + i), 443, t0_);
    ASSERT_TRUE(cgn.translate_outbound(0, p)) << "flow " << i;
    ports.insert(p.tuple.src_port);
  }
  EXPECT_EQ(ports.size(), 16u);  // all distinct, the full slice

  // The 17th distinct flow must drop, and every retry counts one drop.
  for (int attempt = 1; attempt <= 3; ++attempt) {
    Packet p = MakeOutbound(kHomeWan, static_cast<std::uint16_t>(30000 + attempt), 443, t0_);
    EXPECT_FALSE(cgn.translate_outbound(0, p));
    EXPECT_EQ(cgn.stats().port_exhaustion_drops, static_cast<std::uint64_t>(attempt));
    EXPECT_EQ(cgn.subscriber_stats(0).exhaustion_drops, static_cast<std::uint64_t>(attempt));
  }
  // Exhaustion is per-slice: subscriber 1 still allocates fine.
  Packet other = MakeOutbound(kOtherHomeWan, 30000, 443, t0_);
  EXPECT_TRUE(cgn.translate_outbound(1, other));
}

TEST_F(CgnTest, PerSubscriberCapDropsBeforeSliceIsSpent) {
  CgnConfig config = MakeConfig();
  config.max_ports_per_subscriber = 3;
  CgnTable cgn(config);
  for (std::uint16_t i = 0; i < 3; ++i) {
    Packet p = MakeOutbound(kHomeWan, static_cast<std::uint16_t>(20000 + i), 443, t0_);
    ASSERT_TRUE(cgn.translate_outbound(0, p));
  }
  Packet fourth = MakeOutbound(kHomeWan, 20003, 443, t0_);
  EXPECT_FALSE(cgn.translate_outbound(0, fourth));
  EXPECT_EQ(cgn.stats().port_exhaustion_drops, 1u);
}

TEST_F(CgnTest, ExpiredPortsRecycleWithoutNewBlocks) {
  CgnTable cgn(MakeConfig());
  Packet p = MakeOutbound(kHomeWan, 30000, 443, t0_, Protocol::kUdp);
  ASSERT_TRUE(cgn.translate_outbound(0, p));
  const std::uint16_t first_port = p.tuple.src_port;
  EXPECT_EQ(cgn.subscriber_stats(0).blocks_allocated, 1u);

  // Idle past the UDP timeout: the mapping expires and the port frees.
  const TimePoint later = t0_ + cgn.config().udp_idle_timeout + Seconds(1);
  EXPECT_EQ(cgn.expire_idle(later), 1u);
  EXPECT_EQ(cgn.active_mappings(), 0u);
  EXPECT_EQ(cgn.subscriber_stats(0).ports_in_use, 0u);
  EXPECT_EQ(cgn.stats().mappings_expired, 1u);

  // A brand-new flow reuses the recycled port (LIFO) instead of advancing
  // the cursor — no second block activation.
  Packet q = MakeOutbound(kHomeWan, 31000, 80, later, Protocol::kUdp);
  ASSERT_TRUE(cgn.translate_outbound(0, q));
  EXPECT_EQ(q.tuple.src_port, first_port);
  EXPECT_EQ(cgn.subscriber_stats(0).blocks_allocated, 1u);
}

TEST_F(CgnTest, InboundIsPortRestricted) {
  CgnTable cgn(MakeConfig());
  Packet out = MakeOutbound(kHomeWan, 30000, 443, t0_, Protocol::kTcp);
  ASSERT_TRUE(cgn.translate_outbound(0, out));
  const std::uint16_t ext_port = out.tuple.src_port;

  // Reply from the contacted endpoint: translated back to the home WAN.
  Packet reply = MakeOutbound(kRemote, 443, ext_port, t0_ + Seconds(1), Protocol::kTcp);
  reply.tuple.dst_ip = cgn.config().external_address;
  reply.direction = Direction::kDownstream;
  ASSERT_TRUE(cgn.translate_inbound(reply));
  EXPECT_EQ(reply.tuple.dst_ip, kHomeWan);
  EXPECT_EQ(reply.tuple.dst_port, 30000);
  EXPECT_EQ(cgn.stats().translations_in, 1u);

  // Same external port, different remote source port: rejected.
  Packet stranger = MakeOutbound(kRemote, 9999, ext_port, t0_ + Seconds(2), Protocol::kTcp);
  stranger.tuple.dst_ip = cgn.config().external_address;
  EXPECT_FALSE(cgn.translate_inbound(stranger));
  EXPECT_EQ(cgn.stats().unknown_inbound_drops, 1u);

  // Unsolicited port with no mapping at all: rejected.
  Packet unsolicited = MakeOutbound(kRemote, 443, 2040, t0_ + Seconds(2), Protocol::kTcp);
  unsolicited.tuple.dst_ip = cgn.config().external_address;
  EXPECT_FALSE(cgn.translate_inbound(unsolicited));
  EXPECT_EQ(cgn.stats().unknown_inbound_drops, 2u);
}

TEST_F(CgnTest, WirePathMatchesPacketPath) {
  // Two tables with identical config: one driven through Packet structs,
  // one through encoded frames. They must allocate identical ports and
  // count identical stats, and the frame checksums must stay exact.
  CgnTable struct_path(MakeConfig());
  CgnTable wire_path(MakeConfig());

  for (const Protocol proto : {Protocol::kTcp, Protocol::kUdp, Protocol::kIcmp}) {
    const auto sport = static_cast<std::uint16_t>(20000 + static_cast<int>(proto));
    Packet p = MakeOutbound(kHomeWan, sport, 443, t0_, proto);
    Packet via_struct = p;
    ASSERT_TRUE(struct_path.translate_outbound(0, via_struct));

    std::array<std::byte, wire::kMaxFrameBytes> buf{};
    const std::size_t len =
        wire::EncodeFrame(p, MacAddress::FromParts(2, 1), MacAddress::FromParts(2, 2), buf);
    const std::span<std::byte> frame(buf.data(), len);
    ASSERT_TRUE(wire_path.translate_outbound_wire(0, frame, t0_));

    const auto decoded = wire::ParseFrame(frame);  // IP checksum re-verified here
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->ip.src, via_struct.tuple.src_ip);
    EXPECT_EQ(decoded->tuple().src_port, via_struct.tuple.src_port);
  }
  EXPECT_EQ(struct_path.stats().translations_out, wire_path.stats().translations_out);
  EXPECT_EQ(struct_path.subscriber_stats(0).ports_in_use,
            wire_path.subscriber_stats(0).ports_in_use);
  EXPECT_EQ(struct_path.subscriber_stats(0).blocks_allocated,
            wire_path.subscriber_stats(0).blocks_allocated);
}

TEST_F(CgnTest, WireInboundRewritesBackToHomeWan) {
  CgnTable cgn(MakeConfig());
  Packet out = MakeOutbound(kHomeWan, 30000, 443, t0_, Protocol::kTcp);
  std::array<std::byte, wire::kMaxFrameBytes> buf{};
  const std::size_t out_len =
      wire::EncodeFrame(out, MacAddress::FromParts(2, 1), MacAddress::FromParts(2, 2), buf);
  ASSERT_TRUE(cgn.translate_outbound_wire(0, std::span<std::byte>(buf.data(), out_len), t0_));
  const auto translated = wire::ExtractTuple(std::span<const std::byte>(buf.data(), out_len));
  ASSERT_TRUE(translated.has_value());

  // Encode the reply the remote host would send to the external endpoint.
  Packet reply;
  reply.timestamp = t0_ + Seconds(1);
  reply.tuple = translated->reversed();
  reply.size = Bytes{128};
  reply.direction = Direction::kDownstream;
  reply.lan_mac = MacAddress::FromParts(2, 1);
  std::array<std::byte, wire::kMaxFrameBytes> rbuf{};
  const std::size_t in_len =
      wire::EncodeFrame(reply, MacAddress::FromParts(2, 2), MacAddress::FromParts(2, 1), rbuf);
  const std::span<std::byte> rframe(rbuf.data(), in_len);
  ASSERT_TRUE(cgn.translate_inbound_wire(rframe, reply.timestamp));

  const auto decoded = wire::ParseFrame(rframe);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ip.dst, kHomeWan);
  EXPECT_EQ(decoded->tuple().dst_port, 30000);
}

TEST_F(CgnTest, UnknownSubscriberIsRejected) {
  CgnTable cgn(MakeConfig());
  Packet p = MakeOutbound(kHomeWan, 30000, 443, t0_);
  EXPECT_FALSE(cgn.translate_outbound(99, p));
  EXPECT_EQ(cgn.subscriber_port_capacity(99), 0u);
}

}  // namespace
}  // namespace bismark::net
