#include <gtest/gtest.h>

#include "analysis/fingerprint.h"

namespace bismark::analysis {
namespace {

using collect::HomeId;

class FingerprintTest : public ::testing::Test {
 protected:
  FingerprintTest()
      : repo_(collect::DatasetWindows::Paper()),
        catalog_(traffic::DomainCatalog::BuildStandard()) {}

  void AddFlow(net::MacAddress mac, const std::string& domain, Bytes down, int count = 1) {
    for (int i = 0; i < count; ++i) {
      collect::TrafficFlowRecord rec;
      rec.home = HomeId{1};
      rec.flow = net::FlowId{next_flow_++};
      rec.first_packet = repo_.windows().traffic.start + Minutes(next_flow_);
      rec.last_packet = rec.first_packet + Minutes(1);
      rec.device_mac = mac;
      rec.bytes_down = down;
      rec.domain = domain;
      repo_.add_flow(std::move(rec));
    }
  }

  void RegisterDeviceTraffic(net::MacAddress mac, net::VendorClass vendor, Bytes total) {
    collect::DeviceTrafficRecord rec;
    rec.home = HomeId{1};
    rec.device_mac = mac;
    rec.vendor = vendor;
    rec.bytes_total = total;
    repo_.add_device_traffic(rec);
  }

  std::uint64_t next_flow_{1};
  collect::DataRepository repo_;
  traffic::DomainCatalog catalog_;
};

TEST_F(FingerprintTest, FeatureExtractionBasics) {
  const auto roku = net::MacAddress::FromParts(0x000D4B, 1);
  AddFlow(roku, "netflix.com", MB(700));
  AddFlow(roku, "hulu.com", MB(200));
  AddFlow(roku, "google.com", MB(100), 2);  // two small-ish flows

  const auto features = ExtractDeviceFeatures(repo_, catalog_, roku);
  EXPECT_EQ(features.vendor, net::VendorClass::kInternetTv);
  EXPECT_EQ(features.flows, 4u);
  EXPECT_EQ(features.distinct_domains, 3);
  EXPECT_NEAR(features.total_bytes.mb(), 1100.0, 1.0);
  EXPECT_NEAR(features.top_domain_share, 700.0 / 1100.0, 1e-6);
  // netflix + hulu are streaming; google is not.
  EXPECT_NEAR(features.streaming_share, 900.0 / 1100.0, 1e-6);
  EXPECT_NEAR(features.bytes_per_flow, 1100e6 / 4.0, 1e3);
}

TEST_F(FingerprintTest, AnonymizedDomainsNotStreaming) {
  const auto mac = net::MacAddress::FromParts(0x001EC2, 1);
  AddFlow(mac, "anon-123456", MB(500));
  const auto features = ExtractDeviceFeatures(repo_, catalog_, mac);
  EXPECT_DOUBLE_EQ(features.streaming_share, 0.0);
  EXPECT_DOUBLE_EQ(features.top_domain_share, 1.0);
}

TEST_F(FingerprintTest, ClassifierSeparatesStreamerFromLaptop) {
  // A Roku-shaped device.
  DeviceFeatures roku;
  roku.flows = 20;
  roku.total_bytes = GB(10);
  roku.top_domain_share = 0.7;
  roku.streaming_share = 0.9;
  roku.bytes_per_flow = 500e6;
  EXPECT_EQ(ClassifyDevice(roku), DeviceClassGuess::kStreamingBox);

  // A laptop: spread, mixed, thin flows.
  DeviceFeatures laptop;
  laptop.flows = 2000;
  laptop.total_bytes = GB(3);
  laptop.top_domain_share = 0.2;
  laptop.streaming_share = 0.3;
  laptop.bytes_per_flow = 1.5e6;
  EXPECT_EQ(ClassifyDevice(laptop), DeviceClassGuess::kGeneralPurpose);
}

TEST_F(FingerprintTest, ClassifierRequiresAllThreeSignals) {
  DeviceFeatures f;
  f.flows = 10;
  f.total_bytes = GB(1);
  f.top_domain_share = 0.9;
  f.streaming_share = 0.9;
  f.bytes_per_flow = 100e6;
  EXPECT_EQ(ClassifyDevice(f), DeviceClassGuess::kStreamingBox);
  // Kill each signal in turn.
  DeviceFeatures a = f;
  a.streaming_share = 0.1;  // concentrated downloads, not streaming
  EXPECT_EQ(ClassifyDevice(a), DeviceClassGuess::kGeneralPurpose);
  DeviceFeatures b = f;
  b.top_domain_share = 0.1;  // streaming but spread across services
  EXPECT_EQ(ClassifyDevice(b), DeviceClassGuess::kGeneralPurpose);
  DeviceFeatures c = f;
  c.bytes_per_flow = 1e4;  // thin flows
  EXPECT_EQ(ClassifyDevice(c), DeviceClassGuess::kGeneralPurpose);
}

TEST_F(FingerprintTest, EmptyDeviceIsUnknown) {
  const auto mac = net::MacAddress::FromParts(0x001EC2, 9);
  const auto features = ExtractDeviceFeatures(repo_, catalog_, mac);
  EXPECT_EQ(ClassifyDevice(features), DeviceClassGuess::kUnknown);
}

TEST_F(FingerprintTest, ExtractAllFiltersAndSorts) {
  const auto big = net::MacAddress::FromParts(0x000D4B, 1);
  const auto small = net::MacAddress::FromParts(0x001EC2, 2);
  AddFlow(big, "netflix.com", GB(2));
  AddFlow(small, "google.com", MB(1));
  RegisterDeviceTraffic(big, net::VendorClass::kInternetTv, GB(2));
  RegisterDeviceTraffic(small, net::VendorClass::kApple, MB(1));
  const auto all = ExtractAllDeviceFeatures(repo_, catalog_, MB(50));
  ASSERT_EQ(all.size(), 1u);  // small filtered out
  EXPECT_EQ(all[0].device, big);
}

TEST_F(FingerprintTest, GuessNames) {
  EXPECT_EQ(DeviceClassGuessName(DeviceClassGuess::kStreamingBox), "streaming-box");
  EXPECT_EQ(DeviceClassGuessName(DeviceClassGuess::kGeneralPurpose), "general-purpose");
  EXPECT_EQ(DeviceClassGuessName(DeviceClassGuess::kUnknown), "unknown");
}

}  // namespace
}  // namespace bismark::analysis
