#include <gtest/gtest.h>

#include "analysis/capacity_stats.h"

namespace bismark::analysis {
namespace {

using collect::HomeId;

class CapacityStatsTest : public ::testing::Test {
 protected:
  CapacityStatsTest() : repo_(collect::DatasetWindows::Paper()) {}

  void RegisterHome(int id, const std::string& country, bool developed) {
    collect::HomeInfo info;
    info.id = HomeId{id};
    info.country_code = country;
    info.developed = developed;
    repo_.register_home(info);
  }

  void AddProbes(int id, std::initializer_list<double> down_mbps, double up_mbps) {
    int i = 0;
    for (double d : down_mbps) {
      collect::CapacityRecord rec;
      rec.home = HomeId{id};
      rec.measured = repo_.windows().capacity.start + Hours(12 * i++);
      rec.downstream = Mbps(d);
      rec.upstream = Mbps(up_mbps);
      repo_.add_capacity(rec);
    }
  }

  collect::DataRepository repo_;
};

TEST_F(CapacityStatsTest, PerHomeMediansAndStability) {
  RegisterHome(1, "US", true);
  AddProbes(1, {19.0, 20.0, 21.0, 20.0, 20.0}, 4.0);
  const auto homes = SummarizeCapacity(repo_);
  ASSERT_EQ(homes.size(), 1u);
  EXPECT_EQ(homes[0].probes, 5);
  EXPECT_DOUBLE_EQ(homes[0].median_down_mbps, 20.0);
  EXPECT_DOUBLE_EQ(homes[0].median_up_mbps, 4.0);
  EXPECT_DOUBLE_EQ(homes[0].asymmetry(), 5.0);
  EXPECT_LT(homes[0].down_cv, 0.05);  // stable probes
  EXPECT_EQ(homes[0].country_code, "US");
}

TEST_F(CapacityStatsTest, UnstableProbesShowHighCv) {
  RegisterHome(1, "US", true);
  AddProbes(1, {20.0, 5.0, 20.0, 5.0}, 4.0);
  const auto homes = SummarizeCapacity(repo_);
  ASSERT_EQ(homes.size(), 1u);
  EXPECT_GT(homes[0].down_cv, 0.4);
}

TEST_F(CapacityStatsTest, CountryAggregationWithMinHomes) {
  RegisterHome(1, "US", true);
  RegisterHome(2, "US", true);
  RegisterHome(3, "US", true);
  RegisterHome(4, "IN", false);  // only one IN home: dropped by min_homes
  AddProbes(1, {10.0}, 1.0);
  AddProbes(2, {20.0}, 2.0);
  AddProbes(3, {30.0}, 3.0);
  AddProbes(4, {4.0}, 0.5);
  const auto rows = CapacityByCountry(repo_, 3);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].country_code, "US");
  EXPECT_EQ(rows[0].homes, 3);
  EXPECT_DOUBLE_EQ(rows[0].median_down_mbps, 20.0);
  EXPECT_DOUBLE_EQ(rows[0].median_up_mbps, 2.0);
}

TEST_F(CapacityStatsTest, RegionalDistributions) {
  RegisterHome(1, "US", true);
  RegisterHome(2, "IN", false);
  AddProbes(1, {40.0}, 8.0);
  AddProbes(2, {4.0}, 0.5);
  const auto cdfs = CapacityDistributions(repo_);
  EXPECT_EQ(cdfs.developed_down.size(), 1u);
  EXPECT_EQ(cdfs.developing_down.size(), 1u);
  EXPECT_GT(cdfs.developed_down.median(), cdfs.developing_down.median());
}

TEST_F(CapacityStatsTest, EmptyRepositorySafe) {
  EXPECT_TRUE(SummarizeCapacity(repo_).empty());
  EXPECT_TRUE(CapacityByCountry(repo_).empty());
  EXPECT_TRUE(CapacityDistributions(repo_).developed_down.empty());
}

}  // namespace
}  // namespace bismark::analysis
