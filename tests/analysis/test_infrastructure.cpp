#include <gtest/gtest.h>

#include "analysis/infrastructure.h"

namespace bismark::analysis {
namespace {

using collect::DeviceCountRecord;
using collect::HomeId;

const TimePoint t0 = MakeTime({2013, 3, 6});

class InfrastructureTest : public ::testing::Test {
 protected:
  InfrastructureTest() : repo_(collect::DatasetWindows::Paper()) {}

  void RegisterHome(int id, bool developed, bool always_wired = false,
                    bool always_wireless = false) {
    collect::HomeInfo info;
    info.id = HomeId{id};
    info.country_code = developed ? "US" : "IN";
    info.developed = developed;
    info.reports_devices = true;
    info.has_always_wired = always_wired;
    info.has_always_wireless = always_wireless;
    repo_.register_home(info);
  }

  void AddCensus(int id, int wired, int w24, int w5, int unique_total, int unique24,
                 int unique5, int samples = 10) {
    for (int i = 0; i < samples; ++i) {
      DeviceCountRecord rec;
      rec.home = HomeId{id};
      rec.sampled = t0 + Hours(i);
      rec.wired = wired;
      rec.wireless_24 = w24;
      rec.wireless_5 = w5;
      rec.unique_total = unique_total;
      rec.unique_24 = unique24;
      rec.unique_5 = unique5;
      repo_.add_device_count(rec);
    }
  }

  collect::DataRepository repo_;
};

TEST_F(InfrastructureTest, UniqueDevicesCdfUsesMaxPerHome) {
  RegisterHome(1, true);
  AddCensus(1, 1, 2, 1, 5, 4, 1, 5);
  // Later samples see more devices; the CDF must use the final count.
  DeviceCountRecord rec;
  rec.home = HomeId{1};
  rec.sampled = t0 + Hours(20);
  rec.unique_total = 8;
  repo_.add_device_count(rec);
  const auto cdf = UniqueDevicesCdf(repo_);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf.median(), 8.0);
  EXPECT_DOUBLE_EQ(MeanUniqueDevices(repo_), 8.0);
}

TEST_F(InfrastructureTest, ConnectedDevicesByRegion) {
  RegisterHome(1, true);
  RegisterHome(2, false);
  AddCensus(1, 2, 3, 1, 8, 5, 2);
  AddCensus(2, 0, 2, 0, 4, 3, 0);
  const auto dev = ConnectedDevices(repo_, true);
  const auto dvg = ConnectedDevices(repo_, false);
  EXPECT_DOUBLE_EQ(dev.wired.mean, 2.0);
  EXPECT_DOUBLE_EQ(dev.wireless.mean, 4.0);
  EXPECT_DOUBLE_EQ(dvg.wired.mean, 0.0);
  EXPECT_DOUBLE_EQ(dvg.wireless.mean, 2.0);
  EXPECT_EQ(dev.wired.homes, 1);
}

TEST_F(InfrastructureTest, ConnectedWirelessByBand) {
  RegisterHome(1, true);
  AddCensus(1, 0, 4, 1, 7, 5, 2);
  const auto bands = ConnectedWireless(repo_, true);
  EXPECT_DOUBLE_EQ(bands.band24.mean, 4.0);
  EXPECT_DOUBLE_EQ(bands.band5.mean, 1.0);
}

TEST_F(InfrastructureTest, UniqueDevicesPerBandCdfs) {
  RegisterHome(1, true);
  RegisterHome(2, true);
  AddCensus(1, 0, 3, 1, 6, 5, 2);
  AddCensus(2, 0, 2, 0, 4, 3, 0);
  const auto cdfs = UniqueDevicesPerBand(repo_);
  EXPECT_EQ(cdfs.band24.size(), 2u);
  EXPECT_DOUBLE_EQ(cdfs.band24.median(), 4.0);
  EXPECT_DOUBLE_EQ(cdfs.band5.median(), 1.0);
}

TEST_F(InfrastructureTest, NeighborApsMedianPerHome) {
  RegisterHome(1, true);
  RegisterHome(2, false);
  for (int i = 0; i < 9; ++i) {
    collect::WifiScanRecord scan;
    scan.home = HomeId{1};
    scan.scanned = repo_.windows().wifi.start + Hours(i);
    scan.band = wireless::Band::k2_4GHz;
    scan.visible_aps = 18 + (i % 3);  // median 19
    repo_.add_wifi_scan(scan);
    scan.home = HomeId{2};
    scan.visible_aps = 2;
    repo_.add_wifi_scan(scan);
    // 5 GHz scans must not leak into the 2.4 GHz analysis.
    scan.home = HomeId{1};
    scan.band = wireless::Band::k5GHz;
    scan.visible_aps = 0;
    repo_.add_wifi_scan(scan);
  }
  const auto cdfs = NeighborAps(repo_);
  ASSERT_EQ(cdfs.developed.size(), 1u);
  ASSERT_EQ(cdfs.developing.size(), 1u);
  EXPECT_DOUBLE_EQ(cdfs.developed.median(), 19.0);
  EXPECT_DOUBLE_EQ(cdfs.developing.median(), 2.0);
  const auto cdfs5 = NeighborAps5(repo_);
  EXPECT_DOUBLE_EQ(cdfs5.developed.median(), 0.0);
}

TEST_F(InfrastructureTest, AlwaysConnectedTableCountsFlags) {
  RegisterHome(1, true, true, false);
  RegisterHome(2, true, true, true);
  RegisterHome(3, true, false, false);
  RegisterHome(4, false, false, true);
  RegisterHome(5, false, false, false);
  const auto table = AlwaysConnected(repo_);
  EXPECT_EQ(table.developed.total_homes, 3);
  EXPECT_EQ(table.developed.with_wired, 2);
  EXPECT_EQ(table.developed.with_wireless, 1);
  EXPECT_EQ(table.developing.total_homes, 2);
  EXPECT_EQ(table.developing.with_wired, 0);
  EXPECT_EQ(table.developing.with_wireless, 1);
  EXPECT_NEAR(table.developed.wired_fraction(), 2.0 / 3.0, 1e-9);
}

TEST_F(InfrastructureTest, AlwaysConnectedSkipsNonReportingHomes) {
  collect::HomeInfo info;
  info.id = HomeId{9};
  info.developed = true;
  info.reports_devices = false;  // not in the Devices sub-population
  info.has_always_wired = true;
  repo_.register_home(info);
  const auto table = AlwaysConnected(repo_);
  EXPECT_EQ(table.developed.total_homes, 0);
}

TEST_F(InfrastructureTest, AllPortsUsedFraction) {
  RegisterHome(1, true);
  RegisterHome(2, true);
  AddCensus(1, 4, 1, 0, 6, 2, 0);  // all four ports in use
  AddCensus(2, 1, 3, 1, 6, 4, 1);
  EXPECT_DOUBLE_EQ(AllPortsUsedFraction(repo_, true), 0.5);
  EXPECT_DOUBLE_EQ(AllPortsUsedFraction(repo_, false), 0.0);
}

TEST_F(InfrastructureTest, EmptyRepositorySafe) {
  EXPECT_TRUE(UniqueDevicesCdf(repo_).empty());
  EXPECT_DOUBLE_EQ(MeanUniqueDevices(repo_), 0.0);
  const auto table = AlwaysConnected(repo_);
  EXPECT_EQ(table.developed.total_homes, 0);
  EXPECT_DOUBLE_EQ(table.developed.wired_fraction(), 0.0);
}

}  // namespace
}  // namespace bismark::analysis
