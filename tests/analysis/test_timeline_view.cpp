#include <gtest/gtest.h>

#include "analysis/timeline_view.h"

namespace bismark::analysis {
namespace {

using collect::HeartbeatRun;
using collect::HomeId;

const TimePoint t0 = MakeTime({2013, 4, 1});  // a Monday

TEST(TimelineViewTest, FullyOnlineDayAllHashes) {
  std::vector<HeartbeatRun> runs = {{HomeId{1}, t0, t0 + Days(3)}};
  const auto days = RenderTimeline(runs, TimeZone{Hours(0)}, t0, 3);
  ASSERT_EQ(days.size(), 3u);
  for (const auto& day : days) {
    EXPECT_EQ(day.cells, std::string(48, '#'));
    EXPECT_NEAR(day.online_fraction, 1.0, 1e-9);
  }
}

TEST(TimelineViewTest, OfflineDayAllDots) {
  std::vector<HeartbeatRun> runs = {{HomeId{1}, t0, t0 + Days(1)}};
  const auto days = RenderTimeline(runs, TimeZone{Hours(0)}, t0, 2);
  ASSERT_EQ(days.size(), 2u);
  EXPECT_EQ(days[1].cells, std::string(48, '.'));
  EXPECT_DOUBLE_EQ(days[1].online_fraction, 0.0);
}

TEST(TimelineViewTest, EveningOnlyPattern) {
  // Fig. 6b shape: online 18:00-22:00 only.
  std::vector<HeartbeatRun> runs;
  for (int d = 0; d < 2; ++d) {
    runs.push_back({HomeId{1}, t0 + Days(d) + Hours(18), t0 + Days(d) + Hours(22)});
  }
  const auto days = RenderTimeline(runs, TimeZone{Hours(0)}, t0, 2);
  for (const auto& day : days) {
    // 30-minute cells: 18:00 = cell 36, 22:00 = cell 44.
    for (int c = 0; c < 48; ++c) {
      const bool expected_on = c >= 36 && c < 44;
      EXPECT_EQ(day.cells[static_cast<std::size_t>(c)], expected_on ? '#' : '.')
          << "cell " << c;
    }
    EXPECT_NEAR(day.online_fraction, 4.0 / 24.0, 0.01);
  }
}

TEST(TimelineViewTest, TimezoneShiftsCells) {
  // Online 18:00-22:00 UTC == 2:00-6:00 in UTC+8 (the Fig. 6b China home
  // would look wrong without local-time rendering).
  std::vector<HeartbeatRun> runs = {{HomeId{1}, t0 + Hours(18), t0 + Hours(22)}};
  const auto days = RenderTimeline(runs, TimeZone{Hours(8)}, t0 + Hours(18), 1);
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(days[0].cells[4], '#');   // 02:00 local
  EXPECT_EQ(days[0].cells[40], '.');  // 20:00 local
}

TEST(TimelineViewTest, CustomResolution) {
  TimelineViewOptions options;
  options.columns_per_day = 24;
  options.online_char = 'O';
  options.offline_char = '_';
  std::vector<HeartbeatRun> runs = {{HomeId{1}, t0, t0 + Hours(12)}};
  const auto days = RenderTimeline(runs, TimeZone{Hours(0)}, t0, 1, options);
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(days[0].cells, std::string(12, 'O') + std::string(12, '_'));
}

class ArchetypeTest : public ::testing::Test {
 protected:
  ArchetypeTest() : repo_(collect::DatasetWindows::Compressed(t0, 4)) {
    const Interval w = repo_.windows().heartbeats;
    // Home 1: always on.
    Register(1);
    repo_.add_heartbeat_run({HomeId{1}, w.start, w.end});
    // Home 2: appliance — evenings only.
    Register(2);
    for (int d = 0; d < 28; ++d) {
      repo_.add_heartbeat_run(
          {HomeId{2}, w.start + Days(d) + Hours(18), w.start + Days(d) + Hours(21)});
    }
    // Home 3: flaky — up but interrupted several times a day.
    Register(3);
    TimePoint cursor = w.start;
    while (cursor < w.end) {
      repo_.add_heartbeat_run({HomeId{3}, cursor, cursor + Hours(5)});
      cursor += Hours(5) + Minutes(20);
    }
  }
  void Register(int id) {
    collect::HomeInfo info;
    info.id = HomeId{id};
    info.country_code = "US";
    repo_.register_home(info);
  }
  collect::DataRepository repo_;
};

TEST_F(ArchetypeTest, FindsAlwaysOn) {
  EXPECT_EQ(FindArchetype(repo_, AvailabilityArchetype::kAlwaysOn).value, 1);
}

TEST_F(ArchetypeTest, FindsAppliance) {
  EXPECT_EQ(FindArchetype(repo_, AvailabilityArchetype::kAppliance).value, 2);
}

TEST_F(ArchetypeTest, FindsFlaky) {
  EXPECT_EQ(FindArchetype(repo_, AvailabilityArchetype::kFlaky).value, 3);
}

}  // namespace
}  // namespace bismark::analysis
