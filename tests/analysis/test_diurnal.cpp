#include <gtest/gtest.h>

#include "analysis/diurnal.h"

namespace bismark::analysis {
namespace {

using collect::HomeId;

// Nov 1 2012 (the WiFi window start) was a Thursday.
const TimePoint t0 = MakeTime({2012, 11, 1});

class DiurnalTest : public ::testing::Test {
 protected:
  DiurnalTest() : repo_(collect::DatasetWindows::Paper()) {}

  void RegisterHome(int id, Duration utc_offset) {
    collect::HomeInfo info;
    info.id = HomeId{id};
    info.developed = true;
    info.utc_offset = utc_offset;
    info.reports_wifi = true;
    repo_.register_home(info);
  }

  void AddScan(int home, TimePoint when, int clients,
               wireless::Band band = wireless::Band::k2_4GHz) {
    collect::WifiScanRecord scan;
    scan.home = HomeId{home};
    scan.scanned = when;
    scan.band = band;
    scan.associated_clients = clients;
    repo_.add_wifi_scan(scan);
  }

  collect::DataRepository repo_;
};

TEST_F(DiurnalTest, EveningPeakAppearsAtLocalHour) {
  RegisterHome(1, Hours(0));
  // Two weekdays: 3 clients at 20:00, 1 client at 04:00.
  for (int d = 0; d < 2; ++d) {
    AddScan(1, t0 + Days(d) + Hours(20), 3);
    AddScan(1, t0 + Days(d) + Hours(4), 1);
  }
  const auto profile = WirelessDiurnalProfile(repo_);
  EXPECT_DOUBLE_EQ(profile.weekday[20], 3.0);
  EXPECT_DOUBLE_EQ(profile.weekday[4], 1.0);
  EXPECT_DOUBLE_EQ(profile.weekday[12], 0.0);  // no samples
}

TEST_F(DiurnalTest, TimezoneMapsUtcToLocalHours) {
  RegisterHome(1, Hours(8));  // China
  AddScan(1, t0 + Hours(12), 5);  // 12:00 UTC = 20:00 local
  const auto profile = WirelessDiurnalProfile(repo_);
  EXPECT_DOUBLE_EQ(profile.weekday[20], 5.0);
  EXPECT_DOUBLE_EQ(profile.weekday[12], 0.0);
}

TEST_F(DiurnalTest, WeekendSplit) {
  RegisterHome(1, Hours(0));
  // Nov 3 2012 was a Saturday.
  const TimePoint saturday = MakeTime({2012, 11, 3});
  AddScan(1, saturday + Hours(14), 4);
  AddScan(1, t0 + Hours(14), 2);  // Thursday
  const auto profile = WirelessDiurnalProfile(repo_);
  EXPECT_DOUBLE_EQ(profile.weekend[14], 4.0);
  EXPECT_DOUBLE_EQ(profile.weekday[14], 2.0);
}

TEST_F(DiurnalTest, BandsSumIntoProfile) {
  RegisterHome(1, Hours(0));
  AddScan(1, t0 + Hours(20), 3, wireless::Band::k2_4GHz);
  AddScan(1, t0 + Hours(20), 2, wireless::Band::k5GHz);
  const auto profile = WirelessDiurnalProfile(repo_);
  EXPECT_DOUBLE_EQ(profile.weekday[20], 5.0);
}

TEST_F(DiurnalTest, SwingMetrics) {
  DiurnalProfile profile;
  profile.weekday.fill(1.0);
  profile.weekday[20] = 3.0;
  profile.weekend.fill(2.0);
  profile.weekend[20] = 2.4;
  EXPECT_DOUBLE_EQ(profile.weekday_peak(), 3.0);
  EXPECT_DOUBLE_EQ(profile.weekday_trough(), 1.0);
  EXPECT_DOUBLE_EQ(profile.weekday_swing(), 3.0);
  EXPECT_DOUBLE_EQ(profile.weekend_swing(), 1.2);
}

TEST_F(DiurnalTest, CensusProfileFromDeviceCounts) {
  RegisterHome(1, Hours(0));
  collect::DeviceCountRecord rec;
  rec.home = HomeId{1};
  rec.sampled = MakeTime({2013, 3, 7}, 20, 0, 0);  // Thursday 20:00
  rec.wireless_24 = 2;
  rec.wireless_5 = 1;
  repo_.add_device_count(rec);
  const auto profile = CensusDiurnalProfile(repo_);
  EXPECT_DOUBLE_EQ(profile.weekday[20], 3.0);
}

TEST_F(DiurnalTest, UnknownHomeScansIgnored) {
  AddScan(99, t0 + Hours(20), 7);  // never registered
  const auto profile = WirelessDiurnalProfile(repo_);
  EXPECT_DOUBLE_EQ(profile.weekday[20], 0.0);
}

}  // namespace
}  // namespace bismark::analysis
