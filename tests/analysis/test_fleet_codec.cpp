// Fleet-summary checkpoint codec: the nine sketches plus scalar counts
// round-trip exactly, and damaged blobs fail closed (a resume recomputes
// rather than trusting a bad checkpoint).
#include <gtest/gtest.h>

#include <string>

#include "analysis/fleet.h"
#include "core/rng.h"

namespace bismark::analysis {
namespace {

FleetSummary MakeSummary() {
  Rng rng(20131023);
  FleetSummary s;
  s.homes = 126;
  s.rows = 987654;
  for (int i = 0; i < 2000; ++i) {
    s.availability_fraction.add(rng.uniform());
    s.downtimes_per_day.add(rng.exponential(0.4));
    s.unique_devices.add(static_cast<double>(rng.uniform_int(1, 30)));
    s.capacity_down_mbps.add(rng.lognormal(2.5, 0.8));
    s.capacity_up_mbps.add(rng.lognormal(1.0, 0.7));
    s.visible_aps.add(static_cast<double>(rng.uniform_int(0, 25)));
    s.associated_clients.add(static_cast<double>(rng.uniform_int(0, 12)));
    s.throughput_down_mbps.add(rng.uniform(0.0, 40.0));
    s.flow_kbytes.add(rng.pareto(1.0, 1.2));
  }
  for (const char* code : {"US", "BR", "IN"}) {
    CountryCapacity& cc = s.capacity_by_country[code];
    cc.homes = 42;
    for (int i = 0; i < 200; ++i) {
      cc.down_mbps.add(rng.lognormal(2.5, 0.8));
      cc.up_mbps.add(rng.lognormal(1.0, 0.7));
    }
  }
  // One rosters-only country: registered homes, no capacity probes yet.
  s.capacity_by_country["ZA"].homes = 3;
  return s;
}

TEST(FleetSummaryCodec, RoundTripPreservesEveryDistribution) {
  const FleetSummary original = MakeSummary();
  FleetSummary loaded;
  std::string error;
  ASSERT_TRUE(DeserializeFleetSummary(SerializeFleetSummary(original), &loaded, &error))
      << error;
  EXPECT_EQ(loaded.homes, original.homes);
  EXPECT_EQ(loaded.rows, original.rows);
  const auto same = [](const QuantileSketch& a, const QuantileSketch& b) {
    ASSERT_EQ(a.count(), b.count());
    for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
      EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << q;
    }
  };
  same(loaded.availability_fraction, original.availability_fraction);
  same(loaded.downtimes_per_day, original.downtimes_per_day);
  same(loaded.unique_devices, original.unique_devices);
  same(loaded.capacity_down_mbps, original.capacity_down_mbps);
  same(loaded.capacity_up_mbps, original.capacity_up_mbps);
  same(loaded.visible_aps, original.visible_aps);
  same(loaded.associated_clients, original.associated_clients);
  same(loaded.throughput_down_mbps, original.throughput_down_mbps);
  same(loaded.flow_kbytes, original.flow_kbytes);

  ASSERT_EQ(loaded.capacity_by_country.size(), original.capacity_by_country.size());
  for (const auto& [code, cc] : original.capacity_by_country) {
    const auto it = loaded.capacity_by_country.find(code);
    ASSERT_NE(it, loaded.capacity_by_country.end()) << code;
    EXPECT_EQ(it->second.homes, cc.homes) << code;
    same(it->second.down_mbps, cc.down_mbps);
    same(it->second.up_mbps, cc.up_mbps);
  }
}

TEST(FleetSummaryCodec, V1BlobWithoutCountryTableStillLoads) {
  // FLS1 checkpoints predate the per-country capacity table; a resume of an
  // old fleet run must reload the nine sketches and simply recompute the
  // regional breakdown.
  FleetSummary original = MakeSummary();
  original.capacity_by_country.clear();
  std::string blob = SerializeFleetSummary(original);
  ASSERT_EQ(blob.compare(0, 4, "FLS2"), 0);
  blob[3] = '1';                    // rewrite the magic to FLS1...
  blob.resize(blob.size() - 4);     // ...and drop the empty country count
  FleetSummary loaded;
  std::string error;
  ASSERT_TRUE(DeserializeFleetSummary(blob, &loaded, &error)) << error;
  EXPECT_EQ(loaded.homes, original.homes);
  EXPECT_EQ(loaded.rows, original.rows);
  EXPECT_EQ(loaded.flow_kbytes.count(), original.flow_kbytes.count());
  EXPECT_TRUE(loaded.capacity_by_country.empty());
}

TEST(FleetSummaryCodec, FailsClosedOnMalformedCountryTable) {
  const std::string blob = SerializeFleetSummary(MakeSummary());
  FleetSummary out;
  std::string error;
  // Chop inside the country table: a truncated entry must not half-load.
  EXPECT_FALSE(DeserializeFleetSummary(blob.substr(0, blob.size() - 9), &out, &error));
}

TEST(FleetSummaryCodec, FailsClosedOnDamage) {
  const std::string blob = SerializeFleetSummary(MakeSummary());
  FleetSummary out;
  std::string error;
  EXPECT_FALSE(DeserializeFleetSummary("", &out, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
  EXPECT_FALSE(DeserializeFleetSummary(blob.substr(0, blob.size() / 3), &out, &error));
  EXPECT_FALSE(DeserializeFleetSummary(blob + "tail", &out, &error));
  EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
  std::string bent = blob;
  bent[1] = 'X';
  EXPECT_FALSE(DeserializeFleetSummary(bent, &out, &error));
}

}  // namespace
}  // namespace bismark::analysis
