#include <gtest/gtest.h>

#include "analysis/usage.h"

namespace bismark::analysis {
namespace {

using collect::HomeId;

class UsageTest : public ::testing::Test {
 protected:
  UsageTest() : repo_(collect::DatasetWindows::Paper()) {}

  net::MacAddress Mac(std::uint32_t oui, std::uint32_t nic) {
    return net::MacAddress::FromParts(oui, nic);
  }

  void AddDeviceTraffic(int home, net::MacAddress mac, net::VendorClass vendor, Bytes bytes) {
    collect::DeviceTrafficRecord rec;
    rec.home = HomeId{home};
    rec.device_mac = mac;
    rec.vendor = vendor;
    rec.bytes_total = bytes;
    rec.flows = 10;
    repo_.add_device_traffic(rec);
  }

  void AddFlow(int home, net::MacAddress mac, const std::string& domain, Bytes down,
               int count = 1) {
    for (int i = 0; i < count; ++i) {
      collect::TrafficFlowRecord rec;
      rec.home = HomeId{home};
      rec.flow = net::FlowId{next_flow_++};
      rec.first_packet = repo_.windows().traffic.start + Minutes(next_flow_);
      rec.last_packet = rec.first_packet + Minutes(1);
      rec.device_mac = mac;
      rec.bytes_down = down;
      rec.domain = domain;
      rec.domain_anonymized = domain.rfind("anon-", 0) == 0;
      repo_.add_flow(std::move(rec));
    }
  }

  std::uint64_t next_flow_{1};
  collect::DataRepository repo_;
};

TEST_F(UsageTest, VendorHistogramFiltersAndSorts) {
  AddDeviceTraffic(1, Mac(0x001EC2, 1), net::VendorClass::kApple, MB(100));
  AddDeviceTraffic(1, Mac(0x001EC2, 2), net::VendorClass::kApple, MB(50));
  AddDeviceTraffic(1, Mac(0x0024D7, 3), net::VendorClass::kIntel, MB(80));
  AddDeviceTraffic(1, Mac(0x000D4B, 4), net::VendorClass::kInternetTv, KB(50));  // under 100 KB
  AddDeviceTraffic(1, Mac(0x14144B, 5), net::VendorClass::kGateway, MB(10));     // filtered
  const auto histogram = VendorHistogram(repo_);
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram[0].vendor, net::VendorClass::kApple);
  EXPECT_EQ(histogram[0].devices, 2);
  EXPECT_EQ(histogram[1].vendor, net::VendorClass::kIntel);
}

TEST_F(UsageTest, VendorHistogramCanKeepGateways) {
  AddDeviceTraffic(1, Mac(0x14144B, 5), net::VendorClass::kGateway, MB(10));
  EXPECT_TRUE(VendorHistogram(repo_, KB(100), true).empty());
  EXPECT_EQ(VendorHistogram(repo_, KB(100), false).size(), 1u);
}

TEST_F(UsageTest, DeviceSharesRankedAndAveraged) {
  // Home 1: dominant device 60 %, second 30 %, third 10 %.
  AddDeviceTraffic(1, Mac(0x001EC2, 1), net::VendorClass::kApple, MB(600));
  AddDeviceTraffic(1, Mac(0x001EC2, 2), net::VendorClass::kApple, MB(300));
  AddDeviceTraffic(1, Mac(0x001EC2, 3), net::VendorClass::kApple, MB(100));
  // Home 2: 80/20.
  AddDeviceTraffic(2, Mac(0x001EC2, 4), net::VendorClass::kApple, MB(800));
  AddDeviceTraffic(2, Mac(0x001EC2, 5), net::VendorClass::kApple, MB(200));
  const auto conc = DeviceUsageShares(repo_, 4);
  EXPECT_EQ(conc.homes, 2);
  EXPECT_NEAR(conc.share_by_rank[0], 0.7, 1e-9);   // (0.6 + 0.8) / 2
  EXPECT_NEAR(conc.share_by_rank[1], 0.25, 1e-9);  // (0.3 + 0.2) / 2
  EXPECT_NEAR(conc.share_by_rank[2], 0.1, 1e-9);   // only home 1 has rank 3
}

TEST_F(UsageTest, TopDomainPrevalenceCountsMembership) {
  const auto mac = Mac(0x001EC2, 1);
  // google is top-1 in both homes; espn only in home 2's top-10.
  AddFlow(1, mac, "google.com", MB(100));
  AddFlow(1, mac, "netflix.com", MB(50));
  AddFlow(2, mac, "google.com", MB(100));
  for (int i = 0; i < 6; ++i) {
    AddFlow(2, mac, "filler-" + std::to_string(i) + ".com", MB(20 - i));
  }
  AddFlow(2, mac, "espn.com", MB(1));
  const auto prevalence = TopDomainPrevalence(repo_);
  ASSERT_FALSE(prevalence.empty());
  EXPECT_EQ(prevalence[0].domain, "google.com");
  EXPECT_EQ(prevalence[0].homes_top5, 2);
  EXPECT_EQ(prevalence[0].homes_top10, 2);
  for (const auto& p : prevalence) {
    if (p.domain == "espn.com") {
      EXPECT_EQ(p.homes_top5, 0);
      EXPECT_EQ(p.homes_top10, 1);
    }
    EXPECT_GE(p.homes_top10, p.homes_top5);
  }
}

TEST_F(UsageTest, DomainSharesVolumeVsConnections) {
  const auto mac = Mac(0x001EC2, 1);
  // netflix: 1 connection, 380 MB. google: 19 connections, 5 MB each.
  AddFlow(1, mac, "netflix.com", MB(380));
  AddFlow(1, mac, "google.com", MB(5), 19);
  // Anonymized tail: 20 connections, 300 MB total.
  AddFlow(1, mac, "anon-1234", MB(15), 20);
  const auto conc = DomainUsageShares(repo_, 5);
  ASSERT_EQ(conc.homes, 1);
  const double total_mb = 380.0 + 95.0 + 300.0;
  // 19a: volume rank 1 = netflix.
  EXPECT_NEAR(conc.by_rank[0].volume_share, 380.0 / total_mb, 1e-6);
  // 19c: netflix's connection share is tiny (1 of 40).
  EXPECT_NEAR(conc.by_rank[0].conns_by_vol_rank, 1.0 / 40.0, 1e-6);
  // 19b: the connection-rank-1 whitelisted domain is google (19 of 40).
  EXPECT_NEAR(conc.by_rank[0].conns_by_conn_rank, 19.0 / 40.0, 1e-6);
  // Whitelist coverage ~61 % of volume here.
  EXPECT_NEAR(conc.whitelisted_volume_share, 475.0 / total_mb, 1e-6);
  EXPECT_NEAR(conc.whitelisted_conn_share, 20.0 / 40.0, 1e-6);
}

TEST_F(UsageTest, DeviceDomainProfileSharesSumToOne) {
  const auto roku = Mac(0x000D4B, 7);
  AddFlow(1, roku, "netflix.com", MB(700));
  AddFlow(1, roku, "hulu.com", MB(200));
  AddFlow(1, roku, "pandora.com", MB(100));
  const auto profile = DeviceDomainProfile(repo_, roku);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0].domain, "netflix.com");
  EXPECT_NEAR(profile[0].share, 0.7, 1e-9);
  double total = 0.0;
  for (const auto& d : profile) total += d.share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(UsageTest, DeviceDomainProfileCapsDomains) {
  const auto mac = Mac(0x001EC2, 1);
  for (int i = 0; i < 20; ++i) {
    AddFlow(1, mac, "site-" + std::to_string(i) + ".com", MB(10 + i));
  }
  EXPECT_EQ(DeviceDomainProfile(repo_, mac, 8).size(), 8u);
}

TEST_F(UsageTest, FindDeviceByVendorPicksBiggest) {
  AddDeviceTraffic(1, Mac(0x000D4B, 1), net::VendorClass::kInternetTv, MB(100));
  AddDeviceTraffic(2, Mac(0x000D4B, 2), net::VendorClass::kInternetTv, MB(500));
  const auto mac = FindDeviceByVendor(repo_, net::VendorClass::kInternetTv);
  EXPECT_EQ(mac, Mac(0x000D4B, 2));
  EXPECT_EQ(FindDeviceByVendor(repo_, net::VendorClass::kVmware), net::MacAddress{});
}

TEST_F(UsageTest, ConcentrationIndexDistinguishesDeviceKinds) {
  const auto roku = Mac(0x000D4B, 1);
  AddFlow(1, roku, "netflix.com", MB(900));
  AddFlow(1, roku, "pandora.com", MB(100));
  const auto laptop = Mac(0x001EC2, 2);
  for (int i = 0; i < 10; ++i) {
    AddFlow(1, laptop, "site-" + std::to_string(i) + ".com", MB(100));
  }
  // Fig. 20 / Section 7: streamers concentrate, laptops spread — the basis
  // for traffic-pattern device fingerprinting.
  EXPECT_GT(DomainConcentrationIndex(repo_, roku), 0.8);
  EXPECT_LT(DomainConcentrationIndex(repo_, laptop), 0.2);
}

TEST_F(UsageTest, EmptyRepositorySafe) {
  EXPECT_TRUE(VendorHistogram(repo_).empty());
  EXPECT_EQ(DeviceUsageShares(repo_).homes, 0);
  EXPECT_TRUE(TopDomainPrevalence(repo_).empty());
  EXPECT_EQ(DomainUsageShares(repo_).homes, 0);
  EXPECT_TRUE(DeviceDomainProfile(repo_, Mac(1, 1)).empty());
  EXPECT_DOUBLE_EQ(DomainConcentrationIndex(repo_, Mac(1, 1)), 0.0);
}

}  // namespace
}  // namespace bismark::analysis
