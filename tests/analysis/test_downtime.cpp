#include <gtest/gtest.h>

#include "analysis/downtime.h"

namespace bismark::analysis {
namespace {

using collect::HeartbeatRun;
using collect::HomeId;

const TimePoint t0 = MakeTime({2012, 10, 1});
const Interval kWindow{t0, t0 + Days(56)};

TEST(ExtractDowntimesTest, GapBelowThresholdIgnored) {
  std::vector<HeartbeatRun> runs = {
      {HomeId{1}, t0, t0 + Hours(1)},
      {HomeId{1}, t0 + Hours(1) + Minutes(5), t0 + Hours(2)},  // 5-min gap
  };
  EXPECT_TRUE(ExtractDowntimes(runs, kWindow, Minutes(10)).empty());
}

TEST(ExtractDowntimesTest, GapAtThresholdCounts) {
  std::vector<HeartbeatRun> runs = {
      {HomeId{1}, t0, t0 + Hours(1)},
      {HomeId{1}, t0 + Hours(1) + Minutes(10), t0 + Hours(2)},
  };
  const auto downtimes = ExtractDowntimes(runs, kWindow, Minutes(10));
  ASSERT_EQ(downtimes.size(), 1u);
  EXPECT_EQ(downtimes[0].gap.length(), Minutes(10));
  EXPECT_EQ(downtimes[0].gap.start, t0 + Hours(1));
}

TEST(ExtractDowntimesTest, MultipleGapsAndUnsortedInput) {
  std::vector<HeartbeatRun> runs = {
      {HomeId{1}, t0 + Hours(5), t0 + Hours(6)},
      {HomeId{1}, t0, t0 + Hours(1)},
      {HomeId{1}, t0 + Hours(2), t0 + Hours(4)},
  };
  const auto downtimes = ExtractDowntimes(runs, kWindow, Minutes(10));
  ASSERT_EQ(downtimes.size(), 2u);
  EXPECT_EQ(downtimes[0].gap.length(), Hours(1));
  EXPECT_EQ(downtimes[1].gap.length(), Hours(1));
}

TEST(ExtractDowntimesTest, WindowEdgesNotCounted) {
  // Leading/trailing "gaps" to the window edges are not downtime.
  std::vector<HeartbeatRun> runs = {
      {HomeId{1}, t0 + Days(10), t0 + Days(20)},
  };
  EXPECT_TRUE(ExtractDowntimes(runs, kWindow, Minutes(10)).empty());
}

TEST(ExtractDowntimesTest, EmptyRuns) {
  EXPECT_TRUE(ExtractDowntimes({}, kWindow, Minutes(10)).empty());
}

class AvailabilityAnalysisTest : public ::testing::Test {
 protected:
  AvailabilityAnalysisTest() : repo_(collect::DatasetWindows::Compressed(t0, 8)) {}

  void AddHome(int id, const std::string& country, bool developed,
               const std::vector<Interval>& online) {
    collect::HomeInfo info;
    info.id = HomeId{id};
    info.country_code = country;
    info.developed = developed;
    repo_.register_home(info);
    for (const auto& iv : online) {
      repo_.add_heartbeat_run(HeartbeatRun{HomeId{id}, iv.start, iv.end});
    }
  }

  collect::DataRepository repo_;
};

TEST_F(AvailabilityAnalysisTest, PerHomeStats) {
  // Home 1: up the whole window except one 30-minute outage.
  AddHome(1, "US", true,
          {{t0, t0 + Days(28)}, {t0 + Days(28) + Minutes(30), t0 + Days(56)}});
  const auto homes = AnalyzeAvailability(repo_, {Minutes(10), 25.0});
  ASSERT_EQ(homes.size(), 1u);
  EXPECT_EQ(homes[0].downtimes, 1);
  EXPECT_NEAR(homes[0].online_fraction(), 1.0, 0.001);
  EXPECT_NEAR(homes[0].durations_s[0], 1800.0, 1.0);
  EXPECT_NEAR(homes[0].downtimes_per_day(), 1.0 / 56.0, 1e-6);
}

TEST_F(AvailabilityAnalysisTest, MinOnlineDaysFilter) {
  AddHome(1, "US", true, {{t0, t0 + Days(10)}});   // only 10 days online
  AddHome(2, "US", true, {{t0, t0 + Days(30)}});
  const auto homes = AnalyzeAvailability(repo_, {Minutes(10), 25.0});
  ASSERT_EQ(homes.size(), 1u);
  EXPECT_EQ(homes[0].home.value, 2);
}

TEST_F(AvailabilityAnalysisTest, RegionalCdfsSplitByDevelopment) {
  AddHome(1, "US", true, {{t0, t0 + Days(56)}});
  AddHome(2, "IN", false,
          {{t0, t0 + Days(20)}, {t0 + Days(21), t0 + Days(56)}});
  const auto homes = AnalyzeAvailability(repo_, {Minutes(10), 10.0});
  const auto freq = DowntimeFrequencyCdfs(homes);
  EXPECT_EQ(freq.developed.size(), 1u);
  EXPECT_EQ(freq.developing.size(), 1u);
  EXPECT_DOUBLE_EQ(freq.developed.median(), 0.0);
  EXPECT_GT(freq.developing.median(), 0.0);

  const auto dur = DowntimeDurationCdfs(homes);
  EXPECT_EQ(dur.developed.size(), 0u);
  EXPECT_EQ(dur.developing.size(), 1u);
  EXPECT_NEAR(dur.developing.median(), 86400.0, 1.0);
}

TEST_F(AvailabilityAnalysisTest, CountryScatterAggregates) {
  for (int i = 0; i < 4; ++i) {
    // Each US home has i downtimes of 30 min.
    std::vector<Interval> online;
    TimePoint cursor = t0;
    for (int d = 0; d < i; ++d) {
      online.push_back({cursor, t0 + Days(10 * (d + 1))});
      cursor = t0 + Days(10 * (d + 1)) + Minutes(30);
    }
    online.push_back({cursor, t0 + Days(56)});
    AddHome(i, "US", true, online);
  }
  AddHome(10, "PK", false, {{t0, t0 + Days(56)}});  // below min_homes

  const auto homes = AnalyzeAvailability(repo_, {Minutes(10), 10.0});
  const auto rows = CountryDowntimeScatter(homes, {{"US", 51700.0}, {"PK", 4450.0}}, 3);
  ASSERT_EQ(rows.size(), 1u);  // PK dropped: fewer than 3 homes
  EXPECT_EQ(rows[0].country_code, "US");
  EXPECT_EQ(rows[0].homes, 4);
  EXPECT_DOUBLE_EQ(rows[0].gdp_ppp, 51700.0);
  EXPECT_NEAR(rows[0].median_downtimes, 1.5, 1e-9);
  EXPECT_NEAR(rows[0].median_duration_s, 1800.0, 1.0);
}

TEST_F(AvailabilityAnalysisTest, RegionSummaryDaysBetween) {
  AddHome(1, "US", true, {{t0, t0 + Days(56)}});  // zero downtimes
  AddHome(2, "IN", false,
          {{t0, t0 + Days(1)},
           {t0 + Days(1) + Hours(1), t0 + Days(2)},
           {t0 + Days(2) + Hours(1), t0 + Days(56)}});
  const auto homes = AnalyzeAvailability(repo_, {Minutes(10), 10.0});
  const auto summary = SummarizeRegions(homes);
  // US home: no downtime => full window as the gap.
  EXPECT_NEAR(summary.median_days_between_downtimes_developed, 56.0, 1e-9);
  EXPECT_NEAR(summary.median_days_between_downtimes_developing, 28.0, 1e-9);
  EXPECT_NEAR(summary.median_duration_s_developing, 3600.0, 1.0);
}

}  // namespace
}  // namespace bismark::analysis
