#include <gtest/gtest.h>

#include "analysis/collection_artifacts.h"
#include "home/deployment.h"

namespace bismark::analysis {
namespace {

using collect::HeartbeatRun;
using collect::HomeId;

const TimePoint t0 = MakeTime({2012, 10, 1});

class ArtifactDetectorTest : public ::testing::Test {
 protected:
  ArtifactDetectorTest() : repo_(collect::DatasetWindows::Compressed(t0, 4)) {}

  void AddHome(int id, const IntervalSet& online) {
    collect::HomeInfo info;
    info.id = HomeId{id};
    info.country_code = "US";
    info.developed = true;
    repo_.register_home(info);
    for (const auto& iv : online.intervals()) {
      repo_.add_heartbeat_run(HeartbeatRun{HomeId{id}, iv.start, iv.end});
    }
  }

  IntervalSet WholeWindowExcept(const std::vector<Interval>& gaps) {
    const Interval w = repo_.windows().heartbeats;
    IntervalSet off;
    for (const auto& g : gaps) off.add(g);
    IntervalSet on;
    TimePoint cursor = w.start;
    const IntervalSet clipped = off.clipped(w.start, w.end);
    for (const auto& gap : clipped.intervals()) {
      if (gap.start > cursor) on.add(cursor, gap.start);
      cursor = gap.end;
    }
    if (cursor < w.end) on.add(cursor, w.end);
    return on;
  }

  collect::DataRepository repo_;
};

TEST_F(ArtifactDetectorTest, FindsSimultaneousGap) {
  // Five homes, all silent for the same two hours: a collector outage.
  const Interval outage{t0 + Days(10), t0 + Days(10) + Hours(2)};
  for (int id = 0; id < 5; ++id) AddHome(id, WholeWindowExcept({outage}));
  const auto report = DetectCollectionOutages(repo_);
  EXPECT_EQ(report.reporting_homes, 5);
  ASSERT_EQ(report.outages.size(), 1u);
  // Detection resolution is 5 minutes; allow that slack on each edge.
  EXPECT_NEAR(static_cast<double>(report.outages.intervals()[0].start.ms),
              static_cast<double>(outage.start.ms), Minutes(5).ms);
  EXPECT_NEAR(static_cast<double>(report.outages.total().ms),
              static_cast<double>(Hours(2).ms), Minutes(10).ms);
}

TEST_F(ArtifactDetectorTest, IndependentGapsNotFlagged) {
  // Five homes with *different* two-hour gaps: no moment has most homes
  // silent, so nothing is a collection artifact.
  for (int id = 0; id < 5; ++id) {
    AddHome(id, WholeWindowExcept({{t0 + Days(2 + 3 * id), t0 + Days(2 + 3 * id) + Hours(2)}}));
  }
  const auto report = DetectCollectionOutages(repo_);
  EXPECT_TRUE(report.outages.empty());
}

TEST_F(ArtifactDetectorTest, TooFewHomesNeverSaturates) {
  // With fewer than 3 reporting homes the detector refuses to conclude.
  const Interval outage{t0 + Days(5), t0 + Days(5) + Hours(3)};
  AddHome(0, WholeWindowExcept({outage}));
  AddHome(1, WholeWindowExcept({outage}));
  EXPECT_TRUE(DetectCollectionOutages(repo_).outages.empty());
}

TEST_F(ArtifactDetectorTest, CorrectionRemovesArtifactDowntimes) {
  const Interval outage{t0 + Days(10), t0 + Days(10) + Hours(2)};
  // Home 0 also has a genuine outage of its own.
  const Interval genuine{t0 + Days(20), t0 + Days(20) + Hours(1)};
  AddHome(0, WholeWindowExcept({outage, genuine}));
  for (int id = 1; id < 6; ++id) AddHome(id, WholeWindowExcept({outage}));

  const auto raw = AnalyzeAvailability(repo_, {Minutes(10), 1.0});
  const auto artifacts = DetectCollectionOutages(repo_);
  const auto corrected = AnalyzeAvailabilityCorrected(repo_, artifacts, {Minutes(10), 1.0});
  ASSERT_EQ(raw.size(), corrected.size());

  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i].home.value == 0) {
      EXPECT_EQ(raw[i].downtimes, 2);
      EXPECT_EQ(corrected[i].downtimes, 1);  // only the genuine one remains
      EXPECT_NEAR(corrected[i].durations_s[0], 3600.0, 1.0);
    } else {
      EXPECT_EQ(raw[i].downtimes, 1);
      EXPECT_EQ(corrected[i].downtimes, 0);
      // The silent time is credited back as online.
      EXPECT_GT(corrected[i].online_days, raw[i].online_days);
    }
  }
}

TEST_F(ArtifactDetectorTest, EmptyRepositorySafe) {
  const auto report = DetectCollectionOutages(repo_);
  EXPECT_EQ(report.reporting_homes, 0);
  EXPECT_TRUE(report.outages.empty());
}

TEST(ArtifactEndToEndTest, DeploymentCollectorOutagesDetectedAndCorrected) {
  home::DeploymentOptions options;
  options.seed = 7;
  options.windows = collect::DatasetWindows::Compressed(t0, 6);
  options.run_traffic = false;
  options.collector_outages_per_month = 2.0;
  options.collector_outage_mean = Hours(4);
  const auto study = home::Deployment::RunStudy(options);
  const auto& repo = study->repository();

  ASSERT_FALSE(study->collector_outages().empty());

  // The detector should recover most of the true collector downtime.
  const auto report = DetectCollectionOutages(repo);
  const IntervalSet truth =
      study->collector_outages().clipped(repo.windows().heartbeats.start,
                                         repo.windows().heartbeats.end);
  ASSERT_FALSE(report.outages.empty());
  const Duration overlap_total = report.outages.intersect(truth).total();
  EXPECT_GT(static_cast<double>(overlap_total.ms) / static_cast<double>(truth.total().ms),
            0.7);

  // Correction strictly reduces measured downtime counts overall.
  const auto raw = AnalyzeAvailability(repo, {Minutes(10), 10.0});
  const auto corrected = AnalyzeAvailabilityCorrected(repo, report, {Minutes(10), 10.0});
  long long raw_total = 0, corrected_total = 0;
  for (const auto& h : raw) raw_total += h.downtimes;
  for (const auto& h : corrected) corrected_total += h.downtimes;
  EXPECT_LT(corrected_total, raw_total);
}

}  // namespace
}  // namespace bismark::analysis
