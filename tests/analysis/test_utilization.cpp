#include <gtest/gtest.h>

#include "analysis/utilization.h"

namespace bismark::analysis {
namespace {

using collect::HomeId;

class UtilizationTest : public ::testing::Test {
 protected:
  UtilizationTest() : repo_(collect::DatasetWindows::Paper()) {}

  void AddCapacity(int home, double down_mbps, double up_mbps, int samples = 5) {
    for (int i = 0; i < samples; ++i) {
      collect::CapacityRecord rec;
      rec.home = HomeId{home};
      rec.measured = repo_.windows().capacity.start + Hours(12 * i);
      rec.downstream = Mbps(down_mbps);
      rec.upstream = Mbps(up_mbps);
      repo_.add_capacity(rec);
    }
  }

  void AddMinutes(int home, int count, double peak_down_mbps, double peak_up_mbps) {
    for (int i = 0; i < count; ++i) {
      collect::ThroughputMinute m;
      m.home = HomeId{home};
      m.minute_start = repo_.windows().traffic.start + Minutes(i);
      m.peak_down_bps = peak_down_mbps * 1e6;
      m.peak_up_bps = peak_up_mbps * 1e6;
      m.bytes_down = Bytes{static_cast<std::int64_t>(peak_down_mbps * 1e6 / 8.0 * 10)};
      m.bytes_up = Bytes{static_cast<std::int64_t>(peak_up_mbps * 1e6 / 8.0 * 10)};
      repo_.add_throughput_minute(m);
    }
  }

  collect::DataRepository repo_;
};

TEST_F(UtilizationTest, ComputesP95Ratios) {
  AddCapacity(1, 20.0, 4.0);
  AddMinutes(1, 100, 5.0, 1.0);  // constant peaks
  const auto points = LinkSaturation(repo_, {0.95, 30});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_NEAR(points[0].utilization_down_p95, 0.25, 1e-6);
  EXPECT_NEAR(points[0].utilization_up_p95, 0.25, 1e-6);
  EXPECT_EQ(points[0].minutes_observed, 100);
  EXPECT_NEAR(points[0].capacity_down_mbps, 20.0, 1e-9);
}

TEST_F(UtilizationTest, P95PicksTailNotMax) {
  AddCapacity(1, 10.0, 2.0);
  AddMinutes(1, 98, 2.0, 0.2);
  AddMinutes(1, 2, 10.0, 2.0);  // two saturated minutes only
  // Wait: AddMinutes reuses minute offsets; shift the saturated ones.
  const auto points = LinkSaturation(repo_, {0.95, 30});
  ASSERT_EQ(points.size(), 1u);
  // 95th percentile of 100 minutes where only ~2 saturate sits near the
  // low plateau, not at 1.0.
  EXPECT_LT(points[0].utilization_down_p95, 0.9);
}

TEST_F(UtilizationTest, HomesWithFewMinutesDropped) {
  AddCapacity(1, 20.0, 4.0);
  AddMinutes(1, 10, 5.0, 1.0);  // below min_minutes
  EXPECT_TRUE(LinkSaturation(repo_, {0.95, 30}).empty());
}

TEST_F(UtilizationTest, HomesWithoutCapacityDropped) {
  AddMinutes(1, 100, 5.0, 1.0);
  EXPECT_TRUE(LinkSaturation(repo_, {0.95, 30}).empty());
}

TEST_F(UtilizationTest, OversaturationDetection) {
  AddCapacity(1, 20.0, 2.0);
  AddMinutes(1, 100, 5.0, 2.7);  // uplink 1.35x capacity
  AddCapacity(2, 20.0, 4.0);
  AddMinutes(2, 100, 5.0, 4.0);  // exactly at capacity
  const auto points = LinkSaturation(repo_);
  const auto over = OversaturatedUplinks(points, 1.05);
  ASSERT_EQ(over.size(), 1u);
  EXPECT_EQ(over[0].value, 1);
}

TEST_F(UtilizationTest, BusiestHomeSkipsBufferbloatCases) {
  AddCapacity(1, 20.0, 2.0);
  AddMinutes(1, 200, 19.0, 2.8);  // bufferbloat home, very busy
  AddCapacity(2, 20.0, 4.0);
  AddMinutes(2, 200, 15.0, 1.0);  // busy but sane
  const auto points = LinkSaturation(repo_);
  EXPECT_EQ(BusiestHome(points).value, 2);
}

TEST_F(UtilizationTest, TimeseriesBucketsMaxAndBytes) {
  AddCapacity(1, 20.0, 4.0);
  AddMinutes(1, 100, 5.0, 1.0);
  const auto series = UtilizationTimeseries(repo_, HomeId{1}, Hours(4));
  EXPECT_NEAR(series.capacity_down_mbps, 20.0, 1e-9);
  ASSERT_FALSE(series.buckets.empty());
  // 14-day traffic window at 4-hour buckets = 84 buckets.
  EXPECT_EQ(series.buckets.size(), 84u);
  // The 100 minutes all land in the first bucket.
  EXPECT_NEAR(series.buckets[0].max_down_mbps, 5.0, 1e-9);
  EXPECT_GT(series.buckets[0].bytes_down_mb, 0.0);
  EXPECT_DOUBLE_EQ(series.buckets[1].max_down_mbps, 0.0);
}

TEST_F(UtilizationTest, TimeseriesForUnknownHomeIsEmptyButSized) {
  const auto series = UtilizationTimeseries(repo_, HomeId{42}, Hours(4));
  EXPECT_DOUBLE_EQ(series.capacity_down_mbps, 0.0);
  for (const auto& b : series.buckets) {
    EXPECT_DOUBLE_EQ(b.max_down_mbps, 0.0);
  }
}

TEST_F(UtilizationTest, MedianCapacityRobustToOutlierProbe) {
  AddCapacity(1, 20.0, 4.0, 9);
  // One probe ran during a download and reads half the capacity.
  collect::CapacityRecord bad;
  bad.home = HomeId{1};
  bad.measured = repo_.windows().capacity.start + Hours(1);
  bad.downstream = Mbps(10.0);
  bad.upstream = Mbps(2.0);
  repo_.add_capacity(bad);
  AddMinutes(1, 100, 10.0, 1.0);
  const auto points = LinkSaturation(repo_);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_NEAR(points[0].capacity_down_mbps, 20.0, 1e-9);
}

}  // namespace
}  // namespace bismark::analysis
