// The metrics registry's determinism contract: shards merge into the same
// snapshot (and the same rendered bytes) no matter how work was spread
// across them or in what order metrics were registered.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace bismark::obs {
namespace {

std::string Render(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  WritePrometheus(snapshot, out);
  return out.str();
}

TEST(MetricsShardTest, CounterHandlesAccumulate) {
  MetricsShard shard;
  Counter c = shard.counter("requests_total");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same cell.
  EXPECT_EQ(shard.counter("requests_total").value(), 42u);
}

TEST(MetricsShardTest, DefaultConstructedHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histo h;
  c.inc();
  g.observe(1.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsShardTest, GaugeKeepsHighWaterMark) {
  MetricsShard shard;
  Gauge g = shard.gauge("queue_depth_max");
  g.observe(3.0);
  g.observe(9.0);
  g.observe(4.0);
  EXPECT_EQ(g.value(), 9.0);
}

TEST(MetricsShardTest, HandlesStayValidAcrossManyRegistrations) {
  // Deque storage: cells must not move when later registrations grow the
  // shard (the whole point of handing out raw cell pointers).
  MetricsShard shard;
  Counter first = shard.counter("counter_0");
  for (int i = 1; i < 200; ++i) {
    shard.counter("counter_" + std::to_string(i)).inc();
  }
  first.inc(7);
  EXPECT_EQ(shard.counter("counter_0").value(), 7u);
}

TEST(MetricsMergeTest, CountersSumAcrossShards) {
  std::vector<MetricsShard> shards(3);
  shards[0].counter("events_total").inc(10);
  shards[1].counter("events_total").inc(20);
  shards[2].counter("events_total").inc(12);
  shards[2].counter("only_in_last").inc(1);

  const MetricsSnapshot merged = MergeShards(shards);
  EXPECT_EQ(merged.counter_or("events_total"), 42u);
  EXPECT_EQ(merged.counter_or("only_in_last"), 1u);
  EXPECT_EQ(merged.counter_or("absent", 99u), 99u);
}

TEST(MetricsMergeTest, GaugesMergeByMax) {
  std::vector<MetricsShard> shards(2);
  shards[0].gauge("spool_max").observe(5.0);
  shards[1].gauge("spool_max").observe(3.0);
  const MetricsSnapshot merged = MergeShards(shards);
  EXPECT_EQ(merged.gauges.at("spool_max"), 5.0);
}

TEST(MetricsMergeTest, HistogramBucketsMergeBinwise) {
  const HistoSpec spec{0.0, 10.0, 5};  // bins of width 2, plus overflow
  std::vector<MetricsShard> shards(2);
  Histo a = shards[0].histogram("latency", spec);
  a.observe(1.0);   // bin 0
  a.observe(5.0);   // bin 2
  a.observe(99.0);  // overflow
  Histo b = shards[1].histogram("latency", spec);
  b.observe(1.5);  // bin 0
  b.observe(9.9);  // bin 4

  const MetricsSnapshot merged = MergeShards(shards);
  const HistoData& h = merged.histograms.at("latency");
  ASSERT_EQ(h.bins.size(), 6u);
  EXPECT_EQ(h.bins[0], 2u);
  EXPECT_EQ(h.bins[2], 1u);
  EXPECT_EQ(h.bins[4], 1u);
  EXPECT_EQ(h.bins[5], 1u);  // overflow
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 1.0 + 5.0 + 99.0 + 1.5 + 9.9);
}

TEST(MetricsMergeTest, HistogramClampsBelowRangeIntoFirstBin) {
  std::vector<MetricsShard> shards(1);
  Histo h = shards[0].histogram("ratio", HistoSpec{0.0, 1.0, 10});
  h.observe(-0.5);
  h.observe(0.0);
  h.observe(1.0);  // == hi -> overflow
  const MetricsSnapshot merged = MergeShards(shards);
  const HistoData& data = merged.histograms.at("ratio");
  EXPECT_EQ(data.bins[0], 2u);
  EXPECT_EQ(data.bins.back(), 1u);
}

TEST(MetricsMergeTest, HistogramSpecMismatchDropsConflictingShard) {
  std::vector<MetricsShard> shards(2);
  shards[0].histogram("h", HistoSpec{0.0, 1.0, 10}).observe(0.5);
  shards[1].histogram("h", HistoSpec{0.0, 2.0, 4}).observe(0.5);
  const MetricsSnapshot merged = MergeShards(shards);
  const HistoData& h = merged.histograms.at("h");
  EXPECT_EQ(h.spec, (HistoSpec{0.0, 1.0, 10}));  // first spec wins
  EXPECT_EQ(h.count, 1u);                        // conflicting samples dropped
}

TEST(MetricsMergeTest, RegistrationOrderDoesNotAffectRenderedBytes) {
  // Two "runs" register the same metrics in different orders and with work
  // spread differently across shards — the canonical snapshot must render
  // byte-identically.
  std::vector<MetricsShard> run_a(2);
  run_a[0].counter("b_total").inc(5);
  run_a[0].gauge("z_max").observe(2.0);
  run_a[1].counter("a_total").inc(1);
  run_a[1].histogram("m_histo", HistoSpec{0.0, 4.0, 4}).observe(1.0);

  std::vector<MetricsShard> run_b(3);
  run_b[0].histogram("m_histo", HistoSpec{0.0, 4.0, 4}).observe(1.0);
  run_b[1].counter("a_total").inc(1);
  run_b[2].counter("b_total").inc(2);
  run_b[0].counter("b_total").inc(3);
  run_b[2].gauge("z_max").observe(2.0);
  run_b[0].gauge("z_max").observe(1.0);

  EXPECT_EQ(Render(MergeShards(run_a)), Render(MergeShards(run_b)));
}

TEST(MetricsRenderTest, PrometheusOutputIsCanonical) {
  std::vector<MetricsShard> shards(1);
  shards[0].counter("bismark_events_total").inc(3);
  shards[0].histogram("bismark_delay", HistoSpec{0.0, 2.0, 2}).observe(0.5);
  const std::string text = Render(MergeShards(shards));
  EXPECT_NE(text.find("# TYPE bismark_delay histogram"), std::string::npos);
  EXPECT_NE(text.find("bismark_delay_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("bismark_delay_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("bismark_delay_count 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bismark_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("bismark_events_total 3"), std::string::npos);
}

TEST(MetricsRenderTest, LabelledCountersShareOneTypeLine) {
  std::vector<MetricsShard> shards(1);
  shards[0].counter("drops_total{kind=\"dns\"}").inc(1);
  shards[0].counter("drops_total{kind=\"wifi_scan\"}").inc(2);
  const std::string text = Render(MergeShards(shards));
  // One TYPE line for the base name, both labelled series present.
  std::size_t first = text.find("# TYPE drops_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE drops_total counter", first + 1), std::string::npos);
  EXPECT_NE(text.find("drops_total{kind=\"dns\"} 1"), std::string::npos);
  EXPECT_NE(text.find("drops_total{kind=\"wifi_scan\"} 2"), std::string::npos);
}

TEST(MetricsRenderTest, FormatMetricValueIsFixed) {
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(-3.0), "-3");
  EXPECT_EQ(FormatMetricValue(0.5), "0.5");
}

}  // namespace
}  // namespace bismark::obs
