// Flight recorder: bounded ring semantics, wraparound, and the merged
// chronological dump the deployment uses for post-mortems.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/trace.h"

namespace bismark::obs {
namespace {

TimePoint At(std::int64_t ms) { return TimePoint{ms}; }

TEST(FlightRecorderTest, KeepsEventsInOrderBeforeWrap) {
  FlightRecorder rec(8);
  for (int i = 0; i < 5; ++i) {
    rec.record(TraceKind::kEngineEvent, At(i * 100), -1, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.recorded(), 5u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].sim_ms, i * 100);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].a, static_cast<std::uint64_t>(i));
  }
}

TEST(FlightRecorderTest, WraparoundKeepsOnlyTheNewest) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(TraceKind::kFlushAttempt, At(i), 7, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);  // total ever, not just retained
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // The last four events (6, 7, 8, 9), oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].a, static_cast<std::uint64_t>(6 + i));
  }
}

TEST(FlightRecorderTest, ClearEmptiesTheRingButKeepsCapacity) {
  FlightRecorder rec(4);
  rec.record(TraceKind::kSpoolDrop, At(1), 1, 1);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(SimSpanTest, RecordsOneSpanningEventOnce) {
  FlightRecorder rec(4);
  SimSpan span(&rec, TraceKind::kBackoffSpan, At(100), 3);
  span.end(At(500), 2, 9);
  span.end(At(900));  // closing twice is a no-op
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].sim_ms, 100);
  EXPECT_EQ(events[0].end_ms, 500);
  EXPECT_EQ(events[0].kind, TraceKind::kBackoffSpan);
  EXPECT_EQ(events[0].subject, 3);
  EXPECT_EQ(events[0].a, 2u);
  EXPECT_EQ(events[0].b, 9u);
}

TEST(SimSpanTest, NullRecorderIsSafe) {
  SimSpan span(nullptr, TraceKind::kPhase, At(0), -1);
  span.end(At(10));  // must not crash
}

TEST(FlightRecorderDumpTest, MergedDumpInterleavesBySimTime) {
  FlightRecorder a(8), b(8);
  a.record(TraceKind::kBatchDelivered, At(300), 1, 10, 0);
  a.record(TraceKind::kBatchDelivered, At(100), 1, 11, 1);
  b.record(TraceKind::kRetryArmed, At(200), 2, 1, 60000);

  std::ostringstream out;
  const std::vector<const FlightRecorder*> recs = {&a, &b, nullptr};
  DumpMergedFlightRecorders(recs, out);
  const std::string text = out.str();

  const std::size_t p100 = text.find("batch_delivered");
  const std::size_t p200 = text.find("retry_armed");
  ASSERT_NE(p100, std::string::npos);
  ASSERT_NE(p200, std::string::npos);
  // t=100 (from a) precedes t=200 (from b) precedes t=300 (from a again).
  EXPECT_LT(p100, p200);
  EXPECT_NE(text.find("batch_delivered", p200), std::string::npos);
}

TEST(FlightRecorderDumpTest, SingleDumpNamesEveryKind) {
  FlightRecorder rec(16);
  rec.record(TraceKind::kEngineEvent, At(0), -1);
  rec.record(TraceKind::kFlushAttempt, At(1), 0);
  rec.record(TraceKind::kSpoolDrop, At(2), 0, 3);
  std::ostringstream out;
  DumpFlightRecorder(rec, out);
  const std::string text = out.str();
  EXPECT_NE(text.find(TraceKindName(TraceKind::kEngineEvent)), std::string::npos);
  EXPECT_NE(text.find(TraceKindName(TraceKind::kFlushAttempt)), std::string::npos);
  EXPECT_NE(text.find(TraceKindName(TraceKind::kSpoolDrop)), std::string::npos);
}

}  // namespace
}  // namespace bismark::obs
