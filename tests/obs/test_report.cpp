// The run report and its JSON writer: escaping, the two-strata layout, and
// the conservation identity helper.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"

namespace bismark::obs {
namespace {

std::string Render(const RunReport& report) {
  std::ostringstream out;
  report.write_json(out);
  return out.str();
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::Escape("tab\tnewline\n"), "tab\\tnewline\\n");
  EXPECT_EQ(JsonWriter::Escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

TEST(JsonWriterTest, NestedContainersGetCommasRight) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.kv("a", 1);
  w.key("list");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.kv("b", true);
  w.end_object();
  const std::string text = out.str();
  // Commas between items, none before closers.
  EXPECT_NE(text.find("\"a\": 1,"), std::string::npos);
  EXPECT_NE(text.find("1,"), std::string::npos);
  EXPECT_EQ(text.find(",\n  ]"), std::string::npos);
  EXPECT_EQ(text.find(",\n}"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');  // exactly one trailing newline at root close
}

TEST(ConservationTest, HoldsExactlyWhenBalanced) {
  Conservation c{100, 80, 15, 5};
  EXPECT_TRUE(c.holds());
  c.delivered = 81;
  EXPECT_FALSE(c.holds());
}

TEST(ConservationTest, FromMetricsReadsTheUploadCounters) {
  MetricsSnapshot m;
  m.counters["bismark_upload_records_spooled_total"] = 10;
  m.counters["bismark_upload_records_delivered_total"] = 7;
  m.counters["bismark_upload_records_dropped_total"] = 2;
  m.counters["bismark_upload_records_stranded_total"] = 1;
  const Conservation c = ConservationFromMetrics(m);
  EXPECT_EQ(c.spooled, 10u);
  EXPECT_EQ(c.delivered, 7u);
  EXPECT_EQ(c.dropped, 2u);
  EXPECT_EQ(c.stranded, 1u);
  EXPECT_TRUE(c.holds());
}

RunReport SampleReport() {
  RunReport report;
  report.tool = "unit_test";
  report.seed = 42;
  report.fault_seed = 43;
  report.roster_scale = 0.5;
  report.homes = 63;
  report.shards = 16;
  report.traffic = false;
  report.metrics.counters["bismark_events_total"] = 9;
  report.conservation = Conservation{4, 4, 0, 0};
  report.wall_total_s = 1.5;
  report.phases = {{"sharded_run", 1.25}};
  report.workers = 4;
  report.pool = {WorkerUtilization{0, 8, 1.0}};
  report.engine_events_per_s = 1234.5;
  return report;
}

TEST(RunReportTest, CarriesSchemaStudyAndMetrics) {
  const std::string text = Render(SampleReport());
  EXPECT_NE(text.find("\"schema\": \"bismark-run-report/v1\""), std::string::npos);
  EXPECT_NE(text.find("\"tool\": \"unit_test\""), std::string::npos);
  EXPECT_NE(text.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"fault_seed\": 43"), std::string::npos);
  EXPECT_NE(text.find("\"bismark_events_total\": 9"), std::string::npos);
  EXPECT_NE(text.find("\"holds\": true"), std::string::npos);
}

TEST(RunReportTest, VolatileSectionPresentByDefault) {
  const std::string text = Render(SampleReport());
  EXPECT_NE(text.find("\"wall\""), std::string::npos);
  EXPECT_NE(text.find("\"workers\": 4"), std::string::npos);
  EXPECT_NE(text.find("\"engine_events_per_s\""), std::string::npos);
}

TEST(RunReportTest, DeterministicModeOmitsEveryVolatileField) {
  RunReport report = SampleReport();
  report.include_volatile = false;
  const std::string text = Render(report);
  EXPECT_EQ(text.find("\"wall\""), std::string::npos);
  EXPECT_EQ(text.find("workers"), std::string::npos);
  EXPECT_EQ(text.find("busy_s"), std::string::npos);
  EXPECT_EQ(text.find("engine_events_per_s"), std::string::npos);
  // The deterministic strata survive untouched.
  EXPECT_NE(text.find("\"conservation\""), std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
}

TEST(RunReportTest, HistogramBucketsRenderAsUpperCountPairs) {
  RunReport report;
  report.tool = "t";
  HistoData h;
  h.spec = HistoSpec{0.0, 2.0, 2};
  h.bins = {3, 1, 2};
  h.count = 6;
  h.sum = 5.5;
  report.metrics.histograms["bismark_delay"] = h;
  const std::string text = Render(report);
  EXPECT_NE(text.find("\"bismark_delay\""), std::string::npos);
  EXPECT_NE(text.find("\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("\"sum\": 5.5"), std::string::npos);
  EXPECT_NE(text.find("\"count\": 6"), std::string::npos);
}

}  // namespace
}  // namespace bismark::obs
