#include <gtest/gtest.h>

#include "core/stats.h"
#include "traffic/apps.h"

namespace bismark::traffic {
namespace {

class AppModelTest : public ::testing::Test {
 protected:
  DomainCatalog catalog_ = DomainCatalog::BuildStandard();
};

TEST_F(AppModelTest, VideoMovesManyBytesOverFewConnections) {
  Rng rng(1);
  RunningStats video_bytes, video_flows, web_bytes, web_flows;
  for (int i = 0; i < 300; ++i) {
    const auto video = AppModel::PlanSession(AppType::kVideoStreaming, catalog_, rng);
    const auto web = AppModel::PlanSession(AppType::kWebBrowsing, catalog_, rng);
    video_bytes.add(video.total_down().mb());
    video_flows.add(static_cast<double>(video.flows.size()));
    web_bytes.add(web.total_down().mb());
    web_flows.add(static_cast<double>(web.flows.size()));
  }
  // The Fig. 19 invariant: video = few long fat flows; web = many small.
  EXPECT_LT(video_flows.mean(), 3.0);
  EXPECT_GT(web_flows.mean(), 5.0);
  EXPECT_GT(video_bytes.mean(), web_bytes.mean() * 50.0);
}

TEST_F(AppModelTest, CloudSyncIsUploadDominated) {
  Rng rng(2);
  RunningStats up, down;
  for (int i = 0; i < 300; ++i) {
    const auto plan = AppModel::PlanSession(AppType::kCloudSync, catalog_, rng);
    up.add(plan.total_up().mb());
    down.add(plan.total_down().mb());
  }
  EXPECT_GT(up.mean(), down.mean() * 5.0);
}

TEST_F(AppModelTest, VoipIsSymmetricUdp) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto plan = AppModel::PlanSession(AppType::kVoip, catalog_, rng);
    ASSERT_EQ(plan.flows.size(), 1u);
    EXPECT_EQ(plan.flows[0].protocol, net::Protocol::kUdp);
    EXPECT_EQ(plan.flows[0].bytes_up, plan.flows[0].bytes_down);
  }
}

TEST_F(AppModelTest, GamingUsesUdpGamePort) {
  Rng rng(4);
  const auto plan = AppModel::PlanSession(AppType::kOnlineGaming, catalog_, rng);
  ASSERT_GE(plan.flows.size(), 1u);
  EXPECT_EQ(plan.flows[0].protocol, net::Protocol::kUdp);
  EXPECT_EQ(plan.flows[0].dst_port, 3074);
}

TEST_F(AppModelTest, BulkUploadDemandIsUploadOnly) {
  Rng rng(5);
  const auto plan = AppModel::PlanSession(AppType::kBulkUpload, catalog_, rng);
  ASSERT_EQ(plan.flows.size(), 1u);
  EXPECT_GT(plan.flows[0].demand_up.mbps(), 1.0);
  EXPECT_GT(plan.flows[0].bytes_up.mb(), 100.0);
  EXPECT_LT(plan.flows[0].bytes_down.count, plan.flows[0].bytes_up.count / 10);
}

TEST_F(AppModelTest, DomainsMatchAppCategory) {
  Rng rng(6);
  int streaming_domains = 0;
  for (int i = 0; i < 200; ++i) {
    const auto plan = AppModel::PlanSession(AppType::kVideoStreaming, catalog_, rng);
    const auto cat = catalog_.domain(plan.domain_index).category;
    if (cat == DomainCategory::kVideoStreaming || cat == DomainCategory::kCdn) {
      ++streaming_domains;
    }
  }
  EXPECT_GT(streaming_domains, 190);
}

TEST_F(AppModelTest, TailProbabilityRoughlyObserved) {
  Rng rng(7);
  int tail = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto plan = AppModel::PlanSession(AppType::kWebBrowsing, catalog_, rng);
    if (!catalog_.domain(plan.domain_index).whitelisted) ++tail;
  }
  EXPECT_NEAR(static_cast<double>(tail) / n, AppModel::TailProbability(AppType::kWebBrowsing),
              0.05);
}

TEST_F(AppModelTest, FlowOffsetsAreStaggeredForWeb) {
  Rng rng(8);
  const auto plan = AppModel::PlanSession(AppType::kWebBrowsing, catalog_, rng);
  ASSERT_GE(plan.flows.size(), 4u);
  // First flow at offset zero, later flows strictly ordered.
  EXPECT_EQ(plan.flows.front().start_offset.ms, 0);
  for (std::size_t i = 1; i < plan.flows.size(); ++i) {
    EXPECT_GE(plan.flows[i].start_offset.ms, plan.flows[i - 1].start_offset.ms);
  }
}

TEST_F(AppModelTest, ApproxMeanVolumeOrdersAppsSensibly) {
  EXPECT_GT(AppModel::ApproxMeanVolume(AppType::kVideoStreaming).count,
            AppModel::ApproxMeanVolume(AppType::kWebBrowsing).count);
  EXPECT_GT(AppModel::ApproxMeanVolume(AppType::kWebBrowsing).count,
            AppModel::ApproxMeanVolume(AppType::kIotTelemetry).count);
}

TEST_F(AppModelTest, AllAppTypesProduceValidPlans) {
  Rng rng(9);
  for (int t = 0; t < kAppTypeCount; ++t) {
    const auto plan = AppModel::PlanSession(static_cast<AppType>(t), catalog_, rng);
    EXPECT_FALSE(plan.flows.empty()) << AppTypeName(static_cast<AppType>(t));
    EXPECT_LT(plan.domain_index, catalog_.domains().size());
    for (const auto& f : plan.flows) {
      EXPECT_GE(f.bytes_down.count, 0);
      EXPECT_GE(f.bytes_up.count, 0);
      EXPECT_GT(f.bytes_down.count + f.bytes_up.count, 0);
      EXPECT_GT(f.dst_port, 0);
    }
  }
}

TEST_F(AppModelTest, AppTypeNames) {
  EXPECT_EQ(AppTypeName(AppType::kVideoStreaming), "video-streaming");
  EXPECT_EQ(AppTypeName(AppType::kBulkUpload), "bulk-upload");
}

}  // namespace
}  // namespace bismark::traffic
