// Property sweep: session-plan invariants for every application type.
#include <gtest/gtest.h>

#include "core/stats.h"
#include "traffic/apps.h"

namespace bismark::traffic {
namespace {

class AppPlanPropertyTest : public ::testing::TestWithParam<AppType> {
 protected:
  static const DomainCatalog& catalog() {
    static const DomainCatalog c = DomainCatalog::BuildStandard();
    return c;
  }
};

TEST_P(AppPlanPropertyTest, PlansAreWellFormedAcrossSeeds) {
  const AppType app = GetParam();
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    const SessionPlan plan = AppModel::PlanSession(app, catalog(), rng);
    ASSERT_EQ(plan.app, app);
    ASSERT_FALSE(plan.flows.empty());
    ASSERT_LT(plan.domain_index, catalog().domains().size());
    for (const auto& f : plan.flows) {
      // Every flow moves data somewhere and has sane parameters.
      ASSERT_GE(f.bytes_down.count, 0);
      ASSERT_GE(f.bytes_up.count, 0);
      ASSERT_GT(f.bytes_down.count + f.bytes_up.count, 0);
      ASSERT_GT(f.dst_port, 0u);
      ASSERT_GE(f.start_offset.ms, 0);
      ASSERT_GE(f.demand_down.bps, 0.0);
      ASSERT_GE(f.demand_up.bps, 0.0);
      // The dominant direction always has a usable demand rate.
      if (f.bytes_down >= f.bytes_up) {
        ASSERT_GT(f.demand_down.bps, 0.0);
      } else {
        ASSERT_GT(f.demand_up.bps, 0.0);
      }
    }
  }
}

TEST_P(AppPlanPropertyTest, MeanVolumeWithinOrderOfMagnitudeOfCalibration) {
  const AppType app = GetParam();
  Rng rng(99);
  RunningStats volume;
  for (int i = 0; i < 400; ++i) {
    const SessionPlan plan = AppModel::PlanSession(app, catalog(), rng);
    volume.add(static_cast<double>(plan.total_down().count + plan.total_up().count));
  }
  const double approx = static_cast<double>(AppModel::ApproxMeanVolume(app).count);
  EXPECT_GT(volume.mean(), approx / 10.0) << AppTypeName(app);
  EXPECT_LT(volume.mean(), approx * 10.0) << AppTypeName(app);
}

TEST_P(AppPlanPropertyTest, TailProbabilityIsAProbability) {
  const double p = AppModel::TailProbability(GetParam());
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST_P(AppPlanPropertyTest, TransferTimesAreBounded) {
  // No session plan should imply a multi-week transfer at its own demand
  // rate — that would wedge the generator's flow queue.
  const AppType app = GetParam();
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const SessionPlan plan = AppModel::PlanSession(app, catalog(), rng);
    for (const auto& f : plan.flows) {
      const double down_s =
          f.demand_down.bps > 0 ? f.bytes_down.bits() / f.demand_down.bps : 0.0;
      const double up_s = f.demand_up.bps > 0 ? f.bytes_up.bits() / f.demand_up.bps : 0.0;
      EXPECT_LT(std::max(down_s, up_s), 48.0 * 3600.0) << AppTypeName(app);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAppTypes, AppPlanPropertyTest,
    ::testing::Values(AppType::kWebBrowsing, AppType::kVideoStreaming,
                      AppType::kAudioStreaming, AppType::kSocialMedia, AppType::kCloudSync,
                      AppType::kEmail, AppType::kSoftwareUpdate, AppType::kOnlineGaming,
                      AppType::kVoip, AppType::kBulkUpload, AppType::kIotTelemetry),
    [](const ::testing::TestParamInfo<AppType>& info) {
      std::string name(AppTypeName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace bismark::traffic
