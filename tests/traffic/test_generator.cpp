#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/engine.h"
#include "traffic/generator.h"

namespace bismark::traffic {
namespace {

/// Records everything; grants all demands.
class RecordingSink : public TrafficSink {
 public:
  void on_dns(const net::DnsResponse& response, net::MacAddress, TimePoint) override {
    ++dns_count;
    last_query = response.query;
  }
  void on_flow_open(const FlowOpen& open) override {
    opens.push_back(open);
  }
  void on_chunk(const FlowChunk& chunk) override {
    chunks.push_back(chunk);
    chunk_bytes_down[chunk.id.value] += chunk.bytes_down.count;
    chunk_bytes_up[chunk.id.value] += chunk.bytes_up.count;
  }
  void on_flow_close(const net::FlowRecord& record) override { closes.push_back(record); }
  double admit_rate(net::Direction, double demand_bps) override { return demand_bps; }
  void add_rate(net::Direction dir, double bps, TimePoint) override {
    (dir == net::Direction::kUpstream ? rate_up : rate_down) += bps;
    max_rate_down = std::max(max_rate_down, rate_down);
  }
  void remove_rate(net::Direction dir, double bps, TimePoint) override {
    (dir == net::Direction::kUpstream ? rate_up : rate_down) -= bps;
  }

  int dns_count{0};
  std::string last_query;
  std::vector<FlowOpen> opens;
  std::vector<FlowChunk> chunks;
  std::vector<net::FlowRecord> closes;
  std::map<std::uint64_t, std::int64_t> chunk_bytes_down;
  std::map<std::uint64_t, std::int64_t> chunk_bytes_up;
  double rate_up{0.0};
  double rate_down{0.0};
  double max_rate_down{0.0};
};

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest()
      : catalog_(DomainCatalog::BuildStandard()),
        engine_(t0_),
        resolver_(zones_) {
    catalog_.install_zones(zones_);
  }

  DeviceWorkload MakeWorkload(std::uint32_t nic, DeviceType type) {
    DeviceWorkload w;
    w.mac = net::MacAddress::FromParts(0x001EC2, nic);
    w.ip = net::Ipv4Address(192, 168, 1, static_cast<std::uint8_t>(nic + 9));
    w.type = type;
    w.sessions_per_hour_peak = TraitsOf(type).sessions_per_hour;
    w.app_mix = AppMixOf(type);
    return w;
  }

  TimePoint t0_ = MakeTime({2013, 4, 1});
  DomainCatalog catalog_;
  net::ZoneCatalog zones_;
  sim::Engine engine_;
  net::DnsResolver resolver_;
  RecordingSink sink_;
};

TEST_F(GeneratorTest, GeneratesSessionsAndFlows) {
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(-5)}, Rng(1));
  gen.add_device(MakeWorkload(1, DeviceType::kLaptop));
  gen.add_device(MakeWorkload(2, DeviceType::kSmartPhone));
  gen.start(t0_, t0_ + Days(2));
  engine_.run_until(t0_ + Days(2) + Hours(4));

  EXPECT_GT(gen.stats().sessions, 5u);
  EXPECT_GT(gen.stats().flows, 10u);
  EXPECT_EQ(gen.stats().flows, sink_.opens.size());
  EXPECT_GT(sink_.dns_count, 0);
}

TEST_F(GeneratorTest, EveryOpenedFlowEventuallyCloses) {
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(2));
  gen.add_device(MakeWorkload(1, DeviceType::kLaptop));
  gen.start(t0_, t0_ + Days(1));
  engine_.run_until(t0_ + Days(3));  // generous drain time
  EXPECT_EQ(sink_.opens.size(), sink_.closes.size());
}

TEST_F(GeneratorTest, ChunkBytesMatchFlowRecordTotals) {
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(3));
  gen.add_device(MakeWorkload(1, DeviceType::kLaptop));
  gen.start(t0_, t0_ + Days(1));
  engine_.run_until(t0_ + Days(3));
  for (const auto& record : sink_.closes) {
    EXPECT_EQ(record.bytes_down.count, sink_.chunk_bytes_down[record.id.value]);
    EXPECT_EQ(record.bytes_up.count, sink_.chunk_bytes_up[record.id.value]);
    EXPECT_GE(record.last_packet, record.first_packet);
  }
}

TEST_F(GeneratorTest, RateAddRemoveBalances) {
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(4));
  gen.add_device(MakeWorkload(1, DeviceType::kLaptop));
  gen.start(t0_, t0_ + Days(1));
  engine_.run_until(t0_ + Days(3));
  EXPECT_NEAR(sink_.rate_up, 0.0, 1e-6);
  EXPECT_NEAR(sink_.rate_down, 0.0, 1e-6);
  EXPECT_GT(sink_.max_rate_down, 0.0);
}

TEST_F(GeneratorTest, InactiveDeviceGeneratesNothing) {
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(5));
  DeviceWorkload w = MakeWorkload(1, DeviceType::kLaptop);
  w.is_active = [](TimePoint) { return false; };
  gen.add_device(std::move(w));
  gen.start(t0_, t0_ + Days(2));
  engine_.run_until(t0_ + Days(2));
  EXPECT_EQ(gen.stats().sessions, 0u);
  EXPECT_GT(gen.stats().suppressed_inactive, 0u);
  EXPECT_TRUE(sink_.opens.empty());
}

TEST_F(GeneratorTest, FlowsEndWhenDeviceGoesOffline) {
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(6));
  // Active only for the first 6 hours.
  const TimePoint cutoff = t0_ + Hours(6);
  DeviceWorkload w = MakeWorkload(1, DeviceType::kMediaStreamer);
  w.sessions_per_hour_peak = 2.0;
  w.is_active = [cutoff](TimePoint t) { return t < cutoff; };
  gen.add_device(std::move(w));
  gen.start(t0_, t0_ + Days(1));
  engine_.run_until(t0_ + Days(2));
  EXPECT_EQ(sink_.opens.size(), sink_.closes.size());
  for (const auto& record : sink_.closes) {
    // Transfers stop shortly after the cutoff (one burst's grace).
    EXPECT_LE(record.last_packet, cutoff + Minutes(2));
  }
}

TEST_F(GeneratorTest, DnsCacheSuppressesRepeatQueries) {
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(7));
  DeviceWorkload w = MakeWorkload(1, DeviceType::kMediaStreamer);  // sticky favourites
  w.sessions_per_hour_peak = 4.0;
  gen.add_device(std::move(w));
  gen.start(t0_, t0_ + Days(2));
  engine_.run_until(t0_ + Days(3));
  ASSERT_GT(gen.stats().dns_queries, 10u);
  // The sink only hears cache *misses*; with sticky favourites the hit
  // rate must be substantial.
  EXPECT_LT(sink_.dns_count, static_cast<int>(gen.stats().dns_queries));
}

TEST_F(GeneratorTest, DiurnalThinningFollowsActivityCurve) {
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(8));
  DeviceWorkload w = MakeWorkload(1, DeviceType::kSmartPhone);
  w.sessions_per_hour_peak = 6.0;
  gen.add_device(std::move(w));
  gen.start(t0_, t0_ + Days(14));
  engine_.run_until(t0_ + Days(15));

  // Count flow opens by hour of day: evenings must beat pre-dawn.
  int evening = 0, predawn = 0;
  for (const auto& open : sink_.opens) {
    const int h = TimeZone{Hours(0)}.local_hour(open.opened);
    if (h >= 19 && h <= 22) ++evening;
    if (h >= 2 && h <= 5) ++predawn;
  }
  EXPECT_GT(evening, predawn * 2);
}

TEST_F(GeneratorTest, EphemeralPortsAdvancePerFlow) {
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(9));
  gen.add_device(MakeWorkload(1, DeviceType::kLaptop));
  gen.start(t0_, t0_ + Days(1));
  engine_.run_until(t0_ + Days(2));
  ASSERT_GT(sink_.opens.size(), 3u);
  std::map<std::uint16_t, int> port_seen;
  for (const auto& open : sink_.opens) ++port_seen[open.lan_tuple.src_port];
  // Ports recycle only after 44k flows; here every flow has its own.
  for (const auto& [port, count] : port_seen) EXPECT_EQ(count, 1);
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  RecordingSink sink2;
  sim::Engine engine2(t0_);
  net::DnsResolver resolver2(zones_);

  HomeTrafficGenerator gen1(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(10));
  gen1.add_device(MakeWorkload(1, DeviceType::kLaptop));
  gen1.start(t0_, t0_ + Days(1));
  engine_.run_until(t0_ + Days(2));

  HomeTrafficGenerator gen2(engine2, catalog_, resolver2, sink2, TimeZone{Hours(0)}, Rng(10));
  gen2.add_device(MakeWorkload(1, DeviceType::kLaptop));
  gen2.start(t0_, t0_ + Days(1));
  engine2.run_until(t0_ + Days(2));

  ASSERT_EQ(sink_.opens.size(), sink2.opens.size());
  for (std::size_t i = 0; i < sink_.opens.size(); ++i) {
    EXPECT_EQ(sink_.opens[i].domain, sink2.opens[i].domain);
    EXPECT_EQ(sink_.opens[i].opened, sink2.opens[i].opened);
  }
}

TEST_F(GeneratorTest, ActivityCurveShape) {
  const ActivityCurve curve = ActivityCurve::Residential();
  // Weekday: evening peak, afternoon dip, night trough.
  EXPECT_GT(curve.weight(Weekday::kTuesday, 20), curve.weight(Weekday::kTuesday, 14));
  EXPECT_GT(curve.weight(Weekday::kTuesday, 14), curve.weight(Weekday::kTuesday, 4));
  // Weekend daytime is busier than weekday daytime.
  EXPECT_GT(curve.weight(Weekday::kSaturday, 14), curve.weight(Weekday::kTuesday, 14));
  EXPECT_DOUBLE_EQ(curve.max_weight(), 1.0);
}


TEST_F(GeneratorTest, StreamerSticksToFavoriteDomains) {
  // The Fig. 20 stickiness: a media streamer subscribes to one or two
  // services rather than sampling the whole video catalog every night.
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(11));
  DeviceWorkload w = MakeWorkload(1, DeviceType::kMediaStreamer);
  w.sessions_per_hour_peak = 1.5;
  gen.add_device(std::move(w));
  gen.start(t0_, t0_ + Days(14));
  engine_.run_until(t0_ + Days(15));

  // Fig. 20 measures *traffic volume*: by bytes, the streamer's favourite
  // service dominates even though small web flows spread the flow counts.
  std::map<std::string, double> bytes_by_domain;
  double total_bytes = 0.0;
  for (const auto& record : sink_.closes) {
    const double b = static_cast<double>(record.total_bytes().count);
    bytes_by_domain[record.domain] += b;
    total_bytes += b;
  }
  ASSERT_GT(sink_.closes.size(), 10u);
  ASSERT_GT(total_bytes, 0.0);
  std::vector<double> shares;
  for (const auto& [domain, b] : bytes_by_domain) shares.push_back(b / total_bytes);
  std::sort(shares.rbegin(), shares.rend());
  EXPECT_GT(shares[0], 0.4);
  EXPECT_GT(shares[0] + (shares.size() > 1 ? shares[1] : 0.0), 0.55);
}

TEST_F(GeneratorTest, BurstDutyCycleStretchesLongTransfers) {
  // A long flow transfers in on/off bursts, so its wall-clock duration
  // clearly exceeds bytes / granted-rate.
  HomeTrafficGenerator gen(engine_, catalog_, resolver_, sink_, TimeZone{Hours(0)}, Rng(12));
  gen.set_burst_params(Seconds(8), 0.5);
  DeviceWorkload w = MakeWorkload(1, DeviceType::kMediaStreamer);
  w.sessions_per_hour_peak = 0.6;
  gen.add_device(std::move(w));
  gen.start(t0_, t0_ + Days(3));
  engine_.run_until(t0_ + Days(5));

  int checked = 0;
  for (const auto& record : sink_.closes) {
    if (record.bytes_down.mb() < 50.0) continue;  // only long streams
    const double duration_s = record.duration().seconds();
    // At 50% duty the transfer takes ~2x the pure-rate time; require >1.5x
    // of a generous upper-bound rate estimate to confirm off periods exist.
    const double lower_bound_s = record.bytes_down.bits() / 10e6;  // if sent at 10 Mbps flat
    EXPECT_GT(duration_s, lower_bound_s);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace bismark::traffic
