#include <gtest/gtest.h>

#include "traffic/domains.h"

namespace bismark::traffic {
namespace {

TEST(DomainCatalogTest, StandardCatalogShape) {
  const auto catalog = DomainCatalog::BuildStandard();
  // Alexa-style whitelist of exactly 200 domains plus an unlisted tail.
  EXPECT_EQ(catalog.whitelist_size(), 200u);
  EXPECT_GT(catalog.domains().size(), 400u);
}

TEST(DomainCatalogTest, DeterministicForSeed) {
  const auto a = DomainCatalog::BuildStandard(100, 9);
  const auto b = DomainCatalog::BuildStandard(100, 9);
  ASSERT_EQ(a.domains().size(), b.domains().size());
  for (std::size_t i = 0; i < a.domains().size(); ++i) {
    EXPECT_EQ(a.domain(i).name, b.domain(i).name);
    EXPECT_EQ(a.domain(i).category, b.domain(i).category);
  }
}

TEST(DomainCatalogTest, PaperHeadlinersPresentAndWhitelisted) {
  const auto catalog = DomainCatalog::BuildStandard();
  // Fig. 18's consistently-popular domains.
  for (const char* name : {"google.com", "youtube.com", "facebook.com", "amazon.com",
                           "apple.com", "twitter.com", "netflix.com", "hulu.com",
                           "pandora.com", "dropbox.com"}) {
    EXPECT_TRUE(catalog.is_whitelisted(name)) << name;
  }
  EXPECT_FALSE(catalog.is_whitelisted("tail-site-0001.net"));
  EXPECT_FALSE(catalog.is_whitelisted("no-such-site.org"));
}

TEST(DomainCatalogTest, PopularityDecreasesWithRank) {
  const auto catalog = DomainCatalog::BuildStandard();
  for (std::size_t i = 1; i < catalog.whitelist_size(); ++i) {
    EXPECT_GE(catalog.domain(i - 1).popularity, catalog.domain(i).popularity);
  }
}

TEST(DomainCatalogTest, CategoriesNonEmpty) {
  const auto catalog = DomainCatalog::BuildStandard();
  for (auto cat : {DomainCategory::kSearch, DomainCategory::kVideoStreaming,
                   DomainCategory::kSocial, DomainCategory::kCloudSync,
                   DomainCategory::kEmail, DomainCategory::kGaming, DomainCategory::kVoip,
                   DomainCategory::kTail}) {
    EXPECT_FALSE(catalog.in_category(cat).empty())
        << DomainCategoryName(cat);
  }
}

TEST(DomainCatalogTest, SampleInCategoryReturnsThatCategory) {
  const auto catalog = DomainCatalog::BuildStandard();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::size_t idx = catalog.sample_in_category(DomainCategory::kVideoStreaming, rng);
    EXPECT_EQ(catalog.domain(idx).category, DomainCategory::kVideoStreaming);
  }
}

TEST(DomainCatalogTest, SampleFavorsPopularDomains) {
  const auto catalog = DomainCatalog::BuildStandard();
  Rng rng(6);
  int youtube = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t idx = catalog.sample_in_category(DomainCategory::kVideoStreaming, rng);
    ++total;
    if (catalog.domain(idx).name == "youtube.com") ++youtube;
  }
  // youtube is rank 2 overall; it must dominate its category.
  EXPECT_GT(static_cast<double>(youtube) / total, 0.2);
}

TEST(DomainCatalogTest, InstallZonesMakesEverythingResolvable) {
  const auto catalog = DomainCatalog::BuildStandard(50);
  net::ZoneCatalog zones;
  catalog.install_zones(zones);
  for (const auto& d : catalog.domains()) {
    const auto response = zones.resolve(d.name);
    EXPECT_FALSE(response.nxdomain) << d.name;
    EXPECT_TRUE(response.address().has_value()) << d.name;
  }
}

TEST(DomainCatalogTest, VideoDomainsAreCdnFronted) {
  const auto catalog = DomainCatalog::BuildStandard(50);
  net::ZoneCatalog zones;
  catalog.install_zones(zones);
  const auto response = zones.resolve("netflix.com");
  ASSERT_FALSE(response.nxdomain);
  // CNAME chain through an edge name, then A records.
  EXPECT_EQ(response.records.front().type, net::DnsRecordType::kCname);
  EXPECT_EQ(response.canonical_name(), "edge-netflix.com");
}

TEST(DomainCatalogTest, CategoryNames) {
  EXPECT_EQ(DomainCategoryName(DomainCategory::kVideoStreaming), "video");
  EXPECT_EQ(DomainCategoryName(DomainCategory::kTail), "tail");
}

}  // namespace
}  // namespace bismark::traffic
