#include <gtest/gtest.h>

#include "core/stats.h"
#include "traffic/device_types.h"

namespace bismark::traffic {
namespace {

TEST(DeviceTypesTest, TraitsAreSane) {
  for (int t = 0; t < kDeviceTypeCount; ++t) {
    const auto& traits = TraitsOf(static_cast<DeviceType>(t));
    EXPECT_GE(traits.wired_prob, 0.0);
    EXPECT_LE(traits.wired_prob, 1.0);
    EXPECT_GE(traits.always_on_prob, 0.0);
    EXPECT_LE(traits.always_on_prob, 1.0);
    EXPECT_GT(traits.hunger, 0.0);
    EXPECT_GT(traits.sessions_per_hour, 0.0);
  }
}

TEST(DeviceTypesTest, PhonesAreWirelessAnd24GHzOnly) {
  // Section 5.3: "Phones are equipped almost exclusively with only
  // 2.4 GHz radios."
  const auto& traits = TraitsOf(DeviceType::kSmartPhone);
  EXPECT_DOUBLE_EQ(traits.wired_prob, 0.0);
  EXPECT_LT(traits.dual_band_prob, 0.1);
}

TEST(DeviceTypesTest, MediaStreamerIsTheHungriest) {
  double max_hunger = 0.0;
  DeviceType hungriest = DeviceType::kLaptop;
  for (int t = 0; t < kDeviceTypeCount; ++t) {
    if (TraitsOf(static_cast<DeviceType>(t)).hunger > max_hunger) {
      max_hunger = TraitsOf(static_cast<DeviceType>(t)).hunger;
      hungriest = static_cast<DeviceType>(t);
    }
  }
  EXPECT_EQ(hungriest, DeviceType::kMediaStreamer);
}

TEST(DeviceTypesTest, AppMixMatchesDeviceRole) {
  const auto streamer = AppMixOf(DeviceType::kMediaStreamer);
  const auto phone = AppMixOf(DeviceType::kSmartPhone);
  const auto voip = AppMixOf(DeviceType::kVoipPhone);
  // Streamers are nearly all video (the Fig. 20b Roku shape).
  EXPECT_GT(streamer[static_cast<int>(AppType::kVideoStreaming)], 80.0);
  // Phones skew social.
  EXPECT_GT(phone[static_cast<int>(AppType::kSocialMedia)],
            phone[static_cast<int>(AppType::kVideoStreaming)]);
  // VoIP phones do VoIP.
  EXPECT_GT(voip[static_cast<int>(AppType::kVoip)], 90.0);
}

TEST(DeviceTypesTest, DrawVendorClassMatchesMarket) {
  Rng rng(11);
  int apple = 0, samsungish = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto vc = DrawVendorClass(DeviceType::kSmartPhone, rng);
    if (vc == net::VendorClass::kApple) ++apple;
    if (vc == net::VendorClass::kSamsung) ++samsungish;
  }
  EXPECT_NEAR(static_cast<double>(apple) / n, 0.45, 0.05);
  EXPECT_NEAR(static_cast<double>(samsungish) / n, 0.25, 0.05);
}

TEST(DeviceTypesTest, MintMacUsesRealOuiOfClass) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const auto vc = DrawVendorClass(DeviceType::kLaptop, rng);
    const auto mac = MintMac(vc, rng);
    EXPECT_EQ(net::OuiRegistry::Instance().classify(mac), vc);
    EXPECT_NE(mac.nic(), 0u);
  }
}

TEST(DeviceTypesTest, DrawDeviceTypeRegionalMix) {
  Rng rng(17);
  int dev_entertainment = 0, dvg_entertainment = 0;
  const int n = 10000;
  auto is_entertainment = [](DeviceType t) {
    return t == DeviceType::kMediaStreamer || t == DeviceType::kSmartTv ||
           t == DeviceType::kGameConsole || t == DeviceType::kNas;
  };
  for (int i = 0; i < n; ++i) {
    if (is_entertainment(DrawDeviceType(true, rng))) ++dev_entertainment;
    if (is_entertainment(DrawDeviceType(false, rng))) ++dvg_entertainment;
  }
  // Section 5.1: consoles/entertainment devices are a developed-world thing.
  EXPECT_GT(dev_entertainment, dvg_entertainment * 2);
}

TEST(DeviceTypesTest, Names) {
  EXPECT_EQ(DeviceTypeName(DeviceType::kMediaStreamer), "media-streamer");
  EXPECT_EQ(DeviceTypeName(DeviceType::kSmartPhone), "smart-phone");
}

}  // namespace
}  // namespace bismark::traffic
