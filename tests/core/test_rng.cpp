#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "core/stats.h"

namespace bismark {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(5, 4), 5);  // degenerate range clamps to lo
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(Rng(1).bernoulli(0.0));
  EXPECT_TRUE(Rng(1).bernoulli(1.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(30.0));
  EXPECT_NEAR(stats.mean(), 30.0, 1.0);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(29);
  std::vector<double> values;
  for (int i = 0; i < 20001; ++i) values.push_back(rng.lognormal(std::log(5.0), 0.8));
  EXPECT_NEAR(Median(values), 5.0, 0.3);
}

TEST(RngTest, ParetoTailHeavierThanExponential) {
  Rng rng(31);
  double pareto_max = 0.0;
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.pareto(1.0, 1.5);
    EXPECT_GE(v, 1.0);
    pareto_max = std::max(pareto_max, v);
    stats.add(v);
  }
  EXPECT_GT(pareto_max, 50.0);  // heavy tail reaches far
  EXPECT_NEAR(stats.mean(), 3.0, 0.8);  // alpha/(alpha-1) = 3
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, WeightedIndexDegenerateInputs) {
  Rng rng(41);
  EXPECT_EQ(rng.weighted_index({}), 0u);
  const std::vector<double> zeros = {0.0, 0.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.weighted_index(zeros), 3u);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent(99);
  Rng child1 = parent.fork(1);
  Rng child1_again = Rng(99).fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_EQ(child1.next_u64(), child1_again.next_u64());
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, ForkByStringTag) {
  Rng parent(99);
  Rng a = parent.fork("availability");
  Rng b = parent.fork("devices");
  Rng a2 = parent.fork("availability");
  EXPECT_EQ(a.next_u64(), a2.next_u64());
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.fork(123);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(ZipfTest, RankOneIsMostLikely) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(43);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], 15000);  // 1/H(100) ~ 0.19
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(50, 1.2);
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(zipf.pmf(999), 0.0);
}

}  // namespace
}  // namespace bismark
