#include <gtest/gtest.h>

#include "core/args.h"

namespace bismark {
namespace {

ArgParser MakeParser() {
  ArgParser args("test tool");
  args.add_option("seed", "the seed", "42");
  args.add_option("export", "output dir");
  args.add_flag("verbose", "talk more");
  return args;
}

TEST(ArgParserTest, DefaultsApplyWhenAbsent) {
  ArgParser args = MakeParser();
  ASSERT_TRUE(args.parse(std::vector<std::string>{}));
  EXPECT_EQ(args.get_or("seed", "x"), "42");
  EXPECT_EQ(args.get_int("seed", -1), 42);
  EXPECT_FALSE(args.get("export").has_value());
  EXPECT_FALSE(args.has("verbose"));
}

TEST(ArgParserTest, SpaceAndEqualsForms) {
  ArgParser args = MakeParser();
  ASSERT_TRUE(args.parse({"--seed", "7", "--export=/tmp/x"}));
  EXPECT_EQ(args.get_int("seed", -1), 7);
  EXPECT_EQ(args.get_or("export", ""), "/tmp/x");
}

TEST(ArgParserTest, FlagsAndPositionals) {
  ArgParser args = MakeParser();
  ASSERT_TRUE(args.parse({"run", "--verbose", "extra"}));
  EXPECT_TRUE(args.has("verbose"));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(ArgParserTest, UnknownOptionErrors) {
  ArgParser args = MakeParser();
  EXPECT_FALSE(args.parse({"--bogus", "1"}));
  EXPECT_NE(args.error().find("unknown option"), std::string::npos);
}

TEST(ArgParserTest, MissingValueErrors) {
  ArgParser args = MakeParser();
  EXPECT_FALSE(args.parse({"--seed"}));
  EXPECT_NE(args.error().find("requires a value"), std::string::npos);
}

TEST(ArgParserTest, FlagRejectsValue) {
  ArgParser args = MakeParser();
  EXPECT_FALSE(args.parse({"--verbose=yes"}));
}

TEST(ArgParserTest, NumericFallbacks) {
  ArgParser args = MakeParser();
  ASSERT_TRUE(args.parse({"--seed", "not-a-number"}));
  EXPECT_EQ(args.get_int("seed", -1), -1);
  EXPECT_DOUBLE_EQ(args.get_double("seed", 2.5), 2.5);
  ArgParser args2 = MakeParser();
  ASSERT_TRUE(args2.parse({"--seed", "3.5"}));
  EXPECT_DOUBLE_EQ(args2.get_double("seed", 0.0), 3.5);
}

TEST(ArgParserTest, HelpListsEverything) {
  ArgParser args = MakeParser();
  const std::string help = args.help("tool");
  EXPECT_NE(help.find("--seed"), std::string::npos);
  EXPECT_NE(help.find("--export"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("default: 42"), std::string::npos);
}

TEST(ArgParserTest, ReparseResetsState) {
  ArgParser args = MakeParser();
  ASSERT_TRUE(args.parse({"--verbose", "one"}));
  ASSERT_TRUE(args.parse(std::vector<std::string>{"two"}));
  EXPECT_FALSE(args.has("verbose"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "two");
}

}  // namespace
}  // namespace bismark
