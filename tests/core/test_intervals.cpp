#include <gtest/gtest.h>

#include "core/intervals.h"
#include "core/rng.h"

namespace bismark {
namespace {

TimePoint T(double hours) { return TimePoint{0} + Hours(hours); }

TEST(IntervalTest, BasicProperties) {
  const Interval iv{T(1), T(3)};
  EXPECT_EQ(iv.length(), Hours(2));
  EXPECT_TRUE(iv.contains(T(1)));
  EXPECT_TRUE(iv.contains(T(2.999)));
  EXPECT_FALSE(iv.contains(T(3)));  // half-open
  EXPECT_FALSE(iv.contains(T(0.5)));
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE((Interval{T(3), T(3)}).empty());
  EXPECT_TRUE((Interval{T(3), T(1)}).empty());
}

TEST(IntervalSetTest, AddDisjointKeepsOrder) {
  IntervalSet s;
  s.add(T(5), T(6));
  s.add(T(1), T(2));
  s.add(T(3), T(4));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.intervals()[0].start, T(1));
  EXPECT_EQ(s.intervals()[1].start, T(3));
  EXPECT_EQ(s.intervals()[2].start, T(5));
}

TEST(IntervalSetTest, AddMergesOverlapping) {
  IntervalSet s;
  s.add(T(1), T(3));
  s.add(T(2), T(5));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0].start, T(1));
  EXPECT_EQ(s.intervals()[0].end, T(5));
}

TEST(IntervalSetTest, AddMergesTouching) {
  IntervalSet s;
  s.add(T(1), T(2));
  s.add(T(2), T(3));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0].end, T(3));
}

TEST(IntervalSetTest, AddBridgesMultiple) {
  IntervalSet s;
  s.add(T(1), T(2));
  s.add(T(3), T(4));
  s.add(T(5), T(6));
  s.add(T(1.5), T(5.5));  // spans all three
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0].start, T(1));
  EXPECT_EQ(s.intervals()[0].end, T(6));
}

TEST(IntervalSetTest, EmptyIntervalIgnored) {
  IntervalSet s;
  s.add(T(2), T(2));
  s.add(T(3), T(1));
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, ContainsAndContaining) {
  IntervalSet s;
  s.add(T(1), T(2));
  s.add(T(4), T(6));
  EXPECT_TRUE(s.contains(T(1)));
  EXPECT_FALSE(s.contains(T(2)));
  EXPECT_FALSE(s.contains(T(3)));
  EXPECT_TRUE(s.contains(T(5)));
  const Interval* iv = s.containing(T(5));
  ASSERT_NE(iv, nullptr);
  EXPECT_EQ(iv->start, T(4));
  EXPECT_EQ(s.containing(T(0)), nullptr);
  EXPECT_EQ(s.containing(T(3)), nullptr);
}

TEST(IntervalSetTest, TotalAndCoverage) {
  IntervalSet s;
  s.add(T(0), T(2));
  s.add(T(4), T(8));
  EXPECT_EQ(s.total(), Hours(6));
  EXPECT_EQ(s.covered_within(T(1), T(5)), Hours(2));  // [1,2) + [4,5)
  EXPECT_DOUBLE_EQ(s.coverage_fraction(T(0), T(8)), 0.75);
  EXPECT_DOUBLE_EQ(s.coverage_fraction(T(10), T(12)), 0.0);
  EXPECT_DOUBLE_EQ(s.coverage_fraction(T(5), T(5)), 0.0);  // degenerate window
}

TEST(IntervalSetTest, GapsWithin) {
  IntervalSet s;
  s.add(T(1), T(2));
  s.add(T(4), T(5));
  const auto gaps = s.gaps_within(T(0), T(6));
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0].start, T(0));
  EXPECT_EQ(gaps[0].end, T(1));
  EXPECT_EQ(gaps[1].start, T(2));
  EXPECT_EQ(gaps[1].end, T(4));
  EXPECT_EQ(gaps[2].start, T(5));
  EXPECT_EQ(gaps[2].end, T(6));
}

TEST(IntervalSetTest, GapsWithinFullyCovered) {
  IntervalSet s;
  s.add(T(0), T(10));
  EXPECT_TRUE(s.gaps_within(T(2), T(8)).empty());
}

TEST(IntervalSetTest, GapsWithinEmptySet) {
  IntervalSet s;
  const auto gaps = s.gaps_within(T(0), T(4));
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].start, T(0));
  EXPECT_EQ(gaps[0].end, T(4));
}

TEST(IntervalSetTest, Intersect) {
  IntervalSet a;
  a.add(T(0), T(4));
  a.add(T(6), T(10));
  IntervalSet b;
  b.add(T(2), T(7));
  b.add(T(9), T(12));
  const IntervalSet both = a.intersect(b);
  ASSERT_EQ(both.size(), 3u);
  EXPECT_EQ(both.intervals()[0].start, T(2));
  EXPECT_EQ(both.intervals()[0].end, T(4));
  EXPECT_EQ(both.intervals()[1].start, T(6));
  EXPECT_EQ(both.intervals()[1].end, T(7));
  EXPECT_EQ(both.intervals()[2].start, T(9));
  EXPECT_EQ(both.intervals()[2].end, T(10));
}

TEST(IntervalSetTest, IntersectDisjointIsEmpty) {
  IntervalSet a;
  a.add(T(0), T(1));
  IntervalSet b;
  b.add(T(2), T(3));
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_TRUE(a.intersect(IntervalSet{}).empty());
}

TEST(IntervalSetTest, Clipped) {
  IntervalSet s;
  s.add(T(0), T(10));
  s.add(T(20), T(30));
  const IntervalSet clipped = s.clipped(T(5), T(25));
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(clipped.intervals()[0].start, T(5));
  EXPECT_EQ(clipped.intervals()[0].end, T(10));
  EXPECT_EQ(clipped.intervals()[1].start, T(20));
  EXPECT_EQ(clipped.intervals()[1].end, T(25));
}

TEST(IntervalSetTest, PropertyRandomizedMergeInvariants) {
  // Whatever is added, the set stays sorted, disjoint and non-touching.
  Rng rng(77);
  IntervalSet s;
  for (int i = 0; i < 500; ++i) {
    const double start = rng.uniform(0.0, 100.0);
    const double len = rng.uniform(0.0, 10.0);
    s.add(T(start), T(start + len));
    Duration sum{0};
    for (std::size_t k = 0; k < s.size(); ++k) {
      const auto& iv = s.intervals()[k];
      EXPECT_LT(iv.start, iv.end);
      if (k > 0) {
        EXPECT_LT(s.intervals()[k - 1].end, iv.start);
      }
      sum += iv.length();
    }
    EXPECT_EQ(s.total(), sum);
  }
}

}  // namespace
}  // namespace bismark
