// CRC32C: RFC 3720 test vectors, chaining identity, and hardware/software
// agreement — the checksum every spill section and snapshot relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/crc32c.h"
#include "core/rng.h"

namespace bismark::core {
namespace {

TEST(Crc32c, Rfc3720Vectors) {
  // iSCSI (RFC 3720 §B.4) reference vectors: any implementation drift from
  // these corrupts the on-disk format's self-description.
  const std::string digits = "123456789";
  EXPECT_EQ(Crc32c(digits.data(), digits.size()), 0xE3069283u);

  const std::vector<unsigned char> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  const std::vector<unsigned char> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<unsigned char> ascending(32);
  for (std::size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<unsigned char>(i);
  }
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32c, EmptyInputIsIdentity) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  // Chaining zero bytes must leave a running stream untouched.
  EXPECT_EQ(Crc32c(nullptr, 0, 0xDEADBEEFu), 0xDEADBEEFu);
}

TEST(Crc32c, ChainingMatchesOneShot) {
  Rng rng(7);
  std::string data(4097, '\0');
  for (char& c : data) c = static_cast<char>(rng.uniform_int(0, 255));

  const std::uint32_t whole = Crc32c(data.data(), data.size());
  for (const std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{4096}, data.size()}) {
    std::uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32c(data.data() + split, data.size() - split, crc);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, SoftwareMatchesDispatchedPath) {
  // On SSE4.2 hosts this pins hardware == software byte-for-byte across
  // lengths that exercise every alignment and tail case of both kernels;
  // elsewhere it degenerates to software == software, which still covers
  // the slice-by-8 tail handling.
  Rng rng(20131023);
  std::string data(1 << 14, '\0');
  for (char& c : data) c = static_cast<char>(rng.uniform_int(0, 255));

  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{8}, std::size_t{9}, std::size_t{63},
                          std::size_t{64}, std::size_t{65}, std::size_t{1000},
                          std::size_t{8191}, data.size()}) {
    for (std::size_t offset : {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
      if (offset + len > data.size()) continue;
      EXPECT_EQ(Crc32c(data.data() + offset, len),
                Crc32cSoftware(data.data() + offset, len))
          << "len " << len << " offset " << offset
          << " (hw active: " << Crc32cHardwareActive() << ")";
    }
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::string data(512, 'a');
  const std::uint32_t clean = Crc32c(data.data(), data.size());
  for (std::size_t byte : {std::size_t{0}, std::size_t{255}, data.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bent = data;
      bent[byte] = static_cast<char>(bent[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(bent.data(), bent.size()), clean)
          << "byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace bismark::core
