#include <gtest/gtest.h>

#include "core/stats.h"

namespace bismark {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic example set
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStatsTest, MergeEqualsCombined) {
  RunningStats a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(QuantileTest, MedianAndInterpolation) {
  const std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Median(odd), 2.0);
  const std::vector<double> even = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Median(even), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(even, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(even, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(even, 0.25), 1.75);  // R-7 definition
}

TEST(QuantileTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(Quantile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(Quantile(one, 0.99), 42.0);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.5), 3.0);
}

TEST(MeanSumTest, Basics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Sum(v), 10.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(CorrelationTest, PerfectAndInverse) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(Correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(Correlation(x, z), -1.0, 1e-12);
}

TEST(CorrelationTest, ConstantSideIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(Correlation(x, c), 0.0);
  EXPECT_DOUBLE_EQ(Correlation(x, {}), 0.0);
}

TEST(SampleTest, QuantileQueriesAfterAppends) {
  Sample s;
  for (int i = 10; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 5.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  // Adding after a query must invalidate the sorted cache.
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 6.0);
  EXPECT_EQ(s.size(), 11u);
}

}  // namespace
}  // namespace bismark
