#include <gtest/gtest.h>

#include <sstream>

#include "core/csv.h"
#include "core/table.h"

namespace bismark {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render();
  // Header, separator, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Columns align: "value" header starts at the same offset in all lines.
  std::istringstream stream(out);
  std::string header, sep, row1, row2;
  std::getline(stream, header);
  std::getline(stream, sep);
  std::getline(stream, row1);
  std::getline(stream, row2);
  EXPECT_EQ(header.find("value"), row2.find("22"));
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.render());
}

TEST(TextTableTest, Formatters) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Pct(0.382, 1), "38.2%");
  EXPECT_EQ(TextTable::Int(1234), "1234");
}

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriterTest, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::Escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::Escape("has\nnewline"), "\"has\nnewline\"");
}

TEST(CsvWriterTest, QuotedRowRoundTrip) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"x,y", "z"});
  EXPECT_EQ(out.str(), "\"x,y\",z\n");
}

}  // namespace
}  // namespace bismark
