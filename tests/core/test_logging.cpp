#include <gtest/gtest.h>

#include "core/logging.h"

namespace bismark {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarn); }  // restore default
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kOff);
  EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
}

TEST_F(LoggingTest, EmitBelowAndAboveThresholdDoesNotCrash) {
  SetLogLevel(LogLevel::kWarn);
  // Suppressed (below threshold) and emitted (at/above threshold) paths,
  // including printf-style formatting.
  BISMARK_LOG_DEBUG("test", "suppressed %d", 1);
  BISMARK_LOG_INFO("test", "suppressed %s", "too");
  SetLogLevel(LogLevel::kOff);
  BISMARK_LOG_ERROR("test", "also suppressed at kOff %f", 1.5);
  SUCCEED();
}

TEST_F(LoggingTest, LongMessagesTruncateSafely) {
  SetLogLevel(LogLevel::kOff);  // keep test output clean
  std::string big(5000, 'x');
  Log(LogLevel::kError, "test", "%s", big.c_str());
  SUCCEED();
}

}  // namespace
}  // namespace bismark
