#include <gtest/gtest.h>

#include "core/cdf.h"

namespace bismark {
namespace {

TEST(CdfTest, EmptyCdf) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.points().empty());
}

TEST(CdfTest, AtIsFractionAtOrBelow) {
  Cdf cdf;
  for (double v : {1.0, 2.0, 3.0, 4.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(CdfTest, DuplicateValuesCollapseIntoOnePoint) {
  Cdf cdf(std::vector<double>{1.0, 2.0, 2.0, 3.0});
  const auto pts = cdf.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].x, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].p, 0.25);
  EXPECT_DOUBLE_EQ(pts[1].x, 2.0);
  EXPECT_DOUBLE_EQ(pts[1].p, 0.75);
  EXPECT_DOUBLE_EQ(pts[2].x, 3.0);
  EXPECT_DOUBLE_EQ(pts[2].p, 1.0);
}

TEST(CdfTest, QuantileInverse) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_NEAR(cdf.median(), 50.5, 1e-9);
  EXPECT_NEAR(cdf.quantile(0.95), 95.05, 1e-6);
}

TEST(CdfTest, SampledPointsLinearAndLog) {
  Cdf cdf;
  for (int i = 1; i <= 1000; ++i) cdf.add(i);
  const auto lin = cdf.sampled_points(11, false);
  ASSERT_EQ(lin.size(), 11u);
  EXPECT_DOUBLE_EQ(lin.front().x, 1.0);
  EXPECT_DOUBLE_EQ(lin.back().x, 1000.0);
  EXPECT_NEAR(lin.back().p, 1.0, 1e-9);
  // Log-spaced points should bunch at the low end.
  const auto log = cdf.sampled_points(4, true);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_NEAR(log[1].x, 10.0, 0.5);
  EXPECT_NEAR(log[2].x, 100.0, 5.0);
}

TEST(CdfTest, SampledPointsDegenerate) {
  Cdf cdf;
  EXPECT_TRUE(cdf.sampled_points(5).empty());
  cdf.add(3.0);
  const auto pts = cdf.sampled_points(3);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts.front().x, 3.0);
}

TEST(CdfTest, AddAfterQueryResorts) {
  Cdf cdf;
  cdf.add(5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 5.0);
  cdf.add(1.0);
  cdf.add(9.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 1.0 / 3.0);
}

TEST(CdfTest, SummaryStringContainsStats) {
  Cdf cdf;
  for (int i = 1; i <= 10; ++i) cdf.add(i);
  const std::string s = Summarize(cdf);
  EXPECT_NE(s.find("n=10"), std::string::npos);
  EXPECT_NE(s.find("median=5.5"), std::string::npos);
}

}  // namespace
}  // namespace bismark
