// Property tests for the streaming quantile estimators: the GK sketch's
// rank-error guarantee against exact order statistics, merge error
// budgeting, and the P² single-quantile estimator on smooth input.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/stats.h"

namespace bismark {
namespace {

// The GK guarantee: quantile(q) returns a stream element whose true rank r
// satisfies |r - q*n| <= eps*n. With duplicates the returned value owns a
// rank *range*; the guarantee holds if any rank in that range qualifies.
void ExpectWithinRankError(const QuantileSketch& sketch, std::vector<double> data,
                           double eps_budget) {
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  const double slack = eps_budget * n + 1.0;  // +1: rank discretisation
  for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = sketch.quantile(q);
    const auto lo = std::lower_bound(data.begin(), data.end(), v);
    const auto hi = std::upper_bound(data.begin(), data.end(), v);
    ASSERT_NE(lo, hi) << "quantile(" << q << ") returned " << v
                      << ", which is not a stream element";
    // 1-based rank range occupied by v in the sorted sample.
    const double r_lo = static_cast<double>(lo - data.begin()) + 1.0;
    const double r_hi = static_cast<double>(hi - data.begin());
    const double target = q * n;
    const double dist = target < r_lo ? r_lo - target : (target > r_hi ? target - r_hi : 0.0);
    EXPECT_LE(dist, slack) << "quantile(" << q << ") = " << v << " has rank ["
                           << r_lo << ", " << r_hi << "], target " << target;
  }
}

TEST(QuantileSketch, UniformStreamWithinRankError) {
  Rng rng(7001);
  QuantileSketch sketch(0.005);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.uniform(0.0, 1000.0);
    data.push_back(v);
    sketch.add(v);
  }
  EXPECT_EQ(sketch.count(), data.size());
  ExpectWithinRankError(sketch, data, sketch.eps());
}

TEST(QuantileSketch, HeavyTailedStreamWithinRankError) {
  Rng rng(7002);
  QuantileSketch sketch(0.005);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.pareto(1.0, 1.2);  // flow-size-like tail
    data.push_back(v);
    sketch.add(v);
  }
  ExpectWithinRankError(sketch, data, sketch.eps());
}

TEST(QuantileSketch, SortedAndReversedStreams) {
  for (const bool reversed : {false, true}) {
    QuantileSketch sketch(0.01);
    std::vector<double> data;
    for (int i = 0; i < 20000; ++i) {
      const double v = reversed ? 20000.0 - i : static_cast<double>(i);
      data.push_back(v);
      sketch.add(v);
    }
    ExpectWithinRankError(sketch, data, sketch.eps());
  }
}

TEST(QuantileSketch, ManyDuplicates) {
  Rng rng(7003);
  QuantileSketch sketch(0.01);
  std::vector<double> data;
  for (int i = 0; i < 30000; ++i) {
    // Device-count-like integers: a handful of distinct values.
    const double v = std::floor(rng.uniform(0.0, 8.0));
    data.push_back(v);
    sketch.add(v);
  }
  ExpectWithinRankError(sketch, data, sketch.eps());
}

TEST(QuantileSketch, SketchStaysSublinear) {
  Rng rng(7004);
  QuantileSketch sketch(0.005);
  for (int i = 0; i < 200000; ++i) sketch.add(rng.uniform(0.0, 1.0));
  // O((1/eps) log(eps n)) tuples: generous ceiling far below the stream.
  EXPECT_LT(sketch.tuples(), 4000u);
  EXPECT_EQ(sketch.count(), 200000u);
}

TEST(QuantileSketch, MergeKeepsSummedErrorBudget) {
  Rng rng(7005);
  QuantileSketch a(0.005);
  QuantileSketch b(0.005);
  std::vector<double> data;
  for (int i = 0; i < 40000; ++i) {
    const double v = rng.exponential(10.0);
    data.push_back(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), data.size());
  // Merging same-eps sketches doubles the rank tolerance (eps_a + eps_b).
  ExpectWithinRankError(a, data, 0.011);
}

TEST(QuantileSketch, MinMaxExact) {
  QuantileSketch sketch(0.01);
  Rng rng(7006);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.normal(50.0, 20.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sketch.add(v);
  }
  EXPECT_DOUBLE_EQ(sketch.min(), lo);
  EXPECT_DOUBLE_EQ(sketch.max(), hi);
}

TEST(P2Quantile, TracksSmoothDistribution) {
  Rng rng(7007);
  P2Quantile p95(0.95);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    data.push_back(v);
    p95.add(v);
  }
  EXPECT_NEAR(p95.value(), Quantile(data, 0.95), 0.01);
}

TEST(P2Quantile, ExactForTinySamples) {
  P2Quantile median(0.5);
  for (const double v : {5.0, 1.0, 3.0}) median.add(v);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
}

TEST(QuantileSketch, SerializeRoundTripAnswersIdentically) {
  Rng rng(7010);
  QuantileSketch sketch(0.01);
  for (int i = 0; i < 20000; ++i) sketch.add(rng.lognormal(2.0, 1.5));

  QuantileSketch loaded;
  ASSERT_TRUE(QuantileSketch::Deserialize(sketch.Serialize(), &loaded));
  EXPECT_EQ(loaded.count(), sketch.count());
  EXPECT_DOUBLE_EQ(loaded.eps(), sketch.eps());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(loaded.quantile(q), sketch.quantile(q)) << q;
  }

  // A resumed sketch must keep absorbing adds exactly like the original
  // (checkpoint/resume continues streaming into restored sketches).
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    sketch.add(v);
    loaded.add(v);
  }
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(loaded.quantile(q), sketch.quantile(q)) << q;
  }

  QuantileSketch empty(0.005);
  QuantileSketch empty_loaded;
  ASSERT_TRUE(QuantileSketch::Deserialize(empty.Serialize(), &empty_loaded));
  EXPECT_TRUE(empty_loaded.empty());
}

TEST(QuantileSketch, DeserializeFailsClosedOnDamage) {
  QuantileSketch sketch(0.01);
  for (int i = 0; i < 1000; ++i) sketch.add(static_cast<double>(i));
  const std::string blob = sketch.Serialize();

  QuantileSketch out(0.5);
  EXPECT_FALSE(QuantileSketch::Deserialize("", &out));
  EXPECT_FALSE(QuantileSketch::Deserialize(blob.substr(0, blob.size() / 2), &out));
  EXPECT_FALSE(QuantileSketch::Deserialize(blob + "x", &out));
  std::string bent = blob;
  bent[0] = static_cast<char>(bent[0] ^ 0x7);  // magic
  EXPECT_FALSE(QuantileSketch::Deserialize(bent, &out));
  // A failed load leaves *out untouched.
  EXPECT_DOUBLE_EQ(out.eps(), 0.5);
  EXPECT_TRUE(out.empty());
}

TEST(P2Quantile, SerializeRoundTripContinuesIdentically) {
  Rng rng(7011);
  P2Quantile p95(0.95);
  for (int i = 0; i < 10000; ++i) p95.add(rng.normal(10.0, 3.0));

  P2Quantile loaded(0.5);
  ASSERT_TRUE(P2Quantile::Deserialize(p95.Serialize(), &loaded));
  EXPECT_EQ(loaded.count(), p95.count());
  EXPECT_DOUBLE_EQ(loaded.value(), p95.value());
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.0, 20.0);
    p95.add(v);
    loaded.add(v);
  }
  EXPECT_DOUBLE_EQ(loaded.value(), p95.value());

  P2Quantile out(0.5);
  EXPECT_FALSE(P2Quantile::Deserialize("junk", &out));
}

}  // namespace
}  // namespace bismark
