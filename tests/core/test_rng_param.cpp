// Property sweep: distribution moments hold across seeds (not just one
// lucky stream), and hierarchical forking never correlates siblings.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "core/stats.h"

namespace bismark {
namespace {

class RngSeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweepTest, UniformMoments) {
  Rng rng(GetParam());
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.02);
  EXPECT_GE(stats.min(), 0.0);
  EXPECT_LT(stats.max(), 1.0);
}

TEST_P(RngSeedSweepTest, ExponentialMeanAndPositivity) {
  Rng rng(GetParam());
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(7.0));
  EXPECT_NEAR(stats.mean(), 7.0, 0.5);
  EXPECT_GT(stats.min(), 0.0);
}

TEST_P(RngSeedSweepTest, NormalSymmetry) {
  Rng rng(GetParam());
  int above = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) above += rng.normal(0.0, 1.0) > 0.0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.02);
}

TEST_P(RngSeedSweepTest, SiblingForksUncorrelated) {
  Rng parent(GetParam());
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  // Correlation of paired uniforms across sibling streams ~ 0.
  std::vector<double> xs, ys;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(a.uniform());
    ys.push_back(b.uniform());
  }
  EXPECT_LT(std::abs(Correlation(xs, ys)), 0.05);
}

TEST_P(RngSeedSweepTest, BernoulliUnbiasedAtHalf) {
  Rng rng(GetParam());
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.bernoulli(0.5) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweepTest,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 20131023ULL,
                                           0xDEADBEEFULL, 0xFFFFFFFFFFFFFFFFULL));

class ZipfAlphaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaSweepTest, MonotoneDecreasingPmfAndNormalised) {
  ZipfDistribution zipf(150, GetParam());
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    total += zipf.pmf(i);
    if (i > 0) {
      EXPECT_LE(zipf.pmf(i), zipf.pmf(i - 1) + 1e-12);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ZipfAlphaSweepTest, HigherAlphaConcentratesMore) {
  ZipfDistribution zipf(150, GetParam());
  ZipfDistribution flatter(150, GetParam() * 0.5);
  EXPECT_GE(zipf.pmf(0), flatter.pmf(0));
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweepTest, ::testing::Values(0.6, 0.9, 1.2, 2.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "alpha_" + std::to_string(static_cast<int>(info.param * 10));
                         });

}  // namespace
}  // namespace bismark
