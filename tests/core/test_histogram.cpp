#include <gtest/gtest.h>

#include "core/histogram.h"

namespace bismark {
namespace {

TEST(HistogramTest, BinsAndBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, AddPlacesInCorrectBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.999);
  h.add(2.0);
  h.add(9.999);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(HistogramTest, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(HistogramTest, WeightsAndFractions) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0, 3.0);
  h.add(3.0, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(HistogramTest, ZeroBinsSurvives) {
  Histogram h(0.0, 1.0, 0);
  h.add(0.5);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
}

TEST(BinnedMeanTest, MeansPerBin) {
  BinnedMean b(24);
  b.add(3, 10.0);
  b.add(3, 20.0);
  b.add(5, 7.0);
  EXPECT_DOUBLE_EQ(b.mean(3), 15.0);
  EXPECT_DOUBLE_EQ(b.mean(5), 7.0);
  EXPECT_DOUBLE_EQ(b.mean(0), 0.0);
  EXPECT_EQ(b.count(3), 2u);
}

TEST(BinnedMeanTest, StddevPerBin) {
  BinnedMean b(4);
  b.add(0, 2.0);
  b.add(0, 4.0);
  b.add(0, 4.0);
  b.add(0, 4.0);
  b.add(0, 5.0);
  b.add(0, 5.0);
  b.add(0, 7.0);
  b.add(0, 9.0);
  EXPECT_NEAR(b.stddev(0), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.stddev(1), 0.0);
}

TEST(BinnedMeanTest, OutOfRangeBinIgnored) {
  BinnedMean b(2);
  b.add(5, 100.0);
  EXPECT_EQ(b.count(0), 0u);
  EXPECT_EQ(b.count(1), 0u);
}

TEST(CategoryCounterTest, SortsByDescendingCount) {
  CategoryCounter c;
  c.add("apple");
  c.add("banana");
  c.add("apple");
  c.add("cherry", 5.0);
  const auto sorted = c.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].key, "cherry");
  EXPECT_EQ(sorted[1].key, "apple");
  EXPECT_DOUBLE_EQ(sorted[1].count, 2.0);
  EXPECT_DOUBLE_EQ(c.total(), 8.0);
  EXPECT_EQ(c.distinct(), 3u);
}

TEST(CategoryCounterTest, TieBreaksByKey) {
  CategoryCounter c;
  c.add("b");
  c.add("a");
  const auto sorted = c.sorted();
  EXPECT_EQ(sorted[0].key, "a");
  EXPECT_EQ(sorted[1].key, "b");
}

TEST(CategoryCounterTest, CountOfMissingIsZero) {
  CategoryCounter c;
  c.add("x");
  EXPECT_DOUBLE_EQ(c.count_of("x"), 1.0);
  EXPECT_DOUBLE_EQ(c.count_of("y"), 0.0);
}

}  // namespace
}  // namespace bismark
