#include <gtest/gtest.h>

#include "core/units.h"

namespace bismark {
namespace {

TEST(BytesTest, Conversions) {
  EXPECT_DOUBLE_EQ(KB(1).kb(), 1.0);
  EXPECT_DOUBLE_EQ(MB(2.5).mb(), 2.5);
  EXPECT_DOUBLE_EQ(GB(1).mb(), 1000.0);
  EXPECT_DOUBLE_EQ(B(1).bits(), 8.0);
  EXPECT_EQ(MB(1).count, 1000000);
}

TEST(BytesTest, Arithmetic) {
  EXPECT_EQ((MB(1) + KB(500)).count, 1500000);
  EXPECT_EQ((MB(1) - KB(250)).count, 750000);
  Bytes b = KB(1);
  b += KB(2);
  EXPECT_EQ(b.count, 3000);
}

TEST(BytesTest, Comparisons) {
  EXPECT_LT(KB(999), MB(1));
  EXPECT_EQ(KB(1000), MB(1));
  EXPECT_GT(GB(1), MB(999));
}

TEST(BitRateTest, Conversions) {
  EXPECT_DOUBLE_EQ(Mbps(10).bps, 10e6);
  EXPECT_DOUBLE_EQ(Kbps(500).mbps(), 0.5);
  EXPECT_DOUBLE_EQ(Bps(1e6).kbps(), 1000.0);
}

TEST(BitRateTest, TransferTimes) {
  // 1 MB at 8 Mbps = 1 second.
  EXPECT_DOUBLE_EQ(Mbps(8).seconds_for(MB(1)), 1.0);
  EXPECT_DOUBLE_EQ(Mbps(4).seconds_for(MB(1)), 2.0);
  // Zero rate yields an effectively infinite time rather than dividing by 0.
  EXPECT_GT(Bps(0).seconds_for(MB(1)), 1e12);
}

TEST(BitRateTest, BytesInDuration) {
  EXPECT_EQ(Mbps(8).bytes_in(1.0).count, 1000000);
  EXPECT_EQ(Mbps(8).bytes_in(0.5).count, 500000);
  EXPECT_EQ(Bps(0).bytes_in(100.0).count, 0);
}

}  // namespace
}  // namespace bismark
