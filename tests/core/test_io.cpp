// Injectable I/O seam: fault-spec parsing, each fault kind's observable
// behaviour through CheckedFile, path filtering, and counter bookkeeping.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/io.h"

namespace bismark::core {
namespace {

namespace fs = std::filesystem;

/// Every test leaves the real Io installed, whatever happens inside.
class IoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClearIoFaults();
    // Per-process dir: ctest runs suite cases as concurrent processes.
    dir_ = fs::temp_directory_path() / ("bismark_io_test-" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ClearIoFaults();
    fs::remove_all(dir_);
  }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static std::uintmax_t SizeOf(const std::string& p) {
    std::error_code ec;
    const auto n = fs::file_size(p, ec);
    return ec ? 0 : n;
  }

  fs::path dir_;
};

TEST(IoFaultSpec, ParsesEveryKindAndTrigger) {
  IoFaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseIoFaultSpec("enospc@writes=3", &plan, &error)) << error;
  EXPECT_EQ(plan.kind, IoFaultPlan::Kind::kEnospc);
  EXPECT_EQ(plan.at_op, 3u);
  EXPECT_EQ(plan.at_bytes, 0u);
  EXPECT_TRUE(plan.path_substr.empty());

  ASSERT_TRUE(ParseIoFaultSpec("shortwrite@bytes=4096:path=.bsmkseg", &plan, &error));
  EXPECT_EQ(plan.kind, IoFaultPlan::Kind::kShortWrite);
  EXPECT_EQ(plan.at_bytes, 4096u);
  EXPECT_EQ(plan.path_substr, ".bsmkseg");

  ASSERT_TRUE(ParseIoFaultSpec("fsyncfail@writes=1", &plan, &error));
  EXPECT_EQ(plan.kind, IoFaultPlan::Kind::kFsyncFail);

  ASSERT_TRUE(ParseIoFaultSpec("kill@writes=40:path=manifest", &plan, &error));
  EXPECT_EQ(plan.kind, IoFaultPlan::Kind::kKill);
  EXPECT_EQ(plan.path_substr, "manifest");
}

TEST(IoFaultSpec, RejectsMalformedSpecs) {
  IoFaultPlan plan;
  for (const char* bad : {"", "enospc", "nosuchkind@writes=1", "enospc@writes",
                          "enospc@writes=0", "enospc@writes=abc", "enospc@calls=3",
                          "enospc@writes=1:paths=x"}) {
    std::string error;
    EXPECT_FALSE(ParseIoFaultSpec(bad, &plan, &error)) << bad;
    EXPECT_NE(error.find("bad I/O fault spec"), std::string::npos) << bad;
  }
}

TEST_F(IoFaultTest, EnospcIsStickyAndLatchesCheckedFile) {
  InstallIoFaultPlan([] {
    IoFaultPlan p;
    p.kind = IoFaultPlan::Kind::kEnospc;
    p.at_op = 1;
    return p;
  }());

  CheckedFile f;
  ASSERT_TRUE(f.open(path("full.bin")));
  EXPECT_TRUE(f.write(std::string(16, 'x')));  // buffered, not yet on disk
  EXPECT_FALSE(f.flush());
  EXPECT_FALSE(f.ok());
  EXPECT_NE(f.error().find("No space left"), std::string::npos) << f.error();
  // Latched: every later call fails without clearing the first diagnostic.
  EXPECT_FALSE(f.write("more"));
  EXPECT_FALSE(f.sync());
  EXPECT_FALSE(f.close());
  EXPECT_NE(f.error().find("No space left"), std::string::npos);
  EXPECT_GE(CurrentIoFaultStats().faults_fired, 1u);
}

TEST_F(IoFaultTest, ShortWriteReportsSuccessButTearsTheFile) {
  InstallIoFaultPlan([] {
    IoFaultPlan p;
    p.kind = IoFaultPlan::Kind::kShortWrite;
    p.at_op = 1;
    return p;
  }());

  CheckedFile f;
  ASSERT_TRUE(f.open(path("torn.bin")));
  ASSERT_TRUE(f.write(std::string(100, 'y')));
  EXPECT_TRUE(f.flush());  // the lie: success reported, half the bytes land
  EXPECT_TRUE(f.close());
  EXPECT_TRUE(f.ok());
  EXPECT_EQ(f.bytes_accepted(), 100u);
  EXPECT_EQ(SizeOf(path("torn.bin")), 50u)
      << "shortwrite must tear the file while reporting success — only "
         "checksums can catch this";
}

TEST_F(IoFaultTest, FsyncFailSurfacesThroughSync) {
  InstallIoFaultPlan([] {
    IoFaultPlan p;
    p.kind = IoFaultPlan::Kind::kFsyncFail;
    p.at_op = 2;  // the write is op 1, the fsync op 2
    return p;
  }());

  CheckedFile f;
  ASSERT_TRUE(f.open(path("nosync.bin")));
  ASSERT_TRUE(f.write("durable?"));
  EXPECT_FALSE(f.sync());
  EXPECT_NE(f.error().find("fsync"), std::string::npos) << f.error();
}

TEST_F(IoFaultTest, PathFilterScopesTheFault) {
  InstallIoFaultPlan([] {
    IoFaultPlan p;
    p.kind = IoFaultPlan::Kind::kEnospc;
    p.at_op = 1;
    p.path_substr = ".bsmkseg";
    return p;
  }());

  CheckedFile other;
  ASSERT_TRUE(other.open(path("unrelated.txt")));
  EXPECT_TRUE(other.write("fine"));
  EXPECT_TRUE(other.sync());
  EXPECT_TRUE(other.close());

  CheckedFile seg;
  ASSERT_TRUE(seg.open(path("run.bsmkseg")));
  EXPECT_TRUE(seg.write("doomed"));
  EXPECT_FALSE(seg.flush());
  EXPECT_FALSE(seg.ok());
}

TEST_F(IoFaultTest, ClearRestoresRealIoAndCounters) {
  InstallIoFaultPlan([] {
    IoFaultPlan p;
    p.kind = IoFaultPlan::Kind::kEnospc;
    p.at_op = 1;
    return p;
  }());
  CheckedFile f;
  ASSERT_TRUE(f.open(path("x.bin")));
  f.write("z");
  f.flush();
  EXPECT_GE(CurrentIoFaultStats().ops, 1u);

  ClearIoFaults();
  EXPECT_EQ(CurrentIoFaultStats().ops, 0u);
  EXPECT_EQ(CurrentIoFaultStats().faults_fired, 0u);
  CheckedFile ok;
  ASSERT_TRUE(ok.open(path("y.bin")));
  EXPECT_TRUE(ok.write("hello"));
  EXPECT_TRUE(ok.sync());
  EXPECT_TRUE(ok.close());
  EXPECT_EQ(SizeOf(path("y.bin")), 5u);
}

// --- MappedFile: the columnar reader's byte source ---------------------------

class MappedFileTest : public IoFaultTest {
 protected:
  void SetUp() override {
    IoFaultTest::SetUp();
    ForceBufferedReadsForTest(false);
    ResetIoReadStats();
  }
  void TearDown() override {
    ForceBufferedReadsForTest(false);
    IoFaultTest::TearDown();
  }

  std::string WriteFile(const char* name, const std::string& contents) {
    const std::string p = path(name);
    std::ofstream out(p, std::ios::binary);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    return p;
  }
};

TEST_F(MappedFileTest, MmapAndBufferedPathsExposeIdenticalBytes) {
  const std::string contents = "column bytes\0with a NUL" + std::string(4096, 'z');
  const std::string p = WriteFile("col.bin", contents);

  MappedFile mapped;
  std::string error;
  ASSERT_TRUE(mapped.open(p, &error)) << error;
  EXPECT_TRUE(mapped.is_open());
  ASSERT_EQ(mapped.size(), contents.size());
  EXPECT_EQ(std::string(mapped.data(), mapped.size()), contents);
  EXPECT_EQ(mapped.path(), p);

  ForceBufferedReadsForTest(true);
  MappedFile buffered;
  ASSERT_TRUE(buffered.open(p, &error)) << error;
  EXPECT_FALSE(buffered.mmapped());
  ASSERT_EQ(buffered.size(), contents.size());
  EXPECT_EQ(std::string(buffered.data(), buffered.size()), contents);
}

TEST_F(MappedFileTest, EmptyFileOpensWithZeroSize) {
  const std::string p = WriteFile("empty.bin", "");
  MappedFile f;
  std::string error;
  ASSERT_TRUE(f.open(p, &error)) << error;  // mmap(0) is invalid; fallback
  EXPECT_TRUE(f.is_open());
  EXPECT_EQ(f.size(), 0u);
}

TEST_F(MappedFileTest, MissingFileFailsWithPathInError) {
  MappedFile f;
  std::string error;
  EXPECT_FALSE(f.open(path("nonexistent.bin"), &error));
  EXPECT_FALSE(f.is_open());
  EXPECT_NE(error.find("nonexistent.bin"), std::string::npos) << error;
}

TEST_F(MappedFileTest, ReadStatsRecordEveryOpenInOrder) {
  const std::string a = WriteFile("a.bin", "aaaa");
  const std::string b = WriteFile("b.bin", "bbbbbbbb");
  ResetIoReadStats();

  MappedFile fa, fb, fa2;
  std::string error;
  ASSERT_TRUE(fa.open(a, &error));
  ASSERT_TRUE(fb.open(b, &error));
  ASSERT_TRUE(fa2.open(a, &error));  // duplicates preserved

  const auto stats = CurrentIoReadStats();
  EXPECT_EQ(stats.files_opened, 3u);
  EXPECT_EQ(stats.bytes_mapped, 4u + 8u + 4u);
  const auto paths = IoReadPaths();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], a);
  EXPECT_EQ(paths[1], b);
  EXPECT_EQ(paths[2], a);

  ResetIoReadStats();
  EXPECT_EQ(CurrentIoReadStats().files_opened, 0u);
  EXPECT_TRUE(IoReadPaths().empty());
}

TEST_F(IoFaultTest, CheckedFileAppendAndReopen) {
  {
    CheckedFile f;
    ASSERT_TRUE(f.open(path("log.bin")));
    ASSERT_TRUE(f.write("abc"));
    ASSERT_TRUE(f.close());
  }
  {
    CheckedFile f;
    ASSERT_TRUE(f.open(path("log.bin"), /*append=*/true));
    ASSERT_TRUE(f.write("def"));
    ASSERT_TRUE(f.close());
  }
  std::ifstream in(path("log.bin"), std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "abcdef");

  CheckedFile unopened;
  EXPECT_FALSE(unopened.write("never"));
  EXPECT_FALSE(unopened.ok());
}

}  // namespace
}  // namespace bismark::core
