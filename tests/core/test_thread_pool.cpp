#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bismark {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::atomic<int>> hits(103);
  pool.parallel_for(hits.size(), [&](std::size_t task, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    hits[task].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineAndInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(10, [&](std::size_t task, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(task);  // no lock needed: inline serial execution
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ZeroTasksIsANoop) {
  ThreadPool pool(3);
  pool.parallel_for(0, [](std::size_t, int) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, PoolIsReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(20, [&](std::size_t, int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAndStopsDealing) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(1000, [&](std::size_t task, int) {
      if (task == 3) throw std::runtime_error("boom");
      ran.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Dealing stops shortly after the throw; well under the full count.
  EXPECT_LT(ran.load(), 1000);
}

// After a task throws, the remaining tasks are skipped (not run against a
// half-failed round) and the pool stays usable for the next round — the
// deployment runner reuses one pool across heartbeat/passive/traffic stages.
TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(500, [&](std::size_t task, int) {
      if (task == 2) throw std::runtime_error("boom");
      ran.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_LT(ran.load(), 500);  // the failure skipped the remaining tasks
  std::atomic<int> total{0};
  pool.parallel_for(50, [&](std::size_t, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 50);
}

// Rapid small rounds: each worker repeatedly drains the cursor and must
// park until the *next* round is published, not re-join the drained one.
// Every task runs exactly once per round.
TEST(ThreadPoolTest, ManyShortRoundsRunEachTaskOnce) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> hits{0};
    pool.parallel_for(7, [&](std::size_t, int) { hits.fetch_add(1); });
    ASSERT_EQ(hits.load(), 7) << "round " << round;
  }
}

TEST(ThreadPoolTest, WorkerCountIsClampedToOne) {
  ThreadPool pool(-2);
  EXPECT_EQ(pool.workers(), 1);
  EXPECT_GE(ThreadPool::HardwareWorkers(), 1);
}

}  // namespace
}  // namespace bismark
