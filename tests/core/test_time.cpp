#include <gtest/gtest.h>

#include "core/time.h"

namespace bismark {
namespace {

TEST(DurationTest, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(Seconds(90).minutes(), 1.5);
  EXPECT_DOUBLE_EQ(Minutes(90).hours(), 1.5);
  EXPECT_DOUBLE_EQ(Hours(36).days(), 1.5);
  EXPECT_EQ(Millis(1500).ms, 1500);
  EXPECT_DOUBLE_EQ(Days(2).hours(), 48.0);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((Minutes(2) + Seconds(30)).ms, 150000);
  EXPECT_EQ((Minutes(2) - Seconds(30)).ms, 90000);
  EXPECT_EQ((Minutes(1) * 3).ms, 180000);
  EXPECT_EQ((Minutes(3) / 3).ms, 60000);
  Duration d = Minutes(1);
  d += Seconds(30);
  EXPECT_EQ(d.ms, 90000);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Seconds(59), Minutes(1));
  EXPECT_EQ(Seconds(60), Minutes(1));
  EXPECT_GT(Hours(1), Minutes(59));
}

TEST(CivilDateTest, KnownEpochDays) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 1}), 0);
  EXPECT_EQ(DaysFromCivil({1970, 1, 2}), 1);
  EXPECT_EQ(DaysFromCivil({1969, 12, 31}), -1);
  EXPECT_EQ(DaysFromCivil({2000, 3, 1}), 11017);
  // The paper's study start: October 1, 2012.
  EXPECT_EQ(DaysFromCivil({2012, 10, 1}), 15614);
}

TEST(CivilDateTest, RoundTripAcrossLeapYears) {
  for (std::int64_t day = -200000; day <= 200000; day += 37) {
    const CivilDate d = CivilFromDays(day);
    EXPECT_EQ(DaysFromCivil(d), day);
  }
}

TEST(CivilDateTest, LeapDayHandled) {
  const CivilDate leap = CivilFromDays(DaysFromCivil({2012, 2, 29}));
  EXPECT_EQ(leap.year, 2012);
  EXPECT_EQ(leap.month, 2);
  EXPECT_EQ(leap.day, 29);
}

TEST(WeekdayTest, KnownDates) {
  // Oct 1 2012 was a Monday; Oct 23 2013 (IMC'13 start) a Wednesday.
  EXPECT_EQ(WeekdayOf(MakeTime({2012, 10, 1})), Weekday::kMonday);
  EXPECT_EQ(WeekdayOf(MakeTime({2013, 10, 23})), Weekday::kWednesday);
  EXPECT_EQ(WeekdayOf(MakeTime({1970, 1, 1})), Weekday::kThursday);
  EXPECT_TRUE(IsWeekend(WeekdayOf(MakeTime({2013, 4, 13}))));   // Saturday
  EXPECT_TRUE(IsWeekend(WeekdayOf(MakeTime({2013, 4, 14}))));   // Sunday
  EXPECT_FALSE(IsWeekend(WeekdayOf(MakeTime({2013, 4, 15}))));  // Monday
}

TEST(WeekdayTest, NegativeTimesBeforeEpoch) {
  // Dec 31 1969 was a Wednesday.
  EXPECT_EQ(WeekdayOf(MakeTime({1969, 12, 31})), Weekday::kWednesday);
}

TEST(TimeZoneTest, LocalHourWithOffsets) {
  const TimePoint noon_utc = MakeTime({2013, 4, 1}, 12, 0, 0);
  EXPECT_EQ(TimeZone{Hours(0)}.local_hour(noon_utc), 12);
  EXPECT_EQ(TimeZone{Hours(-5)}.local_hour(noon_utc), 7);    // US East
  EXPECT_EQ(TimeZone{Hours(8)}.local_hour(noon_utc), 20);    // China
  EXPECT_EQ(TimeZone{Hours(5.5)}.local_hour(noon_utc), 17);  // India half-hour zone
}

TEST(TimeZoneTest, LocalHourFracAndMidnight) {
  const TimePoint t = MakeTime({2013, 4, 1}, 18, 30, 0);
  EXPECT_NEAR(TimeZone{Hours(0)}.local_hour_frac(t), 18.5, 1e-9);
  const TimePoint midnight = TimeZone{Hours(0)}.local_midnight(t);
  EXPECT_EQ(midnight, MakeTime({2013, 4, 1}));
  // In UTC+8 the same instant is already April 2.
  const TimePoint midnight_cn = TimeZone{Hours(8)}.local_midnight(t);
  EXPECT_EQ(midnight_cn, MakeTime({2013, 4, 1}, 16, 0, 0));
}

TEST(TimeZoneTest, WeekdayShiftsAcrossDateLine) {
  // 20:00 UTC Sunday is already Monday in Japan (UTC+9).
  const TimePoint t = MakeTime({2013, 4, 14}, 20, 0, 0);
  EXPECT_EQ(TimeZone{Hours(0)}.local_weekday(t), Weekday::kSunday);
  EXPECT_EQ(TimeZone{Hours(9)}.local_weekday(t), Weekday::kMonday);
}

TEST(FormatTest, RendersTimeAndDuration) {
  EXPECT_EQ(FormatTime(MakeTime({2012, 10, 1}, 9, 5, 0)), "2012-10-01 09:05");
  EXPECT_EQ(FormatMonthDay(MakeTime({2013, 4, 2})), "4-2");
  EXPECT_EQ(FormatDuration(Seconds(45)), "45s");
  EXPECT_EQ(FormatDuration(Minutes(10)), "10m 0s");
  EXPECT_EQ(FormatDuration(Hours(25)), "1d 1h");
}

TEST(TimePointTest, UtcDayFloorsNegative) {
  EXPECT_EQ(TimePoint{-1}.utc_day(), -1);
  EXPECT_EQ(TimePoint{0}.utc_day(), 0);
  EXPECT_EQ((MakeTime({1970, 1, 2}) - Millis(1)).utc_day(), 0);
}

}  // namespace
}  // namespace bismark
