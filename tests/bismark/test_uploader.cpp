// Uploader: deterministic retry/backoff scheduling, clean cancellation via
// EventHandle, and store-and-forward recovery across collector outages.
#include <gtest/gtest.h>

#include "bismark/uploader.h"
#include "sim/engine.h"

namespace bismark {
namespace {

using gateway::Uploader;
using gateway::UploadPolicy;
using gateway::UploadSpool;

/// Minimal sink counting committed rows (the repository stand-in).
class CountingSink final : public collect::RecordSink {
 public:
  void add_record(collect::Record) override { ++rows; }
  std::uint64_t rows{0};
};

collect::UptimeRecord Uptime(double at_hours) {
  return {collect::HomeId{7}, TimePoint{0} + Hours(at_hours), Hours(1)};
}

UploadPolicy FastPolicy() {
  UploadPolicy policy;
  policy.flush_period = Hours(1);
  policy.backoff_base = Minutes(1);
  policy.backoff_cap = Minutes(30);
  policy.jitter_frac = 0.0;  // exact timing for the scheduling tests
  return policy;
}

TEST(UploaderBackoff, ExactExponentialSequenceWithoutJitter) {
  UploadPolicy policy;
  policy.backoff_base = Minutes(1);
  policy.backoff_cap = Minutes(8);
  policy.jitter_frac = 0.0;
  Rng rng(1);

  const double expected_minutes[] = {1, 2, 4, 8, 8, 8};
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(Uploader::BackoffDelay(policy, attempt, rng).minutes(),
              expected_minutes[attempt - 1])
        << "attempt " << attempt;
  }
}

TEST(UploaderBackoff, JitterStaysInBoundsAndIsDeterministic) {
  UploadPolicy policy;
  policy.backoff_base = Minutes(2);
  policy.backoff_cap = Hours(4);
  policy.jitter_frac = 0.25;

  Rng a = Rng::Stream(99, 0xB10AD, 41);
  Rng b = Rng::Stream(99, 0xB10AD, 41);
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const Duration nominal =
        std::min(policy.backoff_base * (std::int64_t{1} << std::min(attempt - 1, 20)),
                 policy.backoff_cap);
    const Duration da = Uploader::BackoffDelay(policy, attempt, a);
    const Duration db = Uploader::BackoffDelay(policy, attempt, b);
    EXPECT_EQ(da, db) << "same stream must give the same jitter";
    EXPECT_GE(da.ms, static_cast<std::int64_t>(0.75 * static_cast<double>(nominal.ms)));
    EXPECT_LT(da.ms, static_cast<std::int64_t>(1.25 * static_cast<double>(nominal.ms)) + 1);
  }
}

TEST(Uploader, LostAckCommitsOnceAndResendsAreDeduped) {
  sim::Engine engine(TimePoint{0});
  UploadSpool spool(64);
  spool.add_uptime(Uptime(0.5));

  // Every ack is lost: the collector commits, the gateway keeps resending.
  net::FaultConfig faults;
  faults.ack_loss_prob = 1.0;
  const net::FaultPlan plan(faults, IntervalSet{});

  CountingSink sink;
  collect::IdempotentIngest ingest(sink);
  Uploader uploader(engine, spool, plan, ingest, collect::HomeId{7}, FastPolicy(),
                    Rng::Stream(1, 2, 3));
  uploader.start(Interval{TimePoint{0}, TimePoint{0} + Hours(12)});
  engine.run_until(TimePoint{0} + Hours(12));
  uploader.stop();

  EXPECT_EQ(sink.rows, 1u) << "exactly-once repository contents";
  EXPECT_EQ(ingest.stats().batches_committed, 1u);
  EXPECT_GT(ingest.stats().batches_deduped, 5u) << "resends kept arriving";
  EXPECT_EQ(uploader.stats().records_delivered, 1u);
  EXPECT_EQ(uploader.stats().duplicates_sent, ingest.stats().batches_deduped);
  EXPECT_EQ(uploader.stats().attempts,
            1 + ingest.stats().batches_deduped);
}

TEST(Uploader, CancelStopsAPendingRetryCleanly) {
  sim::Engine engine(TimePoint{0});
  UploadSpool spool(64);
  spool.add_uptime(Uptime(0.5));

  net::FaultConfig faults;
  faults.upload_loss_prob = 1.0;  // nothing ever gets through
  const net::FaultPlan plan(faults, IntervalSet{});

  CountingSink sink;
  collect::IdempotentIngest ingest(sink);
  Uploader uploader(engine, spool, plan, ingest, collect::HomeId{7}, FastPolicy(),
                    Rng::Stream(1, 2, 4));
  uploader.start(Interval{TimePoint{0}, TimePoint{0} + Days(2)});

  // Let the first flush fail and a backoff retry get armed.
  engine.run_until(TimePoint{0} + Hours(2));
  ASSERT_TRUE(uploader.retry_pending());
  const auto attempts_before = uploader.stats().attempts;
  ASSERT_GT(attempts_before, 0u);

  // stop() cancels both the flush schedule and the armed retry; running the
  // engine on must execute neither.
  uploader.stop();
  EXPECT_FALSE(uploader.retry_pending());
  engine.run_until(TimePoint{0} + Days(3));
  EXPECT_EQ(uploader.stats().attempts, attempts_before);
  EXPECT_EQ(sink.rows, 0u);
  EXPECT_EQ(uploader.in_flight_records(), 1u) << "batch still parked in the transmit buffer";
  EXPECT_EQ(uploader.stranded(), 1u);
}

TEST(Uploader, RecoversAllRecordsAfterCollectorOutage) {
  sim::Engine engine(TimePoint{0});
  UploadSpool spool(4096);
  // One record per hour across two days; the collector is dark for most of
  // the first (hours 2..30).
  for (int h = 0; h < 48; ++h) spool.add_uptime(Uptime(h + 0.25));
  IntervalSet outage;
  outage.add(TimePoint{0} + Hours(2), TimePoint{0} + Hours(30));
  const net::FaultPlan plan(net::FaultConfig{}, outage);

  CountingSink sink;
  collect::IdempotentIngest ingest(sink);
  Uploader uploader(engine, spool, plan, ingest, collect::HomeId{7}, FastPolicy(),
                    Rng::Stream(1, 2, 5));
  uploader.start(Interval{TimePoint{0}, TimePoint{0} + Hours(48)});

  // While the collector is down, nothing new lands.
  engine.run_until(TimePoint{0} + Hours(29));
  const auto committed_during_outage = ingest.stats().records_committed;
  EXPECT_LT(committed_during_outage, 4u) << "only pre-outage flushes may have landed";

  // After it returns, the backlog drains and the tail arrives on cadence.
  engine.run_until(TimePoint{0} + Hours(50));
  uploader.stop();
  EXPECT_EQ(ingest.stats().records_committed, 48u) << "no loss with spool headroom";
  EXPECT_EQ(sink.rows, 48u);
  EXPECT_EQ(spool.dropped().total, 0u);
  EXPECT_EQ(uploader.stranded(), 0u);
  EXPECT_GT(uploader.stats().retries, 0u) << "the outage was survived by retrying";
}

TEST(Uploader, UndersizedSpoolDropsExactlyTheExcessDuringOutage) {
  sim::Engine engine(TimePoint{0});
  constexpr std::size_t kCapacity = 10;
  UploadSpool spool(kCapacity);
  // 40 hourly records, collector down for the whole measurement span: the
  // live queue can only ever hold the newest 10.
  for (int h = 0; h < 40; ++h) spool.add_uptime(Uptime(h + 0.25));
  IntervalSet outage;
  outage.add(TimePoint{0}, TimePoint{0} + Hours(41));
  const net::FaultPlan plan(net::FaultConfig{}, outage);

  CountingSink sink;
  collect::IdempotentIngest ingest(sink);
  Uploader uploader(engine, spool, plan, ingest, collect::HomeId{7}, FastPolicy(),
                    Rng::Stream(1, 2, 6));
  uploader.start(Interval{TimePoint{0}, TimePoint{0} + Hours(40)});
  engine.run_until(TimePoint{0} + Hours(48));
  uploader.stop();

  // The first batch taken stays parked in flight through the outage while
  // later arrivals contend for the bounded queue; once the collector is
  // back (hour 41) the retry lands it and the surviving queue drains. The
  // drop ledger must account for the difference exactly.
  EXPECT_EQ(sink.rows + spool.dropped().total + uploader.stranded(), 40u)
      << "ledger + strands account for every record";
  EXPECT_EQ(sink.rows, ingest.stats().records_committed);
  EXPECT_GT(spool.dropped().total, 0u);
  EXPECT_EQ(uploader.stranded(), 0u) << "collector returned before the run ended";
  EXPECT_EQ(spool.dropped().by_kind[1], spool.dropped().total) << "all drops were uptime";
}

}  // namespace
}  // namespace bismark
