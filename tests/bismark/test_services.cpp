#include <gtest/gtest.h>

#include "bismark/services.h"
#include "core/stats.h"

namespace bismark::gateway {
namespace {

const TimePoint t0 = MakeTime({2013, 3, 6});

/// Census with fixed counts, optionally time-varying wireless.
class FakeCensus : public ClientCensus {
 public:
  int wired_connected(TimePoint) const override { return wired; }
  int wireless_connected(wireless::Band band, TimePoint t) const override {
    if (band == wireless::Band::k5GHz) return wireless5;
    if (evening_only) {
      const int hour = TimeZone{Hours(0)}.local_hour(t);
      return (hour >= 18 && hour <= 22) ? wireless24 : 0;
    }
    return wireless24;
  }
  int unique_seen_total(TimePoint, TimePoint) const override { return unique_total; }
  int unique_seen_band(wireless::Band band, TimePoint, TimePoint) const override {
    return band == wireless::Band::k2_4GHz ? unique24 : unique5;
  }

  int wired{1};
  int wireless24{3};
  int wireless5{1};
  int unique_total{7};
  int unique24{5};
  int unique5{2};
  bool evening_only{false};
};

class ServicesTest : public ::testing::Test {
 protected:
  ServicesTest() : repo_(MakeWindows()) {}

  static collect::DatasetWindows MakeWindows() {
    return collect::DatasetWindows::Compressed(t0, 2);  // 2-week study
  }

  IntervalSet FullWindow() {
    IntervalSet s;
    s.add(repo_.windows().heartbeats.start, repo_.windows().heartbeats.end);
    return s;
  }

  collect::DataRepository repo_;
  FakeCensus census_;
};

TEST_F(ServicesTest, UptimeReportsEveryTwelveHours) {
  IntervalSet on = FullWindow();
  ReportUptime(repo_, collect::HomeId{1}, on, repo_.windows().uptime);
  const auto window = repo_.windows().uptime;
  const auto expected = static_cast<std::size_t>((window.end - window.start).hours() / 12.0);
  EXPECT_EQ(repo_.uptime().size(), expected);
  // Uptime counts from the power-on (window start here), increasing.
  for (std::size_t i = 1; i < repo_.uptime().size(); ++i) {
    EXPECT_GT(repo_.uptime()[i].uptime.ms, repo_.uptime()[i - 1].uptime.ms);
  }
}

TEST_F(ServicesTest, UptimeResetsAfterPowerCycle) {
  // Two on-intervals: the counter must restart after the gap — this is
  // what lets the analysis tell powered-off from offline (Section 3.2.2).
  IntervalSet on;
  const auto w = repo_.windows().uptime;
  on.add(w.start, w.start + Days(3));
  on.add(w.start + Days(4), w.end);
  ReportUptime(repo_, collect::HomeId{1}, on, w);
  ASSERT_GT(repo_.uptime().size(), 8u);
  bool saw_reset = false;
  for (std::size_t i = 1; i < repo_.uptime().size(); ++i) {
    if (repo_.uptime()[i].uptime < repo_.uptime()[i - 1].uptime) saw_reset = true;
  }
  EXPECT_TRUE(saw_reset);
}

TEST_F(ServicesTest, UptimeSilentWhilePoweredOff) {
  IntervalSet on;  // never on
  ReportUptime(repo_, collect::HomeId{1}, on, repo_.windows().uptime);
  EXPECT_TRUE(repo_.uptime().empty());
}

TEST_F(ServicesTest, CapacityProbesOnlyWhileOnline) {
  net::AccessLink link(net::AccessLinkConfig{Mbps(16), Mbps(2)});
  IntervalSet online;
  const auto w = repo_.windows().capacity;
  online.add(w.start, w.start + Days(7));  // online for half the window
  ReportCapacity(repo_, collect::HomeId{1}, online, link, Rng(1), w);
  ASSERT_FALSE(repo_.capacity().empty());
  for (const auto& rec : repo_.capacity()) {
    EXPECT_LT(rec.measured, w.start + Days(7));
    EXPECT_NEAR(rec.downstream.mbps(), 16.0, 2.5);
    EXPECT_NEAR(rec.upstream.mbps(), 2.0, 0.4);
  }
}

TEST_F(ServicesTest, DeviceCountsHourlyWithUniqueTracking) {
  IntervalSet on = FullWindow();
  ReportDeviceCounts(repo_, collect::HomeId{1}, census_, on, repo_.windows().devices);
  ASSERT_FALSE(repo_.device_counts().empty());
  const auto& rec = repo_.device_counts().front();
  EXPECT_EQ(rec.wired, 1);
  EXPECT_EQ(rec.wireless_24, 3);
  EXPECT_EQ(rec.wireless_5, 1);
  EXPECT_EQ(rec.wireless_total(), 4);
  EXPECT_EQ(rec.total(), 5);
  EXPECT_EQ(rec.unique_total, 7);
  EXPECT_EQ(rec.unique_24, 5);
  EXPECT_EQ(rec.unique_5, 2);
  // Hourly cadence over the devices window.
  const auto w = repo_.windows().devices;
  const auto expected = static_cast<std::size_t>((w.end - w.start).hours());
  EXPECT_EQ(repo_.device_counts().size(), expected);
}

TEST_F(ServicesTest, DeviceCountsSkipPoweredOffHours) {
  IntervalSet on;
  const auto w = repo_.windows().devices;
  on.add(w.start, w.start + Days(1));
  ReportDeviceCounts(repo_, collect::HomeId{1}, census_, on, w);
  EXPECT_EQ(repo_.device_counts().size(), 24u);
}

TEST_F(ServicesTest, WifiScansBothBands) {
  wireless::NeighborhoodProfile profile;
  profile.dense_prob = 1.0;
  profile.dense_mean_24 = 10;
  profile.dense_mean_5 = 2;
  const auto hood = wireless::Neighborhood::Generate(profile, Rng(3));
  IntervalSet on = FullWindow();
  ReportWifiScans(repo_, collect::HomeId{1}, census_, hood, on, repo_.windows().wifi, Rng(4));
  int scans24 = 0, scans5 = 0;
  for (const auto& scan : repo_.wifi_scans()) {
    if (scan.band == wireless::Band::k2_4GHz) {
      ++scans24;
      EXPECT_EQ(scan.channel, 11);
    } else {
      ++scans5;
      EXPECT_EQ(scan.channel, 36);
    }
    EXPECT_GE(scan.visible_aps, 0);
  }
  EXPECT_GT(scans24, 100);
  EXPECT_GT(scans5, 100);
}

TEST_F(ServicesTest, WifiScanBackoffWithClients) {
  // With clients associated, scans run 3x less often (Section 3.2.2).
  wireless::NeighborhoodProfile profile;
  const auto hood = wireless::Neighborhood::Generate(profile, Rng(3));
  IntervalSet on = FullWindow();

  FakeCensus busy;
  busy.wireless24 = 4;
  collect::DataRepository busy_repo(MakeWindows());
  ReportWifiScans(busy_repo, collect::HomeId{1}, busy, hood, on, busy_repo.windows().wifi,
                  Rng(4));

  FakeCensus idle;
  idle.wireless24 = 0;
  idle.wireless5 = 0;
  collect::DataRepository idle_repo(MakeWindows());
  ReportWifiScans(idle_repo, collect::HomeId{1}, idle, hood, on, idle_repo.windows().wifi,
                  Rng(4));

  int busy24 = 0, idle24 = 0;
  for (const auto& s : busy_repo.wifi_scans()) busy24 += s.band == wireless::Band::k2_4GHz;
  for (const auto& s : idle_repo.wifi_scans()) idle24 += s.band == wireless::Band::k2_4GHz;
  EXPECT_NEAR(static_cast<double>(idle24) / busy24, 3.0, 0.3);
}

TEST_F(ServicesTest, WifiScanDetectionProbabilityThinsAps) {
  wireless::NeighborhoodProfile profile;
  profile.dense_prob = 1.0;
  profile.dense_mean_24 = 30;
  profile.popular_channel_frac = 1.0;
  const auto hood = wireless::Neighborhood::Generate(profile, Rng(5));
  const auto full = hood.audible_on(wireless::Band::k2_4GHz, 11);
  IntervalSet on = FullWindow();

  WifiServiceConfig cfg;
  cfg.detection_prob = 0.5;
  ReportWifiScans(repo_, collect::HomeId{1}, census_, hood, on, repo_.windows().wifi, Rng(6),
                  cfg);
  RunningStats seen;
  for (const auto& scan : repo_.wifi_scans()) {
    if (scan.band == wireless::Band::k2_4GHz) seen.add(scan.visible_aps);
  }
  EXPECT_NEAR(seen.mean(), full.size() * 0.5, full.size() * 0.1);
}


TEST_F(ServicesTest, WifiScanRespectsConfiguredChannel) {
  // A user who moved the radio to channel 1 hears channel-1 neighbours,
  // not channel-11 ones (Section 3.2.2: the channel is configurable).
  wireless::NeighborhoodProfile profile;
  profile.dense_prob = 1.0;
  profile.dense_mean_24 = 30;
  profile.popular_channel_frac = 1.0;  // neighbours all on 1/6/11
  const auto hood = wireless::Neighborhood::Generate(profile, Rng(8));
  IntervalSet on = FullWindow();

  WifiServiceConfig cfg;
  cfg.detection_prob = 1.0;
  cfg.channel_24 = 1;
  ReportWifiScans(repo_, collect::HomeId{1}, census_, hood, on, repo_.windows().wifi, Rng(9),
                  cfg);
  const auto expect = hood.audible_on(wireless::Band::k2_4GHz, 1).size();
  bool found = false;
  for (const auto& scan : repo_.wifi_scans()) {
    if (scan.band != wireless::Band::k2_4GHz) continue;
    EXPECT_EQ(scan.channel, 1);
    EXPECT_EQ(scan.visible_aps, static_cast<int>(expect));
    found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace bismark::gateway
