#include <gtest/gtest.h>

#include "bismark/anonymize.h"

namespace bismark::gateway {
namespace {

class AnonymizerTest : public ::testing::Test {
 protected:
  traffic::DomainCatalog catalog_ = traffic::DomainCatalog::BuildStandard();
  Anonymizer anonymizer_{catalog_, AnonymizerConfig{1234, "anon-"}};
};

TEST_F(AnonymizerTest, WhitelistSeededFromCatalog) {
  EXPECT_EQ(anonymizer_.whitelist_size(), catalog_.whitelist_size());
  EXPECT_TRUE(anonymizer_.is_whitelisted("google.com"));
  EXPECT_FALSE(anonymizer_.is_whitelisted("tail-site-0001.net"));
}

TEST_F(AnonymizerTest, WhitelistedDomainsPassThrough) {
  EXPECT_EQ(anonymizer_.anonymize_domain("google.com"), "google.com");
  EXPECT_EQ(anonymizer_.anonymize_domain("netflix.com"), "netflix.com");
}

TEST_F(AnonymizerTest, UnlistedDomainsObfuscated) {
  const std::string token = anonymizer_.anonymize_domain("secret-site.net");
  EXPECT_NE(token, "secret-site.net");
  EXPECT_TRUE(Anonymizer::IsAnonToken(token));
  EXPECT_EQ(token.rfind("anon-", 0), 0u);
}

TEST_F(AnonymizerTest, ObfuscationDeterministicPerDomain) {
  // Per-domain aggregation must still work on anonymised data, so the same
  // domain always maps to the same token.
  EXPECT_EQ(anonymizer_.anonymize_domain("a.net"), anonymizer_.anonymize_domain("a.net"));
  EXPECT_NE(anonymizer_.anonymize_domain("a.net"), anonymizer_.anonymize_domain("b.net"));
}

TEST_F(AnonymizerTest, DifferentKeysDifferentTokens) {
  Anonymizer other(catalog_, AnonymizerConfig{9999, "anon-"});
  EXPECT_NE(anonymizer_.anonymize_domain("a.net"), other.anonymize_domain("a.net"));
}

TEST_F(AnonymizerTest, UserWhitelistEdits) {
  // Section 3.2.2: users can add domains via the router's Web interface;
  // the paper also removes pornographic domains from the default list.
  anonymizer_.whitelist_add("my-favorite-site.org");
  EXPECT_EQ(anonymizer_.anonymize_domain("my-favorite-site.org"), "my-favorite-site.org");
  anonymizer_.whitelist_remove("google.com");
  EXPECT_TRUE(Anonymizer::IsAnonToken(anonymizer_.anonymize_domain("google.com")));
}

TEST_F(AnonymizerTest, MacAnonymizationPreservesOui) {
  const auto mac = net::MacAddress::FromParts(0x001EC2, 0x123456);
  const auto anon = anonymizer_.anonymize_mac(mac);
  EXPECT_EQ(anon.oui(), mac.oui());
  EXPECT_NE(anon.nic(), mac.nic());
  EXPECT_EQ(anonymizer_.anonymize_mac(mac), anon);  // stable
}

TEST_F(AnonymizerTest, IsAnonTokenDetection) {
  EXPECT_TRUE(Anonymizer::IsAnonToken("anon-0123456789abcdef"));
  EXPECT_FALSE(Anonymizer::IsAnonToken("google.com"));
  EXPECT_FALSE(Anonymizer::IsAnonToken("not-anon-thing"));
}

}  // namespace
}  // namespace bismark::gateway
