// UploadSpool: time-aware arrival replay, bounded drop-oldest overflow,
// and an exact drop ledger.
#include <gtest/gtest.h>

#include "bismark/uploader.h"

namespace bismark {
namespace {

using collect::Record;
using gateway::UploadSpool;

// Variant alternative indices in collect::Record (ledger keys).
constexpr std::size_t kUptimeKind = 1;
constexpr std::size_t kCapacityKind = 2;

collect::UptimeRecord Uptime(int home, double at_hours) {
  return {collect::HomeId{home}, TimePoint{0} + Hours(at_hours), Hours(1)};
}

collect::CapacityRecord Capacity(int home, double at_hours) {
  collect::CapacityRecord rec;
  rec.home = collect::HomeId{home};
  rec.measured = TimePoint{0} + Hours(at_hours);
  return rec;
}

TEST(UploadSpool, SealImposesGlobalArrivalOrder) {
  UploadSpool spool(16);
  // Producers append service-by-service: capacity first, then uptime —
  // but the uptime record was measured earlier.
  spool.add_capacity(Capacity(1, 5.0));
  spool.add_uptime(Uptime(1, 1.0));
  spool.add_uptime(Uptime(1, 3.0));
  spool.seal();
  spool.arrive_until(TimePoint{0} + Hours(10));

  const auto records = spool.take(10);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(collect::RecordTime(records[0]), TimePoint{0} + Hours(1));
  EXPECT_EQ(collect::RecordTime(records[1]), TimePoint{0} + Hours(3));
  EXPECT_EQ(collect::RecordTime(records[2]), TimePoint{0} + Hours(5));
}

TEST(UploadSpool, ArrivalsAreGatedByTimestamp) {
  UploadSpool spool(16);
  for (int h = 1; h <= 5; ++h) spool.add_uptime(Uptime(1, h));
  spool.seal();

  spool.arrive_until(TimePoint{0} + Hours(3));
  EXPECT_EQ(spool.queued(), 3u);
  EXPECT_EQ(spool.staged_remaining(), 2u);

  spool.arrive_until(TimePoint{0} + Hours(5));
  EXPECT_EQ(spool.queued(), 5u);
  EXPECT_EQ(spool.staged_remaining(), 0u);
  EXPECT_EQ(spool.accepted(), 5u);
}

TEST(UploadSpool, DropOldestKeepsLedgerExact) {
  UploadSpool spool(3);
  for (int h = 1; h <= 5; ++h) spool.add_uptime(Uptime(1, h));
  spool.seal();
  spool.arrive_until(TimePoint{0} + Hours(5));

  EXPECT_EQ(spool.queued(), 3u);
  EXPECT_EQ(spool.dropped().total, 2u);
  EXPECT_EQ(spool.dropped().by_kind[kUptimeKind], 2u);

  // The two *oldest* records were sacrificed: hours 1 and 2 are gone.
  const auto records = spool.take(10);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(collect::RecordTime(records[0]), TimePoint{0} + Hours(3));
  EXPECT_EQ(collect::RecordTime(records[2]), TimePoint{0} + Hours(5));
}

TEST(UploadSpool, LedgerCountsPerRecordKind) {
  UploadSpool spool(2);
  spool.add_uptime(Uptime(1, 1.0));
  spool.add_capacity(Capacity(1, 2.0));
  spool.add_uptime(Uptime(1, 3.0));
  spool.add_uptime(Uptime(1, 4.0));
  spool.seal();
  spool.arrive_until(TimePoint{0} + Hours(4));

  EXPECT_EQ(spool.dropped().total, 2u);
  EXPECT_EQ(spool.dropped().by_kind[kUptimeKind], 1u);
  EXPECT_EQ(spool.dropped().by_kind[kCapacityKind], 1u);
  EXPECT_STREQ(collect::RecordKindName(kUptimeKind), "uptime");
  EXPECT_STREQ(collect::RecordKindName(kCapacityKind), "capacity");
}

TEST(UploadSpool, TakeRespectsBatchLimit) {
  UploadSpool spool(16);
  for (int h = 1; h <= 5; ++h) spool.add_uptime(Uptime(1, h));
  spool.seal();
  spool.arrive_until(TimePoint{0} + Hours(5));

  EXPECT_EQ(spool.take(2).size(), 2u);
  EXPECT_EQ(spool.queued(), 3u);
  EXPECT_EQ(spool.take(10).size(), 3u);
  EXPECT_EQ(spool.queued(), 0u);
  EXPECT_TRUE(spool.take(10).empty());
}

}  // namespace
}  // namespace bismark
