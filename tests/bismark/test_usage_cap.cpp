#include <gtest/gtest.h>

#include "bismark/usage_cap.h"

namespace bismark::gateway {
namespace {

const TimePoint kApr5 = MakeTime({2013, 4, 5});
net::MacAddress Mac(std::uint32_t nic) { return net::MacAddress::FromParts(0x001EC2, nic); }

UsageCapConfig SmallCap() {
  UsageCapConfig cfg;
  cfg.household_cap = GB(10);
  cfg.alert_fractions = {0.5, 0.8, 0.95};
  cfg.reset_day = 1;
  return cfg;
}

TEST(UsageCapTest, AccumulatesPerDeviceAndHousehold) {
  UsageCapManager caps(SmallCap());
  caps.record(Mac(1), GB(2), kApr5);
  caps.record(Mac(2), GB(1), kApr5);
  caps.record(Mac(1), GB(1), kApr5);
  EXPECT_EQ(caps.household_used(), GB(4));
  EXPECT_EQ(caps.device_used(Mac(1)), GB(3));
  EXPECT_EQ(caps.device_used(Mac(2)), GB(1));
  EXPECT_EQ(caps.device_used(Mac(9)), Bytes{0});
  EXPECT_NEAR(caps.household_fraction(), 0.4, 1e-9);
}

TEST(UsageCapTest, HouseholdThresholdAlertsFireOnceEachInOrder) {
  UsageCapManager caps(SmallCap());
  caps.record(Mac(1), GB(4.9), kApr5);
  EXPECT_TRUE(caps.alerts().empty());
  caps.record(Mac(1), GB(0.2), kApr5);  // crosses 50 %
  ASSERT_EQ(caps.alerts().size(), 1u);
  EXPECT_EQ(caps.alerts()[0].kind, CapAlertKind::kHouseholdThreshold);
  EXPECT_NEAR(caps.alerts()[0].fraction, 0.51, 0.01);
  // A large jump crosses 80 % and 95 % at once: both fire, once each.
  caps.record(Mac(1), GB(4.5), kApr5);
  EXPECT_EQ(caps.alerts().size(), 3u);
  // No re-firing on further traffic below the cap.
  caps.record(Mac(1), GB(0.1), kApr5);
  EXPECT_EQ(caps.alerts().size(), 3u);
}

TEST(UsageCapTest, HouseholdExceededFiresOnce) {
  UsageCapManager caps(SmallCap());
  caps.record(Mac(1), GB(11), kApr5);
  // 50/80/95 thresholds + exceeded.
  ASSERT_EQ(caps.alerts().size(), 4u);
  EXPECT_EQ(caps.alerts()[3].kind, CapAlertKind::kHouseholdExceeded);
  caps.record(Mac(1), GB(1), kApr5);
  EXPECT_EQ(caps.alerts().size(), 4u);
}

TEST(UsageCapTest, DeviceQuotaAlerts) {
  UsageCapManager caps(SmallCap());
  caps.set_device_quota(Mac(1), GB(1));
  caps.record(Mac(1), MB(600), kApr5);  // 60 % of quota -> one device alert
  ASSERT_EQ(caps.alerts().size(), 1u);
  EXPECT_EQ(caps.alerts()[0].kind, CapAlertKind::kDeviceThreshold);
  EXPECT_EQ(caps.alerts()[0].device, Mac(1));
  caps.record(Mac(1), MB(500), kApr5);  // 1.1 GB: 80 %, 95 %, exceeded
  EXPECT_EQ(caps.alerts().size(), 4u);
  EXPECT_EQ(caps.alerts().back().kind, CapAlertKind::kDeviceExceeded);
  EXPECT_TRUE(caps.device_quota(Mac(1)).has_value());
  EXPECT_FALSE(caps.device_quota(Mac(2)).has_value());
}

TEST(UsageCapTest, MonthlyRolloverResetsCounters) {
  UsageCapManager caps(SmallCap());
  caps.record(Mac(1), GB(9), kApr5);
  const std::size_t april_alerts = caps.alerts().size();
  EXPECT_GT(april_alerts, 0u);
  // May traffic starts a fresh period.
  caps.record(Mac(1), GB(1), MakeTime({2013, 5, 2}));
  EXPECT_EQ(caps.household_used(), GB(1));
  EXPECT_EQ(caps.device_used(Mac(1)), GB(1));
  EXPECT_EQ(caps.alerts().size(), april_alerts);  // thresholds re-armed, not refired
  caps.record(Mac(1), GB(5), MakeTime({2013, 5, 3}));
  EXPECT_GT(caps.alerts().size(), april_alerts);  // 50 % fires again in May
}

TEST(UsageCapTest, PeriodStartRespectsResetDay) {
  UsageCapConfig cfg = SmallCap();
  cfg.reset_day = 15;
  UsageCapManager caps(cfg);
  EXPECT_EQ(caps.period_start(MakeTime({2013, 4, 20})), MakeTime({2013, 4, 15}));
  EXPECT_EQ(caps.period_start(MakeTime({2013, 4, 10})), MakeTime({2013, 3, 15}));
  // January wraps to December of the prior year.
  EXPECT_EQ(caps.period_start(MakeTime({2013, 1, 3})), MakeTime({2012, 12, 15}));
}

TEST(UsageCapTest, DaysUntilReset) {
  UsageCapManager caps(SmallCap());
  EXPECT_NEAR(caps.days_until_reset(MakeTime({2013, 4, 30})), 1.0, 1e-9);
  EXPECT_NEAR(caps.days_until_reset(MakeTime({2013, 4, 1})), 30.0, 1e-9);
}

TEST(UsageCapTest, ThrottlingOnlyWhenEnforcing) {
  UsageCapConfig cfg = SmallCap();
  cfg.enforce = false;
  UsageCapManager lax(cfg);
  lax.set_device_quota(Mac(1), GB(1));
  lax.record(Mac(1), GB(2), kApr5);
  EXPECT_FALSE(lax.throttle_for(Mac(1)).has_value());

  cfg.enforce = true;
  cfg.throttle_rate = Kbps(128);
  UsageCapManager strict(cfg);
  strict.set_device_quota(Mac(1), GB(1));
  strict.record(Mac(1), GB(2), kApr5);
  const auto throttle = strict.throttle_for(Mac(1));
  ASSERT_TRUE(throttle.has_value());
  EXPECT_DOUBLE_EQ(throttle->kbps(), 128.0);
  // A device under quota is unthrottled until the household cap blows.
  strict.record(Mac(2), GB(1), kApr5);
  EXPECT_FALSE(strict.throttle_for(Mac(2)).has_value());
  strict.record(Mac(2), GB(9), kApr5);  // household now over 10 GB
  EXPECT_TRUE(strict.throttle_for(Mac(2)).has_value());
}

TEST(UsageCapTest, UsageTableSortedDescending) {
  UsageCapManager caps(SmallCap());
  caps.set_device_quota(Mac(2), MB(100));
  caps.record(Mac(1), GB(1), kApr5);
  caps.record(Mac(2), MB(200), kApr5);
  caps.record(Mac(3), MB(50), kApr5);
  const auto table = caps.usage_table();
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table[0].device, Mac(1));
  EXPECT_FALSE(table[0].quota.has_value());
  EXPECT_EQ(table[1].device, Mac(2));
  EXPECT_TRUE(table[1].over_quota);
  EXPECT_EQ(table[2].device, Mac(3));
}

TEST(UsageCapTest, UncappedHouseholdNeverAlerts) {
  UsageCapConfig cfg = SmallCap();
  cfg.household_cap = Bytes{0};
  UsageCapManager caps(cfg);
  caps.record(Mac(1), GB(500), kApr5);
  EXPECT_TRUE(caps.alerts().empty());
  EXPECT_DOUBLE_EQ(caps.household_fraction(), 0.0);
}

TEST(UsageCapTest, AlertCallbackInvoked) {
  int fired = 0;
  UsageCapManager caps(SmallCap(), [&](const CapAlert&) { ++fired; });
  caps.record(Mac(1), GB(6), kApr5);
  EXPECT_EQ(fired, 1);
}

TEST(UsageCapTest, ResetDayClamped) {
  UsageCapConfig cfg = SmallCap();
  cfg.reset_day = 31;  // not valid for all months; clamps to 28
  UsageCapManager caps(cfg);
  EXPECT_EQ(caps.config().reset_day, 28);
}

}  // namespace
}  // namespace bismark::gateway
