#include <gtest/gtest.h>

#include "bismark/gateway.h"
#include "collect/repository.h"

namespace bismark::gateway {
namespace {

const TimePoint t0 = MakeTime({2013, 4, 1});

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest()
      : catalog_(traffic::DomainCatalog::BuildStandard()),
        anonymizer_(catalog_, {}),
        windows_(collect::DatasetWindows::Paper()),
        repo_(windows_),
        link_(net::AccessLinkConfig{Mbps(20), Mbps(4), KB(256), 0.02, false, 0.35}) {}

  Gateway MakeGateway(ConsentLevel consent) {
    GatewayConfig cfg;
    cfg.home = collect::HomeId{1};
    cfg.consent = consent;
    return Gateway(cfg, link_, anonymizer_, &repo_);
  }

  traffic::FlowOpen MakeOpen(std::uint64_t id, const std::string& domain) {
    traffic::FlowOpen open;
    open.id = net::FlowId{id};
    open.lan_tuple = {net::Ipv4Address(192, 168, 1, 10), net::Ipv4Address(1, 2, 3, 4),
                      static_cast<std::uint16_t>(30000 + id), 443, net::Protocol::kTcp};
    open.device_mac = net::MacAddress::FromParts(0x001EC2, 42);
    open.domain = domain;
    open.opened = t0;
    return open;
  }

  net::FlowRecord MakeRecord(std::uint64_t id, const std::string& domain, Bytes down) {
    net::FlowRecord record;
    record.id = net::FlowId{id};
    record.tuple = {net::Ipv4Address(192, 168, 1, 10), net::Ipv4Address(1, 2, 3, 4), 30000, 443,
                    net::Protocol::kTcp};
    record.device_mac = net::MacAddress::FromParts(0x001EC2, 42);
    record.first_packet = t0;
    record.last_packet = t0 + Minutes(1);
    record.bytes_down = down;
    record.bytes_up = KB(10);
    record.packets_down = 100;
    record.packets_up = 10;
    record.domain = domain;
    return record;
  }

  traffic::DomainCatalog catalog_;
  Anonymizer anonymizer_;
  collect::DatasetWindows windows_;
  collect::DataRepository repo_;
  net::AccessLink link_;
};

TEST_F(GatewayTest, FlowOpenCreatesNatMapping) {
  Gateway gw = MakeGateway(ConsentLevel::kFullTraffic);
  gw.on_flow_open(MakeOpen(1, "google.com"));
  EXPECT_EQ(gw.nat().active_mappings(), 1u);
  EXPECT_EQ(gw.nat().stats().translations_out, 1u);
}

TEST_F(GatewayTest, FlowCloseStoresAnonymizedRecord) {
  Gateway gw = MakeGateway(ConsentLevel::kFullTraffic);
  gw.on_flow_open(MakeOpen(1, "secret-site.net"));
  gw.on_flow_close(MakeRecord(1, "secret-site.net", MB(5)));
  ASSERT_EQ(repo_.flows().size(), 1u);
  const auto& rec = repo_.flows()[0];
  EXPECT_TRUE(rec.domain_anonymized);
  EXPECT_TRUE(Anonymizer::IsAnonToken(rec.domain));
  // MAC anonymised but OUI kept.
  EXPECT_EQ(rec.device_mac.oui(), 0x001EC2u);
  EXPECT_NE(rec.device_mac.nic(), 42u);
}

TEST_F(GatewayTest, WhitelistedDomainNotAnonymized) {
  Gateway gw = MakeGateway(ConsentLevel::kFullTraffic);
  gw.on_flow_close(MakeRecord(1, "netflix.com", MB(100)));
  ASSERT_EQ(repo_.flows().size(), 1u);
  EXPECT_EQ(repo_.flows()[0].domain, "netflix.com");
  EXPECT_FALSE(repo_.flows()[0].domain_anonymized);
}

TEST_F(GatewayTest, BasicConsentSuppressesTrafficRecords) {
  // Section 3.2: homes without written consent contribute no Traffic data.
  Gateway gw = MakeGateway(ConsentLevel::kBasic);
  gw.on_flow_open(MakeOpen(1, "google.com"));
  gw.on_flow_close(MakeRecord(1, "google.com", MB(5)));
  net::DnsResponse response;
  response.query = "google.com";
  gw.on_dns(response, net::MacAddress::FromParts(0x001EC2, 42), t0);
  EXPECT_TRUE(repo_.flows().empty());
  EXPECT_TRUE(repo_.dns().empty());
  EXPECT_TRUE(repo_.throughput().empty());
}

TEST_F(GatewayTest, DnsRecordsCountTypes) {
  Gateway gw = MakeGateway(ConsentLevel::kFullTraffic);
  net::DnsResponse response;
  response.query = "netflix.com";
  response.records.push_back(
      {net::DnsRecordType::kCname, "netflix.com", "edge-netflix.com", {}, Minutes(5)});
  response.records.push_back({net::DnsRecordType::kA, "edge-netflix.com", "",
                              net::Ipv4Address(1, 1, 1, 1), Minutes(1)});
  gw.on_dns(response, net::MacAddress::FromParts(0x001EC2, 42), t0);
  ASSERT_EQ(repo_.dns().size(), 1u);
  EXPECT_EQ(repo_.dns()[0].a_records, 1);
  EXPECT_EQ(repo_.dns()[0].cname_records, 1);
  EXPECT_EQ(repo_.dns()[0].query, "netflix.com");
  EXPECT_FALSE(repo_.dns()[0].anonymized);
}

TEST_F(GatewayTest, MeterRecordsClampedAtCapacity) {
  Gateway gw = MakeGateway(ConsentLevel::kFullTraffic);
  // Pump 40 Mbps of demand into the 20 Mbps downlink for a minute: the
  // metered per-second peak must cap at the shaped rate.
  gw.add_rate(net::Direction::kDownstream, 40e6, t0);
  gw.remove_rate(net::Direction::kDownstream, 40e6, t0 + Minutes(1));
  gw.finalize(t0 + Minutes(2));
  ASSERT_GE(repo_.throughput().size(), 1u);
  EXPECT_NEAR(repo_.throughput()[0].peak_down_bps, 20e6, 1e5);
}

TEST_F(GatewayTest, UpstreamClampedAtCapacityWithoutOverdrive) {
  Gateway gw = MakeGateway(ConsentLevel::kFullTraffic);
  gw.add_rate(net::Direction::kUpstream, 10e6, t0);
  gw.remove_rate(net::Direction::kUpstream, 10e6, t0 + Minutes(1));
  gw.finalize(t0 + Minutes(2));
  ASSERT_GE(repo_.throughput().size(), 1u);
  EXPECT_NEAR(repo_.throughput()[0].peak_up_bps, 4e6, 1e5);
}

TEST_F(GatewayTest, OverdriveLinkMetersAboveCapacity) {
  // The bufferbloat signature: gateway-side uplink throughput beyond the
  // shaped rate (Figs 15/16).
  net::AccessLinkConfig cfg{Mbps(20), Mbps(4), KB(512), 0.02, true, 0.35};
  net::AccessLink bloated(cfg);
  GatewayConfig gw_cfg;
  gw_cfg.home = collect::HomeId{2};
  gw_cfg.consent = ConsentLevel::kFullTraffic;
  Gateway gw(gw_cfg, bloated, anonymizer_, &repo_);
  gw.add_rate(net::Direction::kUpstream, 10e6, t0);
  gw.remove_rate(net::Direction::kUpstream, 10e6, t0 + Minutes(1));
  gw.finalize(t0 + Minutes(2));
  ASSERT_GE(repo_.throughput().size(), 1u);
  EXPECT_NEAR(repo_.throughput()[0].peak_up_bps, 4e6 * 1.35, 2e5);
}

TEST_F(GatewayTest, DeviceUsageAccumulatesAcrossConsentLevels) {
  // Aggregate per-device accounting is PII-free and runs regardless.
  Gateway gw = MakeGateway(ConsentLevel::kBasic);
  gw.on_flow_close(MakeRecord(1, "google.com", MB(5)));
  gw.on_flow_close(MakeRecord(2, "netflix.com", MB(10)));
  ASSERT_EQ(gw.device_usage().size(), 1u);
  const auto& usage = gw.device_usage().begin()->second;
  EXPECT_EQ(usage.flows, 2u);
  EXPECT_NEAR(usage.bytes_total.mb(), 15.02, 0.1);
}

TEST_F(GatewayTest, FinalizeExportsDeviceTraffic) {
  Gateway gw = MakeGateway(ConsentLevel::kFullTraffic);
  gw.on_flow_close(MakeRecord(1, "google.com", MB(5)));
  gw.finalize(t0 + Hours(1));
  ASSERT_EQ(repo_.device_traffic().size(), 1u);
  EXPECT_EQ(repo_.device_traffic()[0].vendor, net::VendorClass::kApple);
  EXPECT_NE(repo_.device_traffic()[0].device_mac.nic(), 42u);  // anonymised
}

TEST_F(GatewayTest, ChunksKeepNatMappingWarm) {
  GatewayConfig cfg;
  cfg.home = collect::HomeId{1};
  cfg.consent = ConsentLevel::kFullTraffic;
  cfg.nat.tcp_idle_timeout = Minutes(30);
  cfg.nat_gc_interval = Minutes(10);
  Gateway gw(cfg, link_, anonymizer_, &repo_);

  gw.on_flow_open(MakeOpen(1, "netflix.com"));
  // Stream chunks every 5 minutes for 2 hours, then open another flow to
  // trigger GC; the long-lived mapping must survive.
  for (int i = 1; i <= 24; ++i) {
    traffic::FlowChunk chunk;
    chunk.id = net::FlowId{1};
    chunk.start = t0 + Minutes(5 * i);
    chunk.duration = Seconds(8);
    chunk.bytes_down = MB(10);
    gw.on_chunk(chunk);
  }
  gw.on_flow_open(MakeOpen(2, "google.com"));  // triggers GC at +2h
  EXPECT_EQ(gw.nat().active_mappings(), 2u);
}

TEST_F(GatewayTest, RadioAccessorsByBand) {
  Gateway gw = MakeGateway(ConsentLevel::kBasic);
  EXPECT_EQ(gw.radio(wireless::Band::k2_4GHz).config().channel, 11);
  EXPECT_EQ(gw.radio(wireless::Band::k5GHz).config().channel, 36);
  EXPECT_EQ(gw.ethernet().port_count(), 4);
  EXPECT_EQ(gw.dhcp().gateway(), net::Ipv4Address(192, 168, 1, 1));
}


TEST_F(GatewayTest, AttachedUsageCapsChargedOnFlowClose) {
  Gateway gw = MakeGateway(ConsentLevel::kBasic);
  UsageCapConfig cap_cfg;
  cap_cfg.household_cap = MB(10);
  UsageCapManager caps(cap_cfg);
  gw.attach_usage_caps(&caps);
  EXPECT_EQ(gw.usage_caps(), &caps);

  gw.on_flow_close(MakeRecord(1, "google.com", MB(5)));
  gw.on_flow_close(MakeRecord(2, "netflix.com", MB(7)));
  EXPECT_GT(caps.household_used().mb(), 12.0);
  // 12 MB against a 10 MB cap: thresholds + exceeded fired.
  EXPECT_GE(caps.alerts().size(), 4u);
  EXPECT_EQ(caps.alerts().back().kind, CapAlertKind::kHouseholdExceeded);
}

}  // namespace
}  // namespace bismark::gateway
