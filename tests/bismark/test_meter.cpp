#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bismark/meter.h"
#include "core/rng.h"

namespace bismark::gateway {
namespace {

const TimePoint t0 = MakeTime({2013, 4, 1});  // minute-aligned

class MeterTest : public ::testing::Test {
 protected:
  MeterTest()
      : meter_(collect::HomeId{1},
               [this](const collect::ThroughputMinute& m) { minutes_.push_back(m); }) {}
  ThroughputMeter meter_;
  std::vector<collect::ThroughputMinute> minutes_;
};

TEST_F(MeterTest, ConstantRateIntegratesBytes) {
  meter_.add_rate(net::Direction::kDownstream, 8e6, t0);  // 8 Mbps = 1 MB/s
  meter_.remove_rate(net::Direction::kDownstream, 8e6, t0 + Minutes(1));
  meter_.advance_to(t0 + Minutes(2));
  ASSERT_EQ(minutes_.size(), 1u);
  EXPECT_NEAR(minutes_[0].bytes_down.mb(), 60.0, 0.5);
  EXPECT_NEAR(minutes_[0].peak_down_bps, 8e6, 1e4);
  EXPECT_EQ(minutes_[0].minute_start, t0);
}

TEST_F(MeterTest, SilentMinutesNotEmitted) {
  meter_.add_rate(net::Direction::kUpstream, 1e6, t0);
  meter_.remove_rate(net::Direction::kUpstream, 1e6, t0 + Seconds(30));
  meter_.advance_to(t0 + Minutes(30));
  // Only the single active minute appears despite the long advance.
  ASSERT_EQ(minutes_.size(), 1u);
  EXPECT_GT(minutes_[0].bytes_up.count, 0);
}

TEST_F(MeterTest, PeakIsMaxPerSecondThroughputNotInstantaneousRate) {
  // A 100 ms burst at 80 Mbps moves 1 MB; smeared over its second that is
  // 8 Mbps — the paper's "maximum per-second throughput" (Section 6.2).
  meter_.add_rate(net::Direction::kDownstream, 80e6, t0);
  meter_.remove_rate(net::Direction::kDownstream, 80e6, t0 + Millis(100));
  meter_.advance_to(t0 + Minutes(1));
  ASSERT_EQ(minutes_.size(), 1u);
  EXPECT_NEAR(minutes_[0].peak_down_bps, 8e6, 1e5);
}

TEST_F(MeterTest, OverlappingRatesSum) {
  meter_.add_rate(net::Direction::kDownstream, 2e6, t0);
  meter_.add_rate(net::Direction::kDownstream, 3e6, t0 + Seconds(10));
  meter_.remove_rate(net::Direction::kDownstream, 2e6, t0 + Seconds(20));
  meter_.remove_rate(net::Direction::kDownstream, 3e6, t0 + Seconds(30));
  meter_.advance_to(t0 + Minutes(1));
  ASSERT_EQ(minutes_.size(), 1u);
  EXPECT_NEAR(minutes_[0].peak_down_bps, 5e6, 1e4);
  // 2 Mbps x 20 s + 3 Mbps x 20 s = 100 Mbit = 12.5 MB.
  EXPECT_NEAR(minutes_[0].bytes_down.mb(), 12.5, 0.2);
}

TEST_F(MeterTest, MinuteBoundariesSplitCorrectly) {
  meter_.add_rate(net::Direction::kUpstream, 8e6, t0 + Seconds(30));
  meter_.remove_rate(net::Direction::kUpstream, 8e6, t0 + Seconds(90));
  meter_.advance_to(t0 + Minutes(3));
  ASSERT_EQ(minutes_.size(), 2u);
  EXPECT_NEAR(minutes_[0].bytes_up.mb(), 30.0, 0.5);
  EXPECT_NEAR(minutes_[1].bytes_up.mb(), 30.0, 0.5);
  EXPECT_EQ(minutes_[1].minute_start, t0 + Minutes(1));
}

TEST_F(MeterTest, UpAndDownIndependent) {
  meter_.add_rate(net::Direction::kUpstream, 1e6, t0);
  meter_.add_rate(net::Direction::kDownstream, 4e6, t0);
  meter_.remove_rate(net::Direction::kUpstream, 1e6, t0 + Seconds(60));
  meter_.remove_rate(net::Direction::kDownstream, 4e6, t0 + Seconds(60));
  meter_.advance_to(t0 + Minutes(2));
  ASSERT_EQ(minutes_.size(), 1u);
  EXPECT_NEAR(minutes_[0].peak_up_bps, 1e6, 1e4);
  EXPECT_NEAR(minutes_[0].peak_down_bps, 4e6, 1e4);
  EXPECT_NEAR(minutes_[0].bytes_down.count / static_cast<double>(minutes_[0].bytes_up.count),
              4.0, 0.1);
}

TEST_F(MeterTest, RemoveBelowZeroClamps) {
  meter_.add_rate(net::Direction::kUpstream, 1e6, t0);
  meter_.remove_rate(net::Direction::kUpstream, 5e6, t0 + Seconds(1));
  EXPECT_DOUBLE_EQ(meter_.current_rate(net::Direction::kUpstream), 0.0);
}

TEST_F(MeterTest, LongIdleGapThenTraffic) {
  meter_.add_rate(net::Direction::kDownstream, 1e6, t0);
  meter_.remove_rate(net::Direction::kDownstream, 1e6, t0 + Seconds(10));
  // Two days later, more traffic.
  const TimePoint later = t0 + Days(2);
  meter_.add_rate(net::Direction::kDownstream, 1e6, later);
  meter_.remove_rate(net::Direction::kDownstream, 1e6, later + Seconds(10));
  meter_.advance_to(later + Minutes(1));
  ASSERT_EQ(minutes_.size(), 2u);
  EXPECT_EQ(minutes_[1].minute_start, later);
}

TEST_F(MeterTest, SubSecondBurstsAccumulateWithinSecond) {
  // Two 100 ms bursts inside the same second add into one per-second sample.
  meter_.add_rate(net::Direction::kDownstream, 40e6, t0);
  meter_.remove_rate(net::Direction::kDownstream, 40e6, t0 + Millis(100));
  meter_.add_rate(net::Direction::kDownstream, 40e6, t0 + Millis(500));
  meter_.remove_rate(net::Direction::kDownstream, 40e6, t0 + Millis(600));
  meter_.advance_to(t0 + Minutes(1));
  ASSERT_EQ(minutes_.size(), 1u);
  EXPECT_NEAR(minutes_[0].peak_down_bps, 8e6, 2e5);  // 2 x 0.5 MB in 1 s
}


TEST_F(MeterTest, PropertyRandomRateSequenceConservesBytes) {
  // Whatever the add/remove sequence, the bytes binned into minutes must
  // equal the integral of the instantaneous rate.
  Rng rng(99);
  TimePoint t = t0;
  double active = 0.0;
  double max_active = 0.0;
  double expected_bytes = 0.0;
  std::vector<double> live_rates;
  for (int i = 0; i < 400; ++i) {
    const double dt = rng.uniform(0.05, 30.0);
    expected_bytes += active * dt / 8.0;
    t += Seconds(dt);
    if (!live_rates.empty() && rng.bernoulli(0.45)) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live_rates.size()) - 1));
      meter_.remove_rate(net::Direction::kDownstream, live_rates[pick], t);
      active -= live_rates[pick];
      live_rates.erase(live_rates.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const double rate = rng.uniform(1e5, 2e7);
      meter_.add_rate(net::Direction::kDownstream, rate, t);
      active += rate;
      max_active = std::max(max_active, active);
      live_rates.push_back(rate);
    }
  }
  // Drain whatever is still active and flush.
  const double dt = 5.0;
  expected_bytes += active * dt / 8.0;
  t += Seconds(dt);
  for (double rate : live_rates) meter_.remove_rate(net::Direction::kDownstream, rate, t);
  meter_.advance_to(t + Minutes(2));

  double binned = 0.0;
  double max_peak = 0.0;
  for (const auto& m : minutes_) {
    binned += static_cast<double>(m.bytes_down.count);
    max_peak = std::max(max_peak, m.peak_down_bps);
  }
  EXPECT_NEAR(binned, expected_bytes, expected_bytes * 0.001 + minutes_.size());
  // Peaks never exceed the largest concurrent aggregate rate.
  EXPECT_LE(max_peak, max_active + 1.0);
}

}  // namespace
}  // namespace bismark::gateway
